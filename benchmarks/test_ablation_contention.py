"""Section 7 — memory-controller contention estimate.

While PIM channels fetch activations through the shared controller, GPU
memory commands stall.  The paper interleaves Accel-Sim commands with
PIM sequences and measures 0.15% (MobileNetV2) to 0.22% (ResNet50)
slowdown.  We reproduce the estimate from the PIM-side I/O traffic of
the compiled models.
"""

import pytest

from conftest import compile_model, get_flow, report, run_model
from repro.graph.ops import is_pim_candidate
from repro.memsys.contention import controller_contention_slowdown

MODELS = ("mobilenet-v2", "resnet-50")


def _estimate():
    rows = {}
    for model in MODELS:
        flow = get_flow("pimflow")
        compiled = compile_model(model, "pimflow")
        result = flow.engine.run(compiled.graph)
        # PIM-side IO traffic of every PIM-placed node.
        io_bytes = 0.0
        g = compiled.graph
        for node in g.nodes:
            shapes = [g.tensors[t].shape for t in node.inputs]
            if node.device == "pim" and is_pim_candidate(node, shapes):
                io_bytes += flow.pim.run_node(node, g).io_bytes
        # Aggregate IO rate across the PIM-enabled channels.
        rate = 32e3 * flow.pim.config.num_channels
        factor = controller_contention_slowdown(io_bytes, result.makespan_us,
                                                io_bytes_per_us=rate)
        rows[model] = (io_bytes, result.makespan_us, factor)
    return rows


def test_ablation_controller_contention(benchmark):
    rows = benchmark.pedantic(_estimate, rounds=1, iterations=1)

    lines = ["model           PIM IO (MB)   makespan (us)   slowdown"]
    for model, (io_bytes, makespan, factor) in rows.items():
        lines.append(f"{model:14s} {io_bytes / 1e6:11.2f} {makespan:13.1f} "
                     f"{(factor - 1) * 100:9.3f}%")
    report("ablation_contention", lines)

    for model, (_, _, factor) in rows.items():
        # Negligible, sub-1% contention (paper: 0.15-0.22%).
        assert 1.0 <= factor < 1.01, model


def _request_level():
    """Interleave a GPU request stream with PIM occupancy windows on the
    request-level DRAM simulator — the paper's actual methodology."""
    from repro.dram.controller import BlockedInterval, ChannelController
    from repro.dram.request import streaming_trace
    from repro.gpu.kernels import node_flops_bytes

    model = "mobilenet-v2"
    flow = get_flow("pimflow")
    compiled = compile_model(model, "pimflow")
    result = flow.engine.run(compiled.graph)
    g = compiled.graph

    cycles_per_us = flow.pim.config.clock_ghz * 1e3
    # GPU DRAM traffic per GPU channel over the run.
    gpu_bytes = sum(node_flops_bytes(g.node(e.node), g)[1]
                    for e in result.events if e.device == "gpu")
    per_channel_bytes = int(gpu_bytes / flow.gpu.config.mem_channels)
    span_cycles = result.makespan_us * cycles_per_us
    bursts = max(1, per_channel_bytes // 32)
    trace = streaming_trace(per_channel_bytes,
                            arrival_rate=bursts / span_cycles)

    # PIM IO occupancy windows: each PIM kernel streams its GWRITE/
    # READRES bytes through the shared controller, spread over the
    # GPU channels.
    blocks = []
    for e in result.events:
        if e.device != "pim":
            continue
        node = g.node(e.node)
        shapes = [g.tensors[t].shape for t in node.inputs]
        if not is_pim_candidate(node, shapes):
            continue
        io_bytes = flow.pim.run_node(node, g).io_bytes
        per_gpu_channel = io_bytes / flow.gpu.config.mem_channels
        start = int(e.start_us * cycles_per_us)
        width = max(1, int(per_gpu_channel / 32))
        blocks.append(BlockedInterval(start, start + width))

    free = ChannelController().simulate(trace)
    blocked = ChannelController().simulate(trace, blocked=blocks)
    return free, blocked


def test_ablation_contention_request_level(benchmark):
    free, blocked = benchmark.pedantic(_request_level, rounds=1, iterations=1)
    slowdown = blocked.finish_cycle / max(free.finish_cycle, 1)

    report("ablation_contention_requests", [
        f"free-run finish:     {free.finish_cycle:10d} cycles "
        f"(row-hit rate {free.hit_rate * 100:.1f}%)",
        f"with PIM interleave: {blocked.finish_cycle:10d} cycles "
        f"(stalled {blocked.stalled_cycles} cycles)",
        f"slowdown:            {(slowdown - 1) * 100:10.3f}%",
    ])

    # Request-level confirmation of the negligible-contention claim.
    assert 1.0 <= slowdown < 1.02
    assert blocked.stalled_cycles >= 0
