"""Ablation — search-ratio interval and DP optimality.

* The paper's footnote: 2% split-ratio intervals buy only ~1.13% over
  10% intervals for EfficientNetB0, so 10% is used for simulation
  efficiency.  We reproduce the comparison.
* The DP solve (Algorithm 1) must match exhaustive enumeration on a
  model small enough to brute-force — the optimality check behind the
  paper's "future work: auto-tuning" discussion.
"""

import itertools

import pytest

from conftest import get_flow, get_model, report
from repro.search.solver import solve


def _interval_comparison():
    model = "efficientnet-v1-b0"
    results = {}
    for step in (0.1, 0.02):
        flow = get_flow("pimflow-md", ratio_step=step)
        compiled = flow.compile(get_model(model))
        results[step] = compiled.predicted_time_us
    return results


def test_ablation_ratio_interval(benchmark):
    results = benchmark.pedantic(_interval_comparison, rounds=1, iterations=1)
    coarse, fine = results[0.1], results[0.02]
    improvement = coarse / fine - 1.0

    report("ablation_search_interval", [
        f"10% interval predicted time: {coarse:9.1f} us",
        f" 2% interval predicted time: {fine:9.1f} us",
        f"fine-interval improvement:   {improvement * 100:8.2f}%",
    ])

    # Finer sampling can only help, and only a little (paper: 1.13%).
    assert fine <= coarse + 1e-6
    assert improvement < 0.05


def _exhaustive(order, table):
    """Brute-force over all region tilings and options."""
    n = len(order)
    best = [float("inf")] * (n + 1)
    best[n] = 0.0
    for i in range(n - 1, -1, -1):
        for span in table.spans_at(order[i]):
            if i + span > n:
                continue
            for meas in table.options(order[i], span):
                if meas.chain and tuple(order[i:i + span]) != meas.chain:
                    continue
                best[i] = min(best[i], meas.time_us + best[i + span])
    return best[0]


def test_ablation_dp_is_optimal(benchmark):
    flow = get_flow("pimflow")
    graph = flow.prepare(get_model("toy"))
    table = flow.profile(graph)
    order = [n.name for n in graph.toposort()]

    dp_time, _ = benchmark.pedantic(
        lambda: solve(order, table), rounds=1, iterations=1)
    brute = _exhaustive(order, table)

    report("ablation_dp_optimality", [
        f"DP solve:          {dp_time:9.2f} us",
        f"exhaustive search: {brute:9.2f} us",
    ])
    assert dp_time == pytest.approx(brute, rel=1e-9)
