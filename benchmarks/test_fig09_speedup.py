"""Fig. 9 — PIM-candidate CONV layer and end-to-end model speedups.

The headline result: for all five CNN models, execution time under
{Newton+, Newton++, PIMFlow-md, PIMFlow-pl, PIMFlow}, normalized to the
GPU baseline.  Shape targets from the paper: PIMFlow wins everywhere;
mobile models (EfficientNetB0, MnasNet, MobileNetV2) gain far more than
ResNet50/VGG16 on conv layers; Newton++ beats Newton+ by ~20% on convs;
PIMFlow >= PIMFlow-md >= PIMFlow-pl.
"""

import pytest

from conftest import (
    EVALUATED_MODELS,
    MECHANISM_ORDER,
    compile_model,
    conv_layer_time_us,
    get_flow,
    report,
    run_model,
)

MOBILE = ("efficientnet-v1-b0", "mnasnet-1.0", "mobilenet-v2")


def _speedups(time_fn):
    rows = {}
    for model in EVALUATED_MODELS:
        base = time_fn(model, "gpu")
        rows[model] = {m: base / time_fn(model, m) for m in MECHANISM_ORDER}
    return rows


def _table(rows, title):
    lines = [title,
             "model                 " + "  ".join(f"{m:>11s}" for m in MECHANISM_ORDER)]
    for model, row in rows.items():
        lines.append(f"{model:20s} " + "  ".join(
            f"{row[m]:10.2f}x" for m in MECHANISM_ORDER))
    avg = {m: sum(r[m] for r in rows.values()) / len(rows)
           for m in MECHANISM_ORDER}
    lines.append(f"{'geomean-ish avg':20s} " + "  ".join(
        f"{avg[m]:10.2f}x" for m in MECHANISM_ORDER))
    return lines, avg


def test_fig09_conv_layer_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: _speedups(conv_layer_time_us), rounds=1, iterations=1)
    lines, avg = _table(rows, "PIM-candidate CONV layers, speedup vs GPU")
    report("fig09_conv_speedup", lines)

    for model, row in rows.items():
        # PIMFlow improves on Newton++ on conv layers and is within a
        # hair of PIMFlow-md (pipeline decisions optimize whole-chain
        # time, which can shift a little work onto the conv metric).
        assert row["pimflow"] >= row["newton++"] - 1e-6, model
        assert row["pimflow"] >= 0.9 * row["pimflow-md"], model
        assert row["pimflow"] > 1.0, model
        # Newton++'s command optimizations beat Newton+.
        assert row["newton++"] >= row["newton+"] - 1e-6, model
    # Mobile models gain more on conv layers than ResNet50 (paper: up
    # to 48% vs. smaller gains for compute-heavy models).
    mobile_avg = sum(rows[m]["pimflow"] for m in MOBILE) / 3
    assert mobile_avg > rows["resnet-50"]["pimflow"]
    # Average conv speedup lands in the paper's reported ballpark (~30%).
    assert 1.15 < avg["pimflow"] < 2.5


def test_fig09_end_to_end_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: _speedups(
            lambda model, mech: run_model(model, mech).makespan_us),
        rounds=1, iterations=1)
    lines, avg = _table(rows, "End-to-end inference, speedup vs GPU")
    report("fig09_e2e_speedup", lines)

    for model, row in rows.items():
        assert row["pimflow"] >= row["pimflow-md"] - 1e-6, model
        assert row["pimflow"] >= row["pimflow-pl"] - 1e-6, model
        assert row["pimflow"] > 1.05, model
    # Paper: up to 82% end-to-end speedup, 34% on average.
    assert max(r["pimflow"] for r in rows.values()) > 1.4
    assert 1.2 < avg["pimflow"] < 2.2
    # ResNet50/VGG16 with few-to-zero pipeline matches: PIMFlow equals
    # PIMFlow-md.
    for model in ("resnet-50", "vgg-16"):
        assert rows[model]["pimflow"] == pytest.approx(
            rows[model]["pimflow-md"], rel=0.02)
