"""Ablation — command-scheduling granularity (paper Fig. 6).

The command scheduler distributes PIM work across channels at G_ACT,
READRES, or COMP granularity, progressively increasing channel-level
parallelism.  The difference matters most for layers whose filter
matrices are small (few output columns), which is common for 1x1
convolutions.
"""

import pytest

from conftest import report
from repro.lowering.im2col import LoweredGemv
from repro.pim.config import NEWTON_PLUS_PLUS, PimConfig, PimOptimizations
from repro.pim.cost import gemv_cost

#: (rows, k, n) shapes: narrow-output layers where granularity matters,
#: plus a wide layer where all granularities saturate the channels.
SHAPES = {
    "1x1 narrow (n=8)": (196, 384, 8),
    "1x1 tiny (n=2)": (784, 96, 2),
    "1x1 medium (n=64)": (196, 192, 64),
    "1x1 wide (n=1152)": (196, 192, 1152),
}


def _sweep():
    cfg = PimConfig(num_channels=16)
    rows = {}
    for label, (r, k, n) in SHAPES.items():
        gemv = LoweredGemv(rows=r, k=k, n=n, contiguous_k=k, strided=False)
        per = {}
        for gran in ("g_act", "readres", "comp"):
            opts = PimOptimizations(num_gwrite_buffers=4,
                                    gwrite_latency_hiding=True,
                                    strided_gwrite=True, scheduling=gran)
            per[gran] = gemv_cost(gemv, cfg, opts).cycles
        rows[label] = per
    return rows


def test_ablation_scheduling_granularity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = ["layer                     g_act     readres     comp   "
             "(cycles)"]
    for label, per in rows.items():
        lines.append(f"{label:22s} {per['g_act']:9d} {per['readres']:9d} "
                     f"{per['comp']:9d}")
    report("ablation_scheduling", lines)

    for label, per in rows.items():
        # Finer granularity never hurts.
        assert per["comp"] <= per["readres"] <= per["g_act"], label
    # For narrow outputs the coarse scheduler leaves channels idle.
    narrow = rows["1x1 tiny (n=2)"]
    assert narrow["comp"] < 0.75 * narrow["g_act"]
    assert rows["1x1 narrow (n=8)"]["comp"] < 0.5 * rows["1x1 narrow (n=8)"]["g_act"]
    # For wide outputs all granularities are equivalent.
    wide = rows["1x1 wide (n=1152)"]
    assert wide["comp"] == wide["readres"]
