"""Ablation — the memory-layout optimization (paper Section 4.3.2).

The paper notes that without the co-allocated NHWC layout, the
Slice/Pad/Concat data copies "make most splitting attempts futile".
This bench disables the elision on an already-transformed model and
measures how much of the MD-DP gain survives.
"""

import pytest

from conftest import compile_model, get_flow, report, run_model


def _strip_elision(graph):
    g = graph.clone()
    for node in g.nodes:
        node.attrs.pop("elided", None)
    return g


def _measure():
    model = "mobilenet-v2"
    flow = get_flow("pimflow-md")
    compiled = compile_model(model, "pimflow-md")
    gpu_time = run_model(model, "gpu").makespan_us
    with_opt = flow.engine.run(compiled.graph).makespan_us
    without_opt = flow.engine.run(_strip_elision(compiled.graph)).makespan_us
    return gpu_time, with_opt, without_opt


def test_ablation_memory_optimizer(benchmark):
    gpu_time, with_opt, without_opt = benchmark.pedantic(
        _measure, rounds=1, iterations=1)

    lines = [
        f"GPU baseline:            {gpu_time:9.1f} us",
        f"MD-DP with memopt:       {with_opt:9.1f} us "
        f"({gpu_time / with_opt:.2f}x)",
        f"MD-DP without memopt:    {without_opt:9.1f} us "
        f"({gpu_time / without_opt:.2f}x)",
        f"memopt contribution:     {without_opt / with_opt:9.2f}x",
    ]
    report("ablation_memopt", lines)

    # The optimizer is load-bearing: copies eat a large share of the gain.
    assert without_opt > 1.15 * with_opt
    # Without it, splitting gains mostly evaporate ("futile" in the paper).
    gain_with = gpu_time / with_opt - 1.0
    gain_without = gpu_time / without_opt - 1.0
    assert gain_without < 0.6 * gain_with
