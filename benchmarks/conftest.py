"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper: it
computes the same rows/series the paper reports, asserts the
qualitative *shape* (who wins, by roughly what factor, where crossovers
fall), prints the rows, and writes them to
``benchmarks/results/<experiment>.txt`` so the regenerated data
survives pytest's output capture.

Model builds, profiles, and runs are memoized process-wide: several
figures share the same underlying sweeps.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.graph.graph import Graph
from repro.memsys.system import MemorySystem
from repro.models import build_model
from repro.pimflow import CompiledModel, PimFlow, PimFlowConfig
from repro.runtime.engine import RunResult

RESULTS_DIR = Path(__file__).parent / "results"

#: The five CNN models of the main evaluation (Section 5).
EVALUATED_MODELS = ("efficientnet-v1-b0", "mnasnet-1.0", "mobilenet-v2",
                    "resnet-50", "vgg-16")

#: The offloading mechanisms of Fig. 9.
MECHANISM_ORDER = ("gpu", "newton+", "newton++", "pimflow-md", "pimflow-pl",
                   "pimflow")


@functools.lru_cache(maxsize=None)
def get_model(name: str) -> Graph:
    return build_model(name)


@functools.lru_cache(maxsize=None)
def get_flow(mechanism: str, pim_channels: int = 16, stages: int = 2,
             ratio_step: float = 0.1) -> PimFlow:
    return PimFlow(PimFlowConfig(
        mechanism=mechanism,
        memory=MemorySystem(32, pim_channels),
        pipeline_stages=stages,
        ratio_step=ratio_step,
    ))


@functools.lru_cache(maxsize=None)
def compile_model(name: str, mechanism: str, pim_channels: int = 16,
                  stages: int = 2, ratio_step: float = 0.1) -> CompiledModel:
    flow = get_flow(mechanism, pim_channels, stages, ratio_step)
    return flow.compile(get_model(name))


@functools.lru_cache(maxsize=None)
def run_model(name: str, mechanism: str, pim_channels: int = 16,
              stages: int = 2, ratio_step: float = 0.1) -> RunResult:
    flow = get_flow(mechanism, pim_channels, stages, ratio_step)
    if mechanism == "gpu":
        return flow.run(get_model(name))
    compiled = compile_model(name, mechanism, pim_channels, stages, ratio_step)
    return flow.engine.run(compiled.graph)


@functools.lru_cache(maxsize=None)
def _candidate_names(name: str) -> frozenset:
    from repro.analysis.ratios import candidate_layer_names

    prepared = get_flow("gpu").prepare(get_model(name))
    return frozenset(candidate_layer_names(prepared))


@functools.lru_cache(maxsize=None)
def conv_layer_time_us(name: str, mechanism: str,
                       pim_channels: int = 16) -> float:
    """Total execution time of all PIM-candidate layers (Fig. 9 top).

    Summed over the per-region times the search measured: regions whose
    decision touches at least one PIM-candidate node contribute their
    decided time; the GPU baseline sums the candidates' GPU samples.
    The candidate layers execute back-to-back in these models, so the
    sum is the region's serialized execution time.
    """
    candidates = _candidate_names(name)

    def gpu_time(table, layer):
        return next(m for m in table.options(layer, 1)
                    if m.mode == "gpu").time_us

    if mechanism == "gpu":
        table = compile_model(name, "newton++", pim_channels).table
        return sum(gpu_time(table, layer) for layer in candidates)

    compiled = compile_model(name, mechanism, pim_channels)
    total = 0.0
    for d in compiled.decisions:
        in_region = [n for n in d.nodes if n in candidates]
        if not in_region:
            continue
        if len(d.nodes) == 1:
            total += d.time_us
            continue
        # Pipeline decisions span non-candidate chain members (DW convs,
        # fused elementwise pieces); prorate the chained time by the
        # candidates' GPU-time share so the metric stays comparable.
        share = sum(gpu_time(compiled.table, n) for n in in_region)
        whole = sum(gpu_time(compiled.table, n) for n in d.nodes)
        total += d.time_us * (share / whole)
    return total


def report(experiment: str, lines: Iterable[str]) -> None:
    """Print and persist one experiment's regenerated rows."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {experiment} ===\n{text}")
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
