"""Fig. 16 — model type and size sensitivity.

* BERT: with the tiny 1x3 input, PIMFlow performs like Newton++ (FC
  layers are too small to split profitably); with a 1x64 input the
  MD-DP mode buys a significant extra speedup over Newton++ (paper:
  +32%).
* Scaled EfficientNets: PIMFlow's acceleration shrinks as the model
  grows — larger 1x1 convolutions gain arithmetic intensity and favor
  the GPU (paper: down to 7% for ENetB6).
"""

import pytest

from conftest import report, run_model

ENET_VARIANTS = ("efficientnet-v1-b0", "efficientnet-v1-b1",
                 "efficientnet-v1-b2", "efficientnet-v1-b3")


def _bert():
    rows = {}
    for model in ("bert-seq3", "bert-seq64"):
        base = run_model(model, "gpu").makespan_us
        rows[model] = {
            "newton++": base / run_model(model, "newton++").makespan_us,
            "pimflow": base / run_model(model, "pimflow").makespan_us,
        }
    return rows


def _enet():
    rows = {}
    for model in ENET_VARIANTS:
        base = run_model(model, "gpu").makespan_us
        rows[model] = base / run_model(model, "pimflow").makespan_us
    return rows


def test_fig16_bert(benchmark):
    rows = benchmark.pedantic(_bert, rounds=1, iterations=1)
    lines = ["model        newton++   pimflow   extra from MD-DP"]
    for model, row in rows.items():
        extra = row["pimflow"] / row["newton++"]
        lines.append(f"{model:11s} {row['newton++']:8.2f}x {row['pimflow']:8.2f}x"
                     f" {extra:10.2f}x")
    report("fig16_bert", lines)

    # Tiny input: PIMFlow adds nothing over Newton++ (paper: "performs
    # the same") — batch-1 GEMVs either offload fully or stay put.
    small_extra = rows["bert-seq3"]["pimflow"] / rows["bert-seq3"]["newton++"]
    assert small_extra < 1.05
    # Long input: MD-DP splitting of FC layers buys extra speedup over
    # Newton++ (paper: +32%; our GPU model keeps the large FC layers
    # more GPU-favorable, so the margin is smaller but present).
    large_extra = rows["bert-seq64"]["pimflow"] / rows["bert-seq64"]["newton++"]
    assert large_extra > 1.01
    assert large_extra > small_extra


def test_fig16_efficientnet_scaling(benchmark):
    rows = benchmark.pedantic(_enet, rounds=1, iterations=1)
    lines = ["variant                 PIMFlow speedup vs GPU"]
    for model, speedup in rows.items():
        lines.append(f"{model:22s} {speedup:10.2f}x")
    report("fig16_enet_scaling", lines)

    speedups = [rows[m] for m in ENET_VARIANTS]
    # Acceleration decreases as the model scales up (paper Fig. 16: B6
    # bottoms out at +7%; our model declines somewhat faster because
    # the scaled-up spatial extents land in the PIM-unfriendly regime).
    assert speedups[0] > speedups[-1]
    assert speedups[0] > speedups[2]
    # B0 gains clearly; the large variants approach break-even.
    assert speedups[0] > 1.2
    assert all(s > 0.9 for s in speedups)
