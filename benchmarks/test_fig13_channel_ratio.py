"""Fig. 13 — sensitivity to the GPU/PIM memory channel split.

Sweeps the number of PIM-enabled channels in the 32-channel memory.
Paper: performance improves with more PIM channels up to 16, then
degrades as the GPU starves for bandwidth; the 16-16 split is the
design point.  Newton++ suffers more at the extremes than PIMFlow, and
compute-heavy ResNet50 more than EfficientNetB0.
"""

import pytest

from conftest import get_model, report, run_model

MODELS = ("efficientnet-v1-b0", "resnet-50")
MECHANISMS = ("newton++", "pimflow")
PIM_CHANNELS = (4, 8, 12, 16, 20, 24, 28)


def _sweep():
    rows = {}
    for model in MODELS:
        base = run_model(model, "gpu").makespan_us
        for mech in MECHANISMS:
            series = {}
            for pc in PIM_CHANNELS:
                series[pc] = base / run_model(model, mech,
                                              pim_channels=pc).makespan_us
            rows[(model, mech)] = series
    return rows


def test_fig13_channel_ratio(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = ["model/mechanism                    " + "  ".join(
        f"{pc:>4d}pim" for pc in PIM_CHANNELS) + "   (speedup vs 32ch GPU)"]
    for (model, mech), series in rows.items():
        lines.append(f"{model:22s} {mech:10s} " + "  ".join(
            f"{series[pc]:7.2f}" for pc in PIM_CHANNELS))
    report("fig13_channel_ratio", lines)

    for (model, mech), series in rows.items():
        best_pc = max(series, key=series.get)
        # The sweet spot sits in the middle of the sweep (paper: 16).
        assert 8 <= best_pc <= 20, (model, mech, best_pc)
        # Extremes lose against the middle.
        assert series[4] < series[16]
        assert series[28] < series[16]
    # PIMFlow dominates Newton++ across the sweep for both models.
    for model in MODELS:
        for pc in PIM_CHANNELS:
            assert rows[(model, "pimflow")][pc] >= \
                rows[(model, "newton++")][pc] - 1e-6, (model, pc)
    # The 16-16 split is within a few percent of the best point
    # (the paper's design-point justification).
    for key, series in rows.items():
        assert series[16] >= 0.93 * max(series.values()), key
