"""Fig. 12 — energy consumption normalized to the GPU baseline.

Paper: Newton++ and PIMFlow cut energy by 18% and 26% on average; the
fixed-function MAC logic needs less energy per operation than GPU cores
and the shorter runtime saves static energy.  ResNet50/VGG16, with
small speedups, show limited or negative gains.
"""

import pytest

from conftest import EVALUATED_MODELS, report, run_model

MECHANISMS = ("gpu", "newton++", "pimflow")
MOBILE = ("efficientnet-v1-b0", "mnasnet-1.0", "mobilenet-v2")


def _energies():
    rows = {}
    for model in EVALUATED_MODELS:
        base = run_model(model, "gpu").energy.total_mj
        rows[model] = {m: run_model(model, m).energy.total_mj / base
                       for m in MECHANISMS}
    return rows


def test_fig12_energy(benchmark):
    rows = benchmark.pedantic(_energies, rounds=1, iterations=1)

    lines = ["model                 " + "  ".join(f"{m:>10s}" for m in MECHANISMS)
             + "   (normalized energy)"]
    for model, row in rows.items():
        lines.append(f"{model:20s} " + "  ".join(
            f"{row[m]:10.3f}" for m in MECHANISMS))
    avg = {m: sum(r[m] for r in rows.values()) / len(rows) for m in MECHANISMS}
    lines.append(f"{'average':20s} " + "  ".join(
        f"{avg[m]:10.3f}" for m in MECHANISMS))
    report("fig12_energy", lines)

    # PIMFlow saves energy on average (paper: 26%).
    assert 0.55 < avg["pimflow"] < 0.95
    # Newton++ saves too, but less than PIMFlow.
    assert avg["pimflow"] <= avg["newton++"] + 0.02
    assert avg["newton++"] < 1.0
    # Mobile models see clear savings.
    for model in MOBILE:
        assert rows[model]["pimflow"] < 0.9, model
    # The small-speedup models show limited (possibly negative) gains.
    for model in ("resnet-50", "vgg-16"):
        assert rows[model]["pimflow"] > 0.55, model
