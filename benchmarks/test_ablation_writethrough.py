"""Footnote 2 — write-through vs. write-back GPU caches.

GPU/PIM coherence at the memory level requires write-through GPU
caches; the paper measures a 2.8% slowdown on MobileNet and deems it
tolerable against the PIM gains.
"""

import pytest

from conftest import get_model, report
from repro.gpu.device import GpuDevice
from repro.pimflow import PimFlow, PimFlowConfig

MODELS = ("mobilenet-v2", "resnet-50")


def _measure():
    rows = {}
    for model in MODELS:
        flow = PimFlow(PimFlowConfig(mechanism="gpu"))
        graph = flow.prepare(get_model(model))
        wb = GpuDevice(flow.gpu.config, write_through=False)
        wt = GpuDevice(flow.gpu.config, write_through=True)
        rows[model] = (wb.run_graph(graph).time_us,
                       wt.run_graph(graph).time_us)
    return rows


def test_ablation_write_through(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = ["model           write-back (us)  write-through (us)  slowdown"]
    for model, (wb, wt) in rows.items():
        lines.append(f"{model:14s} {wb:15.1f} {wt:18.1f} {(wt / wb - 1) * 100:8.2f}%")
    report("ablation_writethrough", lines)

    for model, (wb, wt) in rows.items():
        slowdown = wt / wb - 1.0
        # Tolerable, single-digit-percent coherence cost (paper: 2.8%).
        assert 0.0 < slowdown < 0.05, model


def test_ablation_write_through_vs_pim_gain(benchmark):
    """The coherence cost is far smaller than the PIM gain it enables."""
    def measure():
        model = get_model("mobilenet-v2")
        baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(model)
        pimflow = PimFlow(PimFlowConfig(mechanism="pimflow")).run(model)
        return baseline.makespan_us, pimflow.makespan_us

    base, pf = benchmark.pedantic(measure, rounds=1, iterations=1)
    gain = base / pf - 1.0
    assert gain > 0.25  # dwarfs the ~3% write-through penalty
