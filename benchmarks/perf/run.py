#!/usr/bin/env python
"""CLI for the perf-smoke harness (see ``benchmarks/perf/__init__``).

Self-bootstrapping: resolves the repo root from its own location and
puts ``src`` (the library) and this directory on ``sys.path``, so it
runs as a plain script with no environment setup::

    python benchmarks/perf/run.py --check
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
REPO_ROOT = _HERE.parent.parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(REPO_ROOT / "src"))

import harness  # noqa: E402  (path bootstrap above)

DEFAULT_BASELINE = REPO_ROOT / "BENCH_RUNTIME.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the tracked perf microbenchmarks.")
    parser.add_argument("--models", nargs="+",
                        default=list(harness.DEFAULT_MODELS))
    parser.add_argument("--batches", nargs="+", type=int,
                        default=list(harness.DEFAULT_BATCHES))
    parser.add_argument("--rounds", type=int, default=harness.DEFAULT_ROUNDS)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_RUNTIME.json "
                             "at the repo root)")
    parser.add_argument("--update", action="store_true",
                        help="write the measured results to the baseline file")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on any "
                             "regression beyond --fail-ratio")
    parser.add_argument("--fail-ratio", type=float,
                        default=harness.DEFAULT_FAIL_RATIO,
                        help="current/baseline ratio that fails --check "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    results = harness.run_benchmarks(models=args.models, batches=args.batches,
                                     rounds=args.rounds)

    if args.check:
        baseline = harness.load_baseline(args.baseline)
        rows, ok = harness.compare(baseline, results,
                                   fail_ratio=args.fail_ratio)
        print(harness.format_rows(rows))
        trip_rows, trip_ok = harness.tripwires(results)
        if trip_rows:
            print("\nIntra-run tripwires (compiled vs interpreted):")
            print(harness.format_tripwire_rows(trip_rows))
        if not trip_ok:
            print("\nFAIL: compiled executor slower than the interpreted "
                  f"oracle beyond {harness.TRIPWIRE_SLACK}x")
            return 1
        if not ok:
            print(f"\nFAIL: regression beyond {args.fail_ratio}x "
                  f"vs {args.baseline}")
            return 1
        print(f"\nOK: within {args.fail_ratio}x of {args.baseline}")
        return 0

    if args.update:
        harness.save_baseline(args.baseline, results)
        print(f"wrote {args.baseline}")

    width = max(len(k) for k in results["metrics"])
    for name, value in results["metrics"].items():
        if name.endswith("_mb"):
            unit = "mb"
        elif name.endswith("_rps"):
            unit = "rps"
        elif name.endswith(".win") or name.endswith("_win"):
            unit = "x"
        else:
            unit = "ms"
        print(f"{name:{width}s} {value:10.1f} {unit}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
