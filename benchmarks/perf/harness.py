"""Measurement core of the perf-smoke harness.

Two metric families, both reported in milliseconds (best of ``rounds``
repetitions, the standard microbenchmark estimator under scheduler
noise):

* ``numerical.<model>.batch<B>_ms`` — one :func:`repro.runtime.
  numerical.execute` call on deterministic random feeds with batch B
  fed into the batch-1 graph (the batched-feed path).
* ``numerical.<model>.compiled_ms`` — one repeat inference through the
  buffer-planned :class:`~repro.runtime.compiled.CompiledExecutable`
  at batch 1 with elementwise fusion off (binding excluded:
  compile-once/run-many measures the run-many half).
* ``numerical.<model>.fused_ms`` — the same repeat inference in the
  executor's default configuration (``FusedElementwise`` groups bound
  to single tiled-sweep closures); the fusion win is
  ``compiled_ms / fused_ms``.
* ``numerical.<model>.batch1_peak_mb`` / ``compiled_peak_mb`` /
  ``fused_peak_mb`` — tracemalloc peak of one batch-1 inference
  (interpreted, compiled-unfused, and compiled-fused, the compiled
  ones including arena binding), tracking the arena planner's
  footprint win and fusion's elimination of interior buffers.
* ``numerical.<model>.split_ms`` / ``split_noelide_ms`` — compiled
  repeat inference of the MD-DP-split graph (every PIM-candidate conv
  split 50/50, memory-layout optimizer applied) with buffer-plan
  elision on vs off.  The paper's Fig. 7 claim is ``split_ms`` staying
  near ``compiled_ms`` while ``split_noelide_ms`` pays the
  slice/concat/pad copy tax.
* ``compile.<model>.cold_ms`` / ``compile.<model>.repeat_ms`` — a full
  ``PimFlow.compile`` on a fresh toolchain (cold: nothing memoized)
  and a second compile on the same toolchain (repeat: measurement memo
  and cost caches warm).
* ``numerical.<model>.compiled_batch8_ms`` / ``parallel_ms`` —
  compiled repeat inference at batch 8, serial vs the operator-parallel
  scheduler at 4 workers (same executable API, ``workers=4``, intra-op
  GEMM sharding pinned off so the metric keeps measuring *operator*
  parallelism).  The parallel schedule is byte-identical to serial; the
  delta is pure host-threading yield, so on a single-core runner the
  two track each other and on multi-core the branchy models
  (shufflenet) pull ahead.
* ``numerical.<model>.gemmpar_ms`` / ``gemmpar_batch8_ms`` — the same
  4-worker compiled inference with the full default policy: operator
  parallelism *plus* intra-op row-panel GEMM sharding
  (:mod:`repro.runtime.gemmpar`).  Byte-identical to serial; the delta
  over ``parallel_ms`` is what sharding the dominant GEMM steps buys,
  which — like ``host_win`` — is bounded by physical cores (~1x on a
  1-core runner).
* ``serve.<model>.batch1_rps`` / ``dynamic_rps`` / ``win`` — modelled
  device throughput of the serving layer's A/B (per-request batch-1 vs
  dynamic micro-batching at max-batch 8 on the GPU-baseline plan), and
  ``serve.<model>.p99_ms`` — accepted-request wall p99 under the
  dynamic configuration.  ``_rps``/``win`` metrics are
  higher-is-better; :func:`compare` inverts the ratio for them.
* ``serve.<model>.host_rps`` / ``host_locked_rps`` / ``host_win`` —
  *measured wall-clock* host throughput of a 4-worker server driven
  closed-loop at max-batch 1: with the bounded execution-state pool
  (4 states, workers truly concurrent) vs artificially capped at one
  state (every worker serialized on a single arena — the pre-pool
  behaviour).  Unlike the modelled ``win`` this is real host time; the
  gap scales with physical cores.

Everything is pure in-process timing of deterministic code — no disk
cache, no worker processes — so results are comparable across runs on
one machine and across commits in CI (with a loose threshold).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

SCHEMA_VERSION = 1

DEFAULT_MODELS = ("mobilenet-v2", "shufflenet-v2", "resnet-50")
DEFAULT_BATCHES = (1, 8)
DEFAULT_ROUNDS = 3

#: Models that also run the serving A/B.  One is enough for the smoke
#: signal (every request is a full host inference, so the A/B costs
#: tens of per-sample runs); mobilenet-v2 is the paper's headline net.
SERVE_MODELS = ("mobilenet-v2",)

#: A current/baseline ratio above this fails ``--check``.  Deliberately
#: loose: CI runners are noisy and the job is a smoke test for
#: egregious regressions only.
DEFAULT_FAIL_RATIO = 3.0


def _best_of(fn, rounds: int) -> float:
    """Best wall-clock of ``rounds`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def bench_numerical(model: str, batches: Iterable[int],
                    rounds: int) -> Dict[str, float]:
    """Time the numpy executor on one model at each batch size."""
    from repro.models.registry import build_model
    from repro.runtime.compiled import CompiledExecutable
    from repro.runtime.gemmpar import ShardPolicy
    from repro.runtime.numerical import execute

    graph = build_model(model)
    rng = np.random.default_rng(0)
    metrics: Dict[str, float] = {}
    for batch in batches:
        feeds = {
            name: (rng.standard_normal(
                (batch,) + graph.tensors[name].shape[1:]) * 0.1
            ).astype(np.float32)
            for name in graph.inputs
        }
        execute(graph, feeds)  # warm-up: initializer-f32 cache, toposort
        metrics[f"numerical.{model}.batch{batch}_ms"] = _best_of(
            lambda: execute(graph, feeds), rounds)
        if batch == 1:
            metrics[f"numerical.{model}.batch1_peak_mb"] = _peak_mb(
                lambda: execute(graph, feeds))
            # ``compiled_ms`` keeps fusion off so it stays comparable
            # with historical baselines; ``fused_ms`` is the default
            # executor configuration (elementwise fusion on).  Rounds
            # interleave the two executables so slow drift (thermal,
            # background load) biases neither side.
            exe = CompiledExecutable(graph, fuse=False)
            exe.run(feeds)  # warm-up: shape capture, binding, arena
            exe_fused = CompiledExecutable(graph)
            exe_fused.run(feeds)
            best = {"compiled_ms": float("inf"), "fused_ms": float("inf")}
            for _ in range(rounds):
                for key, runner in (("compiled_ms", exe),
                                    ("fused_ms", exe_fused)):
                    t0 = time.perf_counter()
                    runner.run(feeds)
                    best[key] = min(best[key], time.perf_counter() - t0)
            for key, value in best.items():
                metrics[f"numerical.{model}.{key}"] = value * 1e3
            # Footprint includes binding: the arena is the live set.
            metrics[f"numerical.{model}.compiled_peak_mb"] = _peak_mb(
                lambda: CompiledExecutable(graph, fuse=False).run(feeds))
            metrics[f"numerical.{model}.fused_peak_mb"] = _peak_mb(
                lambda: CompiledExecutable(graph).run(feeds))
            # Full default policy at 4 workers: operator parallelism
            # plus intra-op GEMM row-panel sharding.
            exe_gp = CompiledExecutable(graph, workers=4)
            exe_gp.run(feeds)
            metrics[f"numerical.{model}.gemmpar_ms"] = _best_of(
                lambda: exe_gp.run(feeds), rounds)
        elif batch >= 4:
            # Operator-parallel scheduler A/B at the batch size where
            # batch sharding engages.  All paths are byte-identical to
            # the interpreted oracle; the delta is host threading.
            # ``parallel_ms`` pins GEMM sharding off so it keeps
            # measuring operator parallelism alone; ``gemmpar_ms`` adds
            # the intra-op row-panel shards on top.
            exe_serial = CompiledExecutable(graph, workers=1)
            exe_serial.run(feeds)
            metrics[f"numerical.{model}.compiled_batch{batch}_ms"] = \
                _best_of(lambda: exe_serial.run(feeds), rounds)
            exe_par = CompiledExecutable(graph, workers=4,
                                         policy=ShardPolicy(gemm_shards=1))
            exe_par.run(feeds)
            metrics[f"numerical.{model}.parallel_ms"] = _best_of(
                lambda: exe_par.run(feeds), rounds)
            exe_gp = CompiledExecutable(graph, workers=4)
            exe_gp.run(feeds)
            metrics[f"numerical.{model}.gemmpar_batch{batch}_ms"] = \
                _best_of(lambda: exe_gp.run(feeds), rounds)
    return metrics


def _peak_mb(fn) -> float:
    """tracemalloc peak of one ``fn()`` call, in megabytes."""
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1] / 1e6
    finally:
        tracemalloc.stop()


def _mddp_split_graph(graph):
    """Split every PIM-candidate conv 50/50 and run the memory-layout
    optimizer — the transformed-graph shape the paper's Section 4.3.2
    elision targets."""
    from repro.graph.ops import is_pim_candidate
    from repro.transform.memopt import optimize_memory
    from repro.transform.split import apply_mddp

    g = graph
    for node in graph.toposort():
        shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, shapes):
            g = apply_mddp(g, node.name, 0.5)
    return optimize_memory(g)


def bench_split(model: str, rounds: int) -> Dict[str, float]:
    """Time compiled inference of the MD-DP-split graph, elide on/off."""
    from repro.models.registry import build_model
    from repro.runtime.compiled import CompiledExecutable

    graph = build_model(model)
    split = _mddp_split_graph(graph)
    rng = np.random.default_rng(0)
    feeds = {
        name: (rng.standard_normal(graph.tensors[name].shape) * 0.1
               ).astype(np.float32)
        for name in graph.inputs
    }
    metrics: Dict[str, float] = {}
    for elide, key in ((True, "split_ms"), (False, "split_noelide_ms")):
        exe = CompiledExecutable(split, elide=elide)
        exe.run(feeds)
        metrics[f"numerical.{model}.{key}"] = _best_of(
            lambda: exe.run(feeds), rounds)
    return metrics


def bench_compile(model: str, rounds: int) -> Dict[str, float]:
    """Time cold and repeat ``PimFlow.compile`` on one model."""
    from repro.models.registry import build_model
    from repro.pimflow import PimFlow, PimFlowConfig

    graph = build_model(model)
    config = PimFlowConfig(mechanism="pimflow", jobs=1)

    cold = float("inf")
    flow: Optional[PimFlow] = None
    for _ in range(rounds):
        flow = PimFlow(config)
        t0 = time.perf_counter()
        flow.compile(graph)
        cold = min(cold, time.perf_counter() - t0)
    repeat = _best_of(lambda: flow.compile(graph), rounds)
    return {
        f"compile.{model}.cold_ms": cold * 1e3,
        f"compile.{model}.repeat_ms": repeat,
    }


def bench_serving(model: str) -> Dict[str, float]:
    """Serving A/B: per-request batch-1 vs dynamic micro-batching.

    Wraps :func:`repro.serve.loadgen.bench_serve` on the GPU-baseline
    plan (the batching win lives in SIMT utilization recovery; PIM
    offload is a batch-1 design point).  Load parameters are kept small
    — this is a smoke signal, not a saturation study.
    """
    from repro.serve.loadgen import bench_serve

    report = bench_serve(model=model, mechanism="gpu", max_batch=8,
                         clients=8, requests_per_client=2, workers=1,
                         max_wait_ms=50.0)
    return {
        f"serve.{model}.batch1_rps": report["batch1"]["device_rps"],
        f"serve.{model}.dynamic_rps": report["dynamic"]["device_rps"],
        f"serve.{model}.win": report["device_win"],
        f"serve.{model}.p99_ms": report["dynamic"]["latency_p99_ms"],
    }


def bench_host_concurrency(model: str) -> Dict[str, float]:
    """Measured host throughput: pooled states vs a single shared one.

    Drives a 4-worker server closed-loop at max-batch 1 (every request
    is one host inference; batching contributes nothing) twice over the
    same compiled plan: ``host_states=4`` lets the workers run on
    distinct pooled execution states, ``host_states=1`` recreates the
    old single-arena serialization.  Both report *wall-clock* requests
    per second — this is the measured (not modelled) number, so the
    ratio ``host_win`` is bounded by physical cores: ~1x on a 1-core CI
    runner (where the executable's core gate caps the pool at one state
    anyway — extra states would only thrash the cache), approaching the
    worker count on real multi-core hosts.
    """
    from repro.models import build_model, normalize_model_name
    from repro.pimflow import Compiler, PimFlowConfig
    from repro.serve import InferenceServer, ModelRepository, ServerConfig
    from repro.serve.loadgen import run_closed_loop

    resolved = normalize_model_name(model)
    plan = Compiler(PimFlowConfig(mechanism="gpu")).build_plan(
        build_model(resolved), model_name=resolved)
    # Interleaved best-of-3: the two configurations alternate inside
    # one wall-clock window, so slow drift (page cache, CPU governor)
    # cancels out of the ratio instead of biasing one side; three
    # rounds of a longer measured loop keep one preempted request from
    # deciding the recorded ratio.
    rps: Dict[str, float] = {"host_locked_rps": 0.0, "host_rps": 0.0}
    for _ in range(3):
        for states, key in ((1, "host_locked_rps"), (4, "host_rps")):
            repo = ModelRepository()
            repo.register_plan(model, plan)
            server = InferenceServer(repo, ServerConfig(
                workers=4, max_batch_size=1, max_wait_ms=0.0,
                queue_depth=64, host_states=states))
            with server:
                # Warm-up burst: binds every pooled execution state
                # (arena allocation, closure binding) outside the
                # measured window, so the measured run is pure
                # steady-state dispatch.
                run_closed_loop(server, model, clients=4,
                                requests_per_client=2)
                result = run_closed_loop(server, model, clients=4,
                                         requests_per_client=6)
            rps[key] = max(rps[key], result.wall_rps)
    locked = rps["host_locked_rps"]
    return {
        f"serve.{model}.host_rps": rps["host_rps"],
        f"serve.{model}.host_locked_rps": locked,
        f"serve.{model}.host_win": rps["host_rps"] / locked if locked else 0.0,
    }


def run_benchmarks(models: Iterable[str] = DEFAULT_MODELS,
                   batches: Iterable[int] = DEFAULT_BATCHES,
                   rounds: int = DEFAULT_ROUNDS,
                   progress=print) -> Dict[str, object]:
    """Run every benchmark; returns the ``BENCH_RUNTIME.json`` payload."""
    models = tuple(models)
    batches = tuple(batches)
    metrics: Dict[str, float] = {}
    for model in models:
        progress(f"[perf] numerical {model} (batches {batches}) ...")
        metrics.update(bench_numerical(model, batches, rounds))
        progress(f"[perf] split-graph {model} (elide on/off) ...")
        metrics.update(bench_split(model, rounds))
        progress(f"[perf] compile {model} ...")
        metrics.update(bench_compile(model, rounds))
        if model in SERVE_MODELS:
            progress(f"[perf] serve A/B {model} (batch-1 vs dynamic) ...")
            metrics.update(bench_serving(model))
            progress(f"[perf] host concurrency {model} "
                     f"(pooled vs locked states) ...")
            metrics.update(bench_host_concurrency(model))
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "models": list(models),
            "batches": list(batches),
            "rounds": rounds,
        },
        "metrics": {k: round(v, 3) for k, v in sorted(metrics.items())},
    }


# ----------------------------------------------------------------------
# Baseline I/O and comparison
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> Dict[str, object]:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}")
    return data


def save_baseline(path: Path, results: Dict[str, object]) -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def higher_is_better(metric: str) -> bool:
    """Throughput-style metrics regress when they *drop*.

    Everything else in the harness is a time or footprint (smaller is
    better); ``_rps`` suffixes and the serving win ratios (``.win``,
    ``host_win``) are the higher-is-better family.
    """
    return (metric.endswith("_rps") or metric.endswith(".win")
            or metric.endswith("_win"))


def compare(baseline: Dict[str, object], current: Dict[str, object],
            fail_ratio: float = DEFAULT_FAIL_RATIO,
            ) -> Tuple[List[Tuple[str, Optional[float], Optional[float],
                                  Optional[float], str]], bool]:
    """Per-metric deltas of ``current`` against ``baseline``.

    Returns ``(rows, ok)`` where each row is ``(metric, baseline_ms,
    current_ms, ratio, status)``.  Status is ``"ok"``, ``"faster"``
    (>25% better), ``"slower"`` (worse but under the threshold),
    ``"REGRESSION"`` (over ``fail_ratio``), or ``"new"``/``"missing"``
    for metrics present on only one side (never a failure — the metric
    set may legitimately grow).  ``ok`` is False iff any row regressed.

    The reported ratio is always worse-is-bigger: for throughput-style
    metrics (see :func:`higher_is_better`) it is ``baseline/current``,
    so one ``fail_ratio`` threshold tripwires both families.
    """
    base_metrics: Dict[str, float] = dict(baseline.get("metrics", {}))
    cur_metrics: Dict[str, float] = dict(current.get("metrics", {}))
    rows = []
    ok = True
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None:
            rows.append((name, None, cur, None, "new"))
            continue
        if cur is None:
            rows.append((name, base, None, None, "missing"))
            continue
        if higher_is_better(name):
            ratio = base / cur if cur > 0 else float("inf")
        else:
            ratio = cur / base if base > 0 else float("inf")
        if ratio > fail_ratio:
            status = "REGRESSION"
            ok = False
        elif ratio > 1.25:
            status = "slower"
        elif ratio < 0.75:
            status = "faster"
        else:
            status = "ok"
        rows.append((name, base, cur, ratio, status))
    return rows, ok


#: Intra-run compiled-vs-interpreted pairs: the compiled executor must
#: not lose to the interpreted oracle on the same model and batch.
#: ``fused_ms`` is the default executor configuration at batch 1;
#: ``compiled_batch{B}_ms`` is the serial compiled path at the repeat
#: batch.  Keys are (compiled metric suffix, interpreted metric suffix).
TRIPWIRE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("fused_ms", "batch1_ms"),
    ("compiled_batch8_ms", "batch8_ms"),
)

#: Measurement-noise allowance for :func:`tripwires` — best-of-rounds
#: timings on a shared runner still jitter a few percent.
TRIPWIRE_SLACK = 1.15


def tripwires(results: Dict[str, object],
              slack: float = TRIPWIRE_SLACK,
              ) -> Tuple[List[Tuple[str, str, float, float, float, str]],
                         bool]:
    """Intra-run invariants on one results payload (no baseline needed).

    For every model measured, each :data:`TRIPWIRE_PAIRS` entry asserts
    ``compiled <= interpreted * slack``: a compiled executable that runs
    slower than the interpreter it compiles away is a regression no
    matter what the historical baseline says (this is what caught the
    resnet-50 batch-8 channel-sliced tiling pathology).  Pairs whose
    metrics are absent from the run (e.g. batch 8 not measured) are
    skipped.  Returns ``(rows, ok)`` with rows of ``(model,
    compiled_metric, compiled_ms, interpreted_ms, ratio, status)``.
    """
    metrics: Dict[str, float] = dict(results.get("metrics", {}))
    models = sorted({name.split(".")[1] for name in metrics
                     if name.startswith("numerical.")})
    rows = []
    ok = True
    for model in models:
        for compiled_key, interp_key in TRIPWIRE_PAIRS:
            compiled = metrics.get(f"numerical.{model}.{compiled_key}")
            interp = metrics.get(f"numerical.{model}.{interp_key}")
            if compiled is None or interp is None:
                continue
            ratio = compiled / interp if interp > 0 else float("inf")
            status = "ok" if ratio <= slack else "SLOWER-THAN-INTERPRETED"
            if status != "ok":
                ok = False
            rows.append((model, compiled_key, compiled, interp, ratio,
                         status))
    return rows, ok


def format_tripwire_rows(rows) -> str:
    lines = [f"{'model':16s} {'compiled metric':20s} {'compiled':>10s} "
             f"{'interp':>10s} {'ratio':>7s}  status"]
    for model, key, compiled, interp, ratio, status in rows:
        lines.append(f"{model:16s} {key:20s} {compiled:10.1f} "
                     f"{interp:10.1f} {ratio:6.2f}x  {status}")
    return "\n".join(lines)


def format_rows(rows) -> str:
    lines = [f"{'metric':44s} {'baseline':>10s} {'current':>10s} "
             f"{'ratio':>7s}  status"]
    for name, base, cur, ratio, status in rows:
        base_s = f"{base:10.1f}" if base is not None else f"{'-':>10s}"
        cur_s = f"{cur:10.1f}" if cur is not None else f"{'-':>10s}"
        ratio_s = f"{ratio:6.2f}x" if ratio is not None else f"{'-':>7s}"
        lines.append(f"{name:44s} {base_s} {cur_s} {ratio_s}  {status}")
    return "\n".join(lines)
