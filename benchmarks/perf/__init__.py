"""Tracked performance microbenchmarks for the two hot paths.

This package times (1) the vectorized numpy reference executor and
(2) the full ``PimFlow.compile`` pipeline on a fixed model set, and
keeps the measured trajectory in ``BENCH_RUNTIME.json`` at the repo
root so perf wins and regressions are visible in review.

Usage (from the repo root)::

    python benchmarks/perf/run.py              # measure and print
    python benchmarks/perf/run.py --update     # rewrite BENCH_RUNTIME.json
    python benchmarks/perf/run.py --check      # compare vs baseline; exit 1
                                               # on a >3x regression

``run.py`` bootstraps ``sys.path`` itself, so no ``PYTHONPATH`` setup
is needed.  The CI perf-smoke job runs ``--check`` with a deliberately
loose 3x failure threshold: shared runners are noisy, and the job
exists to catch egregious regressions, not 10% drift.
"""
