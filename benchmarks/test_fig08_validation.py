"""Fig. 8 — simulator validation: PIM vs. GPU GEMV across batch sizes.

Reproduces the Newton validation experiment: matrix-vector workloads on
a Titan-V-class GPU vs. the DRAM-PIM with all channels PIM-enabled.
The paper's simulator measures a 20.4x PIM advantage at batch 1
(between Newton's reported 50x and the follow-up's 10x), shrinking as
batch size grows until the GPU wins.
"""

import pytest

from conftest import report
from repro.graph.builder import GraphBuilder
from repro.gpu.config import TITAN_V
from repro.gpu.device import GpuDevice
from repro.pim.config import HBM_VALIDATION, NEWTON_PLUS, PimConfig
from repro.pim.device import PimDevice

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
HIDDEN = 4096


def _gemv_graph(batch):
    b = GraphBuilder("gemv", seed=0)
    x = b.input("x", (batch, HIDDEN))
    b.output(b.gemm(x, HIDDEN, name="fc"))
    return b.build()


def _sweep():
    gpu = GpuDevice(TITAN_V)
    # Validation setup: the whole 24-channel HBM memory is PIM-enabled,
    # matching Newton's configuration.
    pim = PimDevice(HBM_VALIDATION, NEWTON_PLUS)
    series = {}
    for batch in BATCHES:
        g = _gemv_graph(batch)
        node = g.node("fc")
        gpu_t = gpu.run_node(node, g).time_us
        pim_t = pim.run_node(node, g).time_us
        series[batch] = (gpu_t, pim_t, gpu_t / pim_t)
    return series


def test_fig08_simulator_validation(benchmark):
    series = benchmark(_sweep)

    lines = ["batch    GPU (us)    PIM (us)    PIM speedup"]
    for batch, (gpu_t, pim_t, speedup) in series.items():
        lines.append(f"{batch:5d} {gpu_t:11.1f} {pim_t:11.1f} {speedup:11.2f}x")
    report("fig08_validation", lines)

    # Batch-1 GEMV: order-of-magnitude PIM advantage, in the validated
    # 10x-50x window with ~20x as the paper's own measurement.
    assert 8.0 < series[1][2] < 40.0
    # The advantage shrinks monotonically (within noise) with batch size.
    speedups = [series[b][2] for b in BATCHES]
    assert speedups[0] > speedups[3] > speedups[-1]
    # The GPU catches up at large batch: crossover at or before 256.
    assert speedups[-1] < 2.0
