"""Fig. 14 — isolating the PIM command optimizations.

End-to-end model time with the Newton+ offloading scheme under four
command configurations: baseline, +GWRITE latency hiding, +multiple
global buffers, and both.  Paper: hiding alone +9%, buffers alone +14%,
combined +22% — neither absorbs or interferes with the other.
"""

import functools

import pytest

from conftest import get_model, report
from repro.memsys.system import MemorySystem
from repro.pim.config import PimOptimizations
from repro.pimflow import PimFlow, PimFlowConfig

MODELS = ("mobilenet-v2", "efficientnet-v1-b0", "mnasnet-1.0")

CONFIGS = {
    "newton+": PimOptimizations(),
    "+hiding": PimOptimizations(gwrite_latency_hiding=True),
    "+buffers": PimOptimizations(num_gwrite_buffers=4),
    "both": PimOptimizations(num_gwrite_buffers=4,
                             gwrite_latency_hiding=True),
}


@functools.lru_cache(maxsize=None)
def _run(model: str, config_name: str) -> float:
    flow = PimFlow(PimFlowConfig(
        mechanism="newton+",
        memory=MemorySystem(32, 16),
        pim_opts=CONFIGS[config_name],
    ))
    return flow.run(get_model(model)).makespan_us


def _sweep():
    return {name: sum(_run(model, name) for model in MODELS)
            for name in CONFIGS}


def test_fig14_command_optimizations(benchmark):
    totals = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    base = totals["newton+"]
    speedups = {name: base / t for name, t in totals.items()}

    lines = ["configuration   total model time (us)   speedup vs Newton+"]
    for name in CONFIGS:
        lines.append(f"{name:14s} {totals[name]:18.1f} {speedups[name]:16.2f}x")
    report("fig14_cmd_opt", lines)

    # Each optimization helps on its own (paper: +9% and +14%).
    assert speedups["+hiding"] > 1.02
    assert speedups["+buffers"] > 1.02
    # Buffers are the stronger single optimization, as in the paper.
    assert speedups["+buffers"] >= speedups["+hiding"] - 0.03
    # Combined, they compose without cancelling (paper: +22%).
    assert speedups["both"] >= max(speedups["+hiding"],
                                   speedups["+buffers"]) - 1e-6
    assert 1.08 < speedups["both"] < 1.6
