"""Fig. 1 — GPU runtime breakdown and conv arithmetic intensity.

Left: fraction of inference runtime per kernel class on the GPU
baseline, per model.  Right: arithmetic intensity (MACs per byte) of
convolution layers, showing 1x1 convolutions in the low-intensity
regime that motivates PIM offload.
"""

import pytest

from conftest import EVALUATED_MODELS, get_flow, get_model, report
from repro.analysis.breakdown import arithmetic_intensities, runtime_breakdown
from repro.gpu.device import GpuDevice

CATEGORIES = ("conv", "conv1x1", "dwconv", "fc", "other")


def _breakdowns():
    gpu = GpuDevice()
    rows = {}
    for model in EVALUATED_MODELS:
        graph = get_flow("gpu").prepare(get_model(model))
        breakdown = runtime_breakdown(graph, gpu)
        total = sum(breakdown.values())
        rows[model] = {cat: breakdown.get(cat, 0.0) / total
                       for cat in CATEGORIES}
    return rows


def test_fig01_runtime_breakdown(benchmark):
    rows = benchmark(_breakdowns)

    lines = ["model                 " + "  ".join(f"{c:>8s}" for c in CATEGORIES)]
    for model, fracs in rows.items():
        lines.append(f"{model:20s} " + "  ".join(
            f"{fracs[c] * 100:7.1f}%" for c in CATEGORIES))
    report("fig01_breakdown", lines)

    # Convolution layers dominate CNN inference (the paper's premise).
    for model, fracs in rows.items():
        conv_total = fracs["conv"] + fracs["conv1x1"] + fracs["dwconv"]
        assert conv_total > 0.5, model
    # Mobile models are 1x1-heavy; VGG16 is 3x3-heavy.
    assert rows["mobilenet-v2"]["conv1x1"] > rows["vgg-16"]["conv1x1"]
    assert rows["vgg-16"]["conv"] > rows["mobilenet-v2"]["conv"]
    # VGG16's FC layers are a visible share of its runtime.
    assert rows["vgg-16"]["fc"] > 0.05


def test_fig01_arithmetic_intensity(benchmark):
    def collect():
        out = {}
        for model in EVALUATED_MODELS:
            graph = get_model(model)
            ai = arithmetic_intensities(graph)
            pointwise, spatial = [], []
            for name, value in ai:
                node = graph.node(name)
                kh, kw = node.attr("kernel_shape")
                if kh == 1 and kw == 1 and int(node.attr("group", 1)) == 1:
                    pointwise.append(value)
                elif int(node.attr("group", 1)) == 1:
                    spatial.append(value)
            out[model] = (pointwise, spatial)
        return out

    data = benchmark(collect)
    lines = ["model                 mean AI (1x1)   mean AI (kxk)"]
    for model, (pw, sp) in data.items():
        mean_pw = sum(pw) / len(pw) if pw else float("nan")
        mean_sp = sum(sp) / len(sp) if sp else float("nan")
        lines.append(f"{model:20s} {mean_pw:14.1f} {mean_sp:15.1f}")
    report("fig01_intensity", lines)

    # 1x1 convolutions sit at much lower arithmetic intensity than deep
    # spatial convolutions (Fig. 1 right).  ResNet50 contains both in
    # volume; the mobile models' only spatial convs are tiny stems, and
    # VGG16 has no pointwise layers at all.
    res_pw, res_sp = data["resnet-50"]
    assert sum(res_pw) / len(res_pw) < 0.6 * sum(res_sp) / len(res_sp)
    vgg_sp = data["vgg-16"][1]
    vgg_mean = sum(vgg_sp) / len(vgg_sp)
    for model in ("mobilenet-v2", "mnasnet-1.0", "efficientnet-v1-b0"):
        pw = data[model][0]
        assert sum(pw) / len(pw) < 0.2 * vgg_mean, model
