"""Extension — cross-validation of the two GPU timing paths.

The roofline model (used by the search, thousands of evaluations) and
the block-level SIMT scheduler (explicit waves, the step toward
Accel-Sim) must tell the same story across a real model's GEMM-class
kernel population: same bound classification for the overwhelming
majority and magnitudes within a small factor.
"""

import pytest

from conftest import get_flow, get_model, report
from repro.gpu.config import RTX2060
from repro.gpu.kernels import node_cost
from repro.gpu.simt import simulate_gemm_node
from repro.graph.ops import is_pim_candidate

MODELS = ("mobilenet-v2", "resnet-50")


def _compare():
    rows = []
    for model in MODELS:
        graph = get_flow("gpu").prepare(get_model(model))
        for node in graph.nodes:
            if node.op_type not in ("Conv", "Gemm"):
                continue
            shapes = [graph.tensors[t].shape for t in node.inputs]
            if not is_pim_candidate(node, shapes):
                continue
            roof = node_cost(node, graph, RTX2060)
            simt = simulate_gemm_node(node, graph, RTX2060)
            rows.append((model, node.name, roof.time_us, simt.time_us,
                         roof.bound, simt.bound))
    return rows


def test_ext_simt_cross_validation(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)

    ratios = [simt / roof for _, _, roof, simt, _, _ in rows]
    agree = sum(1 for _, _, _, _, rb, sb in rows
                if rb == sb or rb == "latency")
    lines = [
        f"layers compared:        {len(rows)}",
        f"simt/roofline ratio:    min {min(ratios):.2f}  "
        f"median {sorted(ratios)[len(ratios) // 2]:.2f}  max {max(ratios):.2f}",
        f"bound agreement:        {agree}/{len(rows)}",
    ]
    report("ext_simt_validation", lines)

    assert len(rows) > 50
    # Magnitudes within a small factor everywhere.
    assert all(0.2 < r < 5.0 for r in ratios)
    # Median near parity.
    assert 0.5 < sorted(ratios)[len(ratios) // 2] < 2.0
    # Bound classification agrees on the large majority.
    assert agree / len(rows) > 0.75
