"""Table 2 — distribution of MD-DP split ratios across all models.

Paper: over the PIM-candidate layers of the five CNN models, 41% fully
offload to DRAM-PIM (ratio 0), 58% split at intermediate ratios, and
0% remain fully on the GPU.
"""

import pytest

from conftest import EVALUATED_MODELS, compile_model, get_flow, get_model, report
from repro.analysis.ratios import candidate_layer_names, mddp_ratio_distribution

BUCKETS = tuple(range(0, 101, 10))


def _distribution():
    counts = {b: 0.0 for b in BUCKETS}
    total = 0
    for model in EVALUATED_MODELS:
        flow = get_flow("pimflow-md")
        prepared = flow.prepare(get_model(model))
        compiled = compile_model(model, "pimflow-md")
        dist = mddp_ratio_distribution(compiled.decisions,
                                       candidate_layer_names(prepared))
        n = len(candidate_layer_names(prepared))
        for bucket, frac in dist.items():
            counts[bucket] += frac * n
        total += n
    return {b: c / total for b, c in counts.items()}


def test_tab02_split_ratio_distribution(benchmark):
    dist = benchmark.pedantic(_distribution, rounds=1, iterations=1)

    lines = ["Split ratio to GPU (0: total offload)",
             "  ".join(f"{b:>4d}%" for b in BUCKETS),
             "  ".join(f"{dist[b] * 100:4.0f}%" for b in BUCKETS)]
    report("tab02_ratios", lines)

    assert sum(dist.values()) == pytest.approx(1.0)
    # Substantial full offloading (paper: 41%; we land lower because our
    # GPU model keeps slivers slightly more competitive).
    assert dist[0] > 0.10
    # A broad band of intermediate splits (paper: 58% total).
    middle = sum(v for b, v in dist.items() if 0 < b < 100)
    assert middle > 0.40
    # Almost nothing stays fully on the GPU (paper: 0%).
    assert dist[100] < 0.10
