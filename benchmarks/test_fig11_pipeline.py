"""Fig. 11 — pipelined subgraphs vs. the same nodes in MD-DP mode.

Two panels:

1. The pipelining candidates the Algorithm-1 solver actually adopted,
   with their time relative to the best MD-DP treatment of the same
   chain.  By construction of the DP every adopted chain wins; the
   paper's Fig. 11 similarly filters to subgraphs with >10% speedup or
   <25% slowdown.
2. A depth-spread raw sample of every pattern type, pipelined
   unconditionally — showing why the search must be selective: early
   large-spatial instances lose badly when their 1x1 layers are forced
   onto PIM.

Divergence note: the paper finds the Type 1 (1x1-DW) pattern the most
profitable; under our cost model the solver most often adopts the
longer Type 3 (1x1-DW-1x1) chains, which overlap the GPU depthwise with
*two* PIM stages.  The load-bearing shape — pipelining only pays on
chains mixing PIM-friendly 1x1 convs with the GPU-bound depthwise, and
only when selected judiciously — is preserved.
"""

import pytest

from conftest import compile_model, get_flow, get_model, report
from repro.search.profiler import extract_subgraph, profile_pipeline
from repro.transform.patterns import find_pipeline_candidates

MODELS = ("mobilenet-v2", "mnasnet-1.0", "efficientnet-v1-b0")


def _mddp_time(flow, graph, chain):
    """Best per-node (MD-DP or device) time for the chain, serialized."""
    table = flow.profile(extract_subgraph(graph, chain))
    return sum(table.best(name, 1).time_us for name in chain)


def _selected():
    """Solver-adopted pipeline chains and their win over MD-DP."""
    flow = get_flow("pimflow")
    rows = []
    for model in MODELS:
        prepared = flow.prepare(get_model(model))
        kinds = {tuple(p.chain): p.kind
                 for p in find_pipeline_candidates(prepared)}
        compiled = compile_model(model, "pimflow")
        table = compiled.table
        for d in compiled.decisions:
            if d.mode != "pipeline":
                continue
            alternative = sum(table.best(n, 1).time_us for n in d.nodes)
            rows.append((model, kinds.get(tuple(d.nodes), "?"),
                         d.time_us / alternative))
    return rows


def _sampled():
    """Unconditional pipelining of depth-spread pattern samples."""
    flow = get_flow("pimflow")
    ratios = {}
    for model in MODELS:
        graph = flow.prepare(get_model(model))
        by_kind = {}
        for pattern in find_pipeline_candidates(graph):
            by_kind.setdefault(pattern.kind, []).append(pattern)
        for kind, patterns in by_kind.items():
            step = max(1, len(patterns) // 4)
            for pattern in patterns[::step][:4]:
                pl = profile_pipeline(graph, pattern.chain, flow.engine,
                                      num_stages=2)
                if pl is None:
                    continue
                md = _mddp_time(flow, graph, pattern.chain)
                ratios.setdefault(pattern.kind, []).append(pl / md)
    return ratios


def test_fig11_pipeline_vs_mddp(benchmark):
    selected, sampled = benchmark.pedantic(
        lambda: (_selected(), _sampled()), rounds=1, iterations=1)

    lines = ["-- solver-adopted pipelines (pipelined / MD-DP) --",
             "model                 kind           ratio"]
    for model, kind, ratio in selected:
        lines.append(f"{model:20s} {kind:12s} {ratio:7.3f}")
    lines.append("")
    lines.append("-- unconditional depth-spread sample --")
    lines.append("pattern        n    mean    best   worst")
    for kind, values in sorted(sampled.items()):
        lines.append(f"{kind:12s} {len(values):3d} {sum(values) / len(values):7.3f} "
                     f"{min(values):7.3f} {max(values):7.3f}")
    report("fig11_pipeline", lines)

    # The search adopts pipelines somewhere (MobileNet-family models).
    assert selected, "no pipelines adopted — calibration regression"
    # Every adopted chain beats its MD-DP alternative (the DP guarantees
    # it; this checks decision bookkeeping end to end).
    for model, kind, ratio in selected:
        assert ratio <= 1.0 + 1e-9, (model, kind, ratio)
    # Adopted chains always combine 1x1 (PIM) with depthwise (GPU).
    assert all(kind in ("1x1-dw", "dw-1x1", "1x1-dw-1x1")
               for _, kind, _ in selected)
    # Unconditional pipelining loses on early instances — selection is
    # load-bearing (paper's Fig. 11 filtering).
    assert any(max(v) > 1.25 for v in sampled.values())
    # And wins on the right instances.
    assert any(min(v) < 1.0 for v in sampled.values())
