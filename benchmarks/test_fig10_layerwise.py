"""Fig. 10 — layerwise breakdown of nodes executed in MD-DP mode.

For the layers the search chose to split, compares the GPU-only,
full-offload (Newton++), and MD-DP split times, normalized to GPU.
MD-DP's value is exactly that parallel execution beats both extremes
for layers where neither device dominates.
"""

import pytest

from conftest import compile_model, get_flow, get_model, report
from repro.search.table import MeasurementTable

MODEL = "mobilenet-v2"


def _layerwise():
    compiled = compile_model(MODEL, "pimflow-md")
    table = compiled.table
    rows = []
    for d in compiled.decisions:
        if d.mode != "split" or not (0.0 < (d.ratio_gpu or 0) < 1.0):
            continue
        name = d.nodes[0]
        options = table.options(name, 1)
        gpu_t = next(m.time_us for m in options if m.mode == "gpu")
        offload = [m.time_us for m in options
                   if m.mode == "split" and m.ratio_gpu == 0.0]
        pim_t = offload[0] if offload else float("nan")
        rows.append((name, gpu_t, pim_t, d.time_us, d.ratio_gpu))
    return rows


def test_fig10_mddp_layerwise(benchmark):
    rows = benchmark.pedantic(_layerwise, rounds=1, iterations=1)
    assert rows, "search selected no MD-DP splits — calibration regression"

    lines = ["layer                      GPU(us)  PIM(us)  MD-DP(us)  ratio  "
             "vs GPU"]
    for name, gpu_t, pim_t, split_t, ratio in rows:
        lines.append(f"{name:26s} {gpu_t:7.2f} {pim_t:8.2f} {split_t:9.2f} "
                     f"{ratio:6.1f} {gpu_t / split_t:6.2f}x")
    report("fig10_layerwise", lines)

    for name, gpu_t, pim_t, split_t, _ in rows:
        # The chosen split beats both pure placements (it was chosen by
        # the DP over exactly these measurements).
        assert split_t <= gpu_t + 1e-6, name
        assert split_t <= pim_t + 1e-6, name
    # Splits deliver a real layerwise speedup on average (Fig. 10 shows
    # substantial bars below 1.0).
    avg = sum(gpu_t / split_t for _, gpu_t, _, split_t, _ in rows) / len(rows)
    assert avg > 1.1
