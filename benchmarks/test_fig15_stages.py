"""Fig. 15 — pipeline stage-count sensitivity.

More stages shrink prologue/epilogue serialization but multiply kernel
launch and synchronization overheads.  Paper: more than two stages
costs more than the extra overlap buys.
"""

import pytest

from conftest import get_flow, get_model, report
from repro.search.profiler import profile_pipeline
from repro.transform.patterns import find_pipeline_candidates

STAGES = (2, 3, 4, 5)
MODEL = "mobilenet-v2"


def _sweep():
    flow = get_flow("pimflow")
    graph = flow.prepare(get_model(MODEL))
    patterns = [p for p in find_pipeline_candidates(graph)
                if p.kind == "1x1-dw"]
    assert patterns
    # Sample across network depth; the late 1x1-heavy blocks are where
    # pipelining is actually adopted.
    step = max(1, len(patterns) // 6)
    totals = {s: 0.0 for s in STAGES}
    usable = 0
    for pattern in patterns[::step][:8]:
        times = {s: profile_pipeline(graph, pattern.chain, flow.engine,
                                     num_stages=s) for s in STAGES}
        if any(t is None for t in times.values()):
            continue
        usable += 1
        for s in STAGES:
            totals[s] += times[s]
    assert usable >= 3
    return {s: totals[s] / usable for s in STAGES}


def test_fig15_stage_granularity(benchmark):
    means = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = ["stages   mean pipelined subgraph time (us)   vs 2 stages"]
    for s in STAGES:
        lines.append(f"{s:6d} {means[s]:28.2f} {means[s] / means[2]:13.3f}")
    report("fig15_stages", lines)

    # Two stages is the sweet spot, within noise (paper Fig. 15).
    assert means[2] <= 1.02 * min(means.values())
    # Overheads grow with stage count; five stages clearly lose.
    assert means[5] > means[2]
    assert means[5] >= means[3] - 0.5
