"""Fig. 3 — GPU inference time vs. number of memory channels.

The preliminary observation enabling the GPU/PIM channel split:
compute-intensive models are barely hurt when memory channels are taken
away from the GPU, because their roofline sits on the compute side.
"""

import pytest

from conftest import get_flow, get_model, report
from repro.gpu.device import GpuDevice

MODELS = ("resnet-50", "vgg-16", "mobilenet-v2")
CHANNELS = (8, 12, 16, 20, 24, 28, 32)


def _sweep():
    rows = {}
    for model in MODELS:
        graph = get_flow("gpu").prepare(get_model(model))
        times = {c: GpuDevice().with_channels(c).run_graph(graph).time_us
                 for c in CHANNELS}
        base = times[24]
        rows[model] = {c: t / base for c, t in times.items()}
    return rows


def test_fig03_channel_sensitivity(benchmark):
    rows = benchmark(_sweep)

    lines = ["model                 " + "  ".join(f"{c:>5d}ch" for c in CHANNELS)
             + "   (normalized to 24ch)"]
    for model, series in rows.items():
        lines.append(f"{model:20s} " + "  ".join(
            f"{series[c]:7.3f}" for c in CHANNELS))
    report("fig03_channels", lines)

    for model, series in rows.items():
        # Monotone: fewer channels never help.
        values = [series[c] for c in CHANNELS]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), model
        # Halving channels from 32 to 16 costs far less than 2x for
        # compute-intensive models (the paper's enabling observation).
        assert series[16] / series[32] < 1.5, model
    # VGG16 (most compute-bound) is the least sensitive at 16 channels.
    assert rows["vgg-16"][16] <= rows["mobilenet-v2"][16] + 0.05
