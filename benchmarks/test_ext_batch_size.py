"""Extension — batch-size sensitivity of the PIM advantage.

The paper evaluates single-batch inference; Fig. 8 shows the GEMV PIM
advantage eroding with batch size as GPU utilization recovers.  This
extension runs the full PIMFlow toolchain on MobileNetV2 at batches
1-4: the speedup should shrink with batch, both because GPU kernels
regain utilization (more GEMM rows) and because the batch>1 memory
layout disables the H-axis slice/concat elision.
"""

import pytest

from conftest import report
from repro.models.mobilenet import build_mobilenet_v2
from repro.pimflow import PimFlow, PimFlowConfig

BATCHES = (1, 2, 4)


def _sweep():
    rows = {}
    for batch in BATCHES:
        model = build_mobilenet_v2(batch=batch)
        base = PimFlow(PimFlowConfig(mechanism="gpu")).run(model).makespan_us
        pf = PimFlow(PimFlowConfig(mechanism="pimflow")).run(model).makespan_us
        rows[batch] = (base, pf, base / pf)
    return rows


def test_ext_batch_size_sensitivity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = ["batch   GPU (us)   PIMFlow (us)   speedup"]
    for batch, (base, pf, speedup) in rows.items():
        lines.append(f"{batch:5d} {base:10.1f} {pf:14.1f} {speedup:8.2f}x")
    report("ext_batch_size", lines)

    # Batch 1 is PIM's sweet spot.
    assert rows[1][2] > 1.3
    # The advantage erodes monotonically with batch size: GPU kernels
    # regain utilization, layers grow memory-bound on the halved GPU
    # channel count, and batch>1 disables the slice/concat elision.
    assert rows[1][2] > rows[2][2] > rows[4][2]
    # By batch 4 the 16/16 channel split itself is unprofitable — the
    # dedicated-PIM-channel design is a batch-1 inference design point,
    # consistent with the paper's single-batch evaluation scope.
    assert 0.6 < rows[4][2] < 1.05
