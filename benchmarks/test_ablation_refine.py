"""Future work (paper Section 9) — auto-tuning the execution modes.

Algorithm 1 optimizes the *sum* of region times; the real schedule
overlaps devices across region boundaries, so the DP solution is not
necessarily makespan-optimal.  This bench runs the makespan-aware
hill-climbing refinement from `repro.search.refine` on top of the DP
solution and measures what the paper's proposed auto-tuning could buy.
"""

import pytest

from conftest import get_flow, get_model, report
from repro.search.apply import apply_decisions
from repro.search.refine import refine_decisions

MODELS = ("mobilenet-v2", "efficientnet-v1-b0")


def _measure():
    rows = {}
    for model in MODELS:
        flow = get_flow("pimflow-md")
        graph = flow.prepare(get_model(model))
        compiled = flow.compile(graph)
        dp_time = flow.engine.run(compiled.graph).makespan_us
        _, refined_time = refine_decisions(graph, compiled.decisions,
                                           flow.engine, rounds=1)
        rows[model] = (dp_time, refined_time)
    return rows


def test_ablation_makespan_refinement(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = ["model                 DP solve (us)   refined (us)   gain"]
    for model, (dp, refined) in rows.items():
        lines.append(f"{model:20s} {dp:13.1f} {refined:13.1f} "
                     f"{(dp / refined - 1) * 100:6.2f}%")
    report("ablation_refine", lines)

    for model, (dp, refined) in rows.items():
        # Refinement never regresses and the DP is already near-optimal
        # (small single-digit-percent headroom), supporting the paper's
        # choice to leave auto-tuning as future work.
        assert refined <= dp + 1e-6, model
        assert dp / refined < 1.10, model
