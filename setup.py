"""Setup shim: the environment lacks the wheel package, so editable
installs fall back to ``python setup.py develop`` via this file."""
from setuptools import setup

setup()
