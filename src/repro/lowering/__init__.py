"""Convolution lowering: im2col, PIM tiling, and NHWC layout helpers."""

from repro.lowering.im2col import (
    LoweredGemv,
    im2col_matrix,
    lower_conv,
    lower_gemm,
    lower_node,
    lowered_weight_matrix,
)
from repro.lowering.tiling import ChannelTile, tile_over_channels, GRANULARITIES
from repro.lowering.layout import (
    nhwc_strides,
    slice_is_contiguous,
    concat_is_contiguous,
    pad_offset_bytes,
)

__all__ = [
    "LoweredGemv",
    "im2col_matrix",
    "lower_conv",
    "lower_gemm",
    "lower_node",
    "lowered_weight_matrix",
    "ChannelTile",
    "tile_over_channels",
    "GRANULARITIES",
    "nhwc_strides",
    "slice_is_contiguous",
    "concat_is_contiguous",
    "pad_offset_bytes",
]
