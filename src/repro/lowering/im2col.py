"""Convolution lowering to matrix-vector multiplication.

The DRAM-PIM executes one operation: GEMV of a large, low-reuse operand
(the lowered input rows, streamed through the per-channel global
buffers) against a small, high-reuse operand (the filter matrix placed
in the memory cell arrays).  ``lower_conv`` produces the
:class:`LoweredGemv` descriptor the code generator consumes, and
``im2col_matrix`` provides the functional equivalent used to verify
command traces against the numpy reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import ShapeError, is_depthwise


@dataclass(frozen=True)
class LoweredGemv:
    """A convolution or FC layer lowered to ``rows`` GEMVs of (K) x (K, N).

    Attributes
    ----------
    rows:
        Number of input vectors (output spatial positions x batch for a
        conv; batch rows for an FC layer).
    k:
        Reduction length (``kh * kw * cin_per_group`` for a conv).
    n:
        Output width (``cout``).
    contiguous_k:
        Length of the innermost contiguous run of each input vector in
        NHWC memory.  For a pointwise (1x1) conv the whole vector is one
        run (``cin``); for a k x k conv each kernel-row segment of
        ``kw * cin`` elements... strictly each kernel *row* gives ``kw *
        cin`` contiguous elements only when stride-1 in W; we expose the
        per-tap run ``cin`` as the conservative value the strided-GWRITE
        extension exploits.
    strided:
        True when input vectors are gathered from non-contiguous
        addresses and benefit from the strided-GWRITE command.
    """

    rows: int
    k: int
    n: int
    contiguous_k: int
    strided: bool

    @property
    def macs(self) -> int:
        """Total multiply-accumulate count."""
        return self.rows * self.k * self.n


def lower_conv(node: Node, graph: Graph) -> LoweredGemv:
    """Lower a (non-depthwise) Conv node to a GEMV batch descriptor."""
    if node.op_type != "Conv":
        raise ValueError(f"lower_conv expects a Conv node, got {node.op_type}")
    in_shape = graph.tensors[node.inputs[0]].shape
    if is_depthwise(node, [in_shape]):
        raise ShapeError(
            f"depthwise conv {node.name!r} is not PIM-lowerable: the global "
            "buffer would need a flush per input channel (paper Section 4.2.2)"
        )
    out_shape = graph.tensors[node.outputs[0]].shape
    w_shape = graph.tensors[node.inputs[1]].shape
    kh, kw, cin_g, cout = w_shape
    group = int(node.attr("group", 1))
    n_batch, oh, ow, _ = out_shape
    rows = n_batch * oh * ow
    k = kh * kw * cin_g
    pointwise = kh == 1 and kw == 1 and group == 1
    return LoweredGemv(
        rows=rows,
        k=k,
        n=cout,
        contiguous_k=k if pointwise else cin_g,
        strided=not pointwise,
    )


def lower_gemm(node: Node, graph: Graph) -> LoweredGemv:
    """Lower a Gemm/MatMul node to a GEMV batch descriptor."""
    if node.op_type not in ("Gemm", "MatMul"):
        raise ValueError(f"lower_gemm expects Gemm/MatMul, got {node.op_type}")
    a = graph.tensors[node.inputs[0]].shape
    b = graph.tensors[node.inputs[1]].shape
    rows = 1
    for d in a[:-1]:
        rows *= d
    k = a[-1]
    n = b[-1]
    return LoweredGemv(rows=rows, k=k, n=n, contiguous_k=k, strided=False)


def lower_node(node: Node, graph: Graph) -> LoweredGemv:
    """Lower any PIM-candidate node."""
    if node.op_type == "Conv":
        return lower_conv(node, graph)
    return lower_gemm(node, graph)


def im2col_matrix(x: np.ndarray, kernel: Tuple[int, int], strides: Tuple[int, int],
                  pads: Tuple[int, int, int, int]) -> np.ndarray:
    """Rearrange an NHWC input into the (rows, K) lowered matrix.

    Row ordering is (n, oh, ow); column ordering is (kh, kw, cin), so the
    product with :func:`lowered_weight_matrix` reproduces the direct
    convolution bit-for-bit in float32.
    """
    n, h, w, cin = x.shape
    kh, kw = kernel
    sh, sw = strides
    pt, pl, pb, pr = pads
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    oh = (h + pt + pb - kh) // sh + 1
    ow = (w + pl + pr - kw) // sw + 1
    cols = np.empty((n, oh, ow, kh, kw, cin), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, :, i, j, :] = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
    return cols.reshape(n * oh * ow, kh * kw * cin)


def lowered_weight_matrix(w: np.ndarray) -> np.ndarray:
    """Reshape a (kh, kw, cin, cout) filter to the (K, cout) matrix."""
    kh, kw, cin, cout = w.shape
    return w.reshape(kh * kw * cin, cout)
