"""Tiling lowered GEMVs over PIM channels and banks.

The command scheduler in the DRAM-PIM back-end distributes work across
PIM-enabled channels at three granularities (paper Fig. 6):

* ``"g_act"``   — whole 32-column blocks (one column I/O row) per
  channel; coarse, leaves channels idle when the filter matrix is
  small.
* ``"readres"`` — output columns round-robined at result-read
  granularity.
* ``"comp"``    — the reduction (K) dimension is additionally split so
  every channel contributes partial sums when output columns alone
  cannot fill the channels; finest granularity, maximum channel-level
  parallelism, extra result-combine traffic.

Each :class:`ChannelTile` carries explicit column and K offsets so the
functional model (:mod:`repro.pim.functional`) can reconstruct the exact
computation and the timing model can aggregate per channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.lowering.im2col import LoweredGemv

GRANULARITIES = ("g_act", "readres", "comp")

#: Output columns per column-I/O row; the work quantum at ``g_act``
#: granularity.
COLUMN_BLOCK = 32


@dataclass(frozen=True)
class ChannelTile:
    """One channel's share of a lowered GEMV.

    Covers output columns ``[col_start, col_start + n)`` over reduction
    range ``[k_start, k_start + k)`` for all ``rows`` input vectors.
    ``partial`` marks K-split tiles whose results are partial sums that
    must be combined with tiles covering the same columns.
    """

    channel: int
    rows: int
    k_start: int
    k: int
    col_start: int
    n: int
    partial: bool = False

    @property
    def macs(self) -> int:
        return self.rows * self.k * self.n


def _split_even(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal non-negative chunks."""
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def _column_partition(gemv: LoweredGemv, num_channels: int, quantum: int) -> List[ChannelTile]:
    """Partition output columns over channels in blocks of ``quantum``."""
    num_blocks = math.ceil(gemv.n / quantum)
    used = min(num_channels, num_blocks)
    shares = _split_even(gemv.n, used)
    tiles: List[ChannelTile] = []
    col = 0
    for c, share in enumerate(shares):
        if share == 0:
            continue
        tiles.append(ChannelTile(channel=c, rows=gemv.rows, k_start=0, k=gemv.k,
                                 col_start=col, n=share))
        col += share
    return tiles


def tile_over_channels(gemv: LoweredGemv, num_channels: int,
                       granularity: str = "comp") -> List[ChannelTile]:
    """Distribute a lowered GEMV across PIM channels.

    Channels that receive no work are omitted.  At ``comp`` granularity
    with fewer output columns than channels, the reduction dimension is
    split (bounded by the 16-element column-I/O granule) and the
    resulting partial tiles are round-robined over the channels.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(f"granularity must be one of {GRANULARITIES}")
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")

    if granularity == "g_act":
        return _column_partition(gemv, num_channels, COLUMN_BLOCK)

    if granularity == "readres" or gemv.n >= num_channels:
        return _column_partition(gemv, num_channels, 1)

    # comp granularity with idle channels: split K as well.
    k_splits = max(1, num_channels // max(gemv.n, 1))
    k_splits = min(k_splits, max(1, gemv.k // 16))
    if k_splits == 1:
        return _column_partition(gemv, num_channels, 1)
    k_shares = _split_even(gemv.k, k_splits)
    tiles: List[ChannelTile] = []
    c = 0
    for col in range(gemv.n):
        k_off = 0
        for ks in k_shares:
            if ks == 0:
                continue
            tiles.append(ChannelTile(channel=c % num_channels, rows=gemv.rows,
                                     k_start=k_off, k=ks, col_start=col, n=1,
                                     partial=True))
            k_off += ks
            c += 1
    return tiles


def tiles_by_channel(tiles: List[ChannelTile]) -> Dict[int, List[ChannelTile]]:
    """Group tiles by their channel, preserving order."""
    out: Dict[int, List[ChannelTile]] = {}
    for t in tiles:
        out.setdefault(t.channel, []).append(t)
    return out
