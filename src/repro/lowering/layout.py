"""NHWC memory-layout math for the memory optimizer.

The paper's memory optimization (Section 4.3.2, Fig. 7) rests on two
facts about single-batch NHWC tensors:

1. Slicing or concatenating along the H axis touches one contiguous
   byte range, so with co-allocated buffers the Slice/Concat operators
   are no-ops.
2. Pre-allocating the padded input extent and writing data at the pad
   offset eliminates the Pad operator.

These helpers let the memory optimizer and the tests reason about which
Slice/Concat/Pad nodes are elidable.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def nhwc_strides(shape: Tuple[int, int, int, int], elem_size: int = 2) -> Tuple[int, int, int, int]:
    """Byte strides of a dense NHWC tensor."""
    n, h, w, c = shape
    sc = elem_size
    sw = c * sc
    sh = w * sw
    sn = h * sh
    return (sn, sh, sw, sc)


def slice_is_contiguous(shape: Sequence[int], axis: int) -> bool:
    """True when slicing ``axis`` selects one contiguous byte range.

    For a dense tensor this holds when every axis *before* ``axis`` has
    extent 1 (e.g. H-slices of an NHWC tensor with batch 1).
    """
    axis = axis % len(shape)
    return all(d == 1 for d in shape[:axis])


def concat_is_contiguous(shapes: Sequence[Sequence[int]], axis: int) -> bool:
    """True when concatenation along ``axis`` can be a no-op.

    Requires each piece to be individually contiguous along the axis and
    all non-axis dimensions to agree, so the pieces can be co-allocated
    back-to-back in one buffer.
    """
    if not shapes:
        return False
    axis = axis % len(shapes[0])
    first = list(shapes[0])
    for s in shapes:
        if len(s) != len(first):
            return False
        if not slice_is_contiguous(s, axis):
            return False
        for i, (a, b) in enumerate(zip(first, s)):
            if i != axis and a != b:
                return False
    return True


def pad_offset_bytes(shape: Tuple[int, int, int, int],
                     pads: Tuple[int, int, int, int], elem_size: int = 2) -> int:
    """Byte offset at which unpadded data starts inside a pre-padded buffer.

    ``pads`` is (top, left, bottom, right) on the H/W axes of an NHWC
    tensor.  The write offset is ``top`` padded rows plus ``left`` padded
    pixels into the padded row pitch.
    """
    n, h, w, c = shape
    pt, pl, pb, pr = pads
    padded_w = w + pl + pr
    row_pitch = padded_w * c * elem_size
    return pt * row_pitch + pl * c * elem_size
