"""Top-level PIMFlow API: configure, profile, solve, compile, run.

This module wires the whole stack together the way the artifact's
``pimflow`` driver script does:

1. ``profile`` measures every PIM-candidate layer at the configured
   split ratios and every pipelining candidate chain on the simulators.
2. ``solve`` runs the Algorithm-1 DP over the measurement table.
3. ``compile`` applies the chosen transformations and the memory-layout
   optimizer, yielding the executable graph.
4. ``run`` schedules the compiled graph on the mixed-parallel engine.

The ``mechanism`` selects the offloading scheme of the evaluation
(Section 5): ``gpu``, ``newton+``, ``newton++``, ``pimflow-md``,
``pimflow-pl``, or ``pimflow``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.graph.ops import is_pim_candidate
from repro.gpu.config import GpuConfig, RTX2060
from repro.gpu.device import GpuDevice
from repro.memsys.system import MemorySystem
from repro.pim.config import (
    NEWTON,
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.device import PimDevice
from repro.runtime.engine import ExecutionEngine, RunResult
from repro.search.apply import apply_decisions
from repro.search.profiler import (
    extract_subgraph,
    profile_pipeline,
    profile_split,
)
from repro.search.solver import Decision, solve
from repro.search.table import MeasurementTable, RegionMeasurement
from repro.transform.patterns import find_pipeline_candidates


@dataclass(frozen=True)
class MechanismSpec:
    """What an offloading mechanism is allowed to do."""

    uses_pim: bool
    split_ratios: Tuple[float, ...]   # allowed GPU ratios besides 1.0
    pipelines: bool
    pim_opts: Optional[PimOptimizations]


def _md_ratios(step: float) -> Tuple[float, ...]:
    count = int(round(1.0 / step))
    return tuple(round(i * step, 4) for i in range(count + 1))


MECHANISMS: Dict[str, MechanismSpec] = {
    "gpu": MechanismSpec(False, (), False, None),
    "newton": MechanismSpec(True, (0.0, 1.0), False, NEWTON),
    "newton+": MechanismSpec(True, (0.0, 1.0), False, NEWTON_PLUS),
    "newton++": MechanismSpec(True, (0.0, 1.0), False, NEWTON_PLUS_PLUS),
    "pimflow-md": MechanismSpec(True, _md_ratios(0.1), False, NEWTON_PLUS_PLUS),
    "pimflow-pl": MechanismSpec(True, (0.0, 1.0), True, NEWTON_PLUS_PLUS),
    "pimflow": MechanismSpec(True, _md_ratios(0.1), True, NEWTON_PLUS_PLUS),
}


@dataclass(frozen=True)
class PimFlowConfig:
    """Full configuration of one PIMFlow instantiation."""

    mechanism: str = "pimflow"
    memory: MemorySystem = field(default_factory=MemorySystem)
    gpu_base: GpuConfig = RTX2060
    pim_base: PimConfig = field(default_factory=PimConfig)
    ratio_step: float = 0.1
    pipeline_stages: int = 2
    #: Additional stage counts the search may consider per chain (the
    #: DP then picks the best-measured option).  Default: only the
    #: configured ``pipeline_stages``, matching the paper; Fig. 15
    #: justifies this with the stage-count sensitivity study.
    pipeline_stage_options: Tuple[int, ...] = ()
    #: Run the standard TVM inference fusions (BN folding, activation
    #: fusion) before any PIM-specific pass.  Applied to every
    #: mechanism including the GPU baseline, so comparisons are fair.
    fuse: bool = True
    #: Override the mechanism's PIM command-level optimization flags —
    #: used by the Fig. 14 ablation to isolate individual command
    #: optimizations on top of the Newton+ offloading scheme.
    pim_opts: Optional[PimOptimizations] = None
    #: Verify after compilation that all PIM-resident filter weights fit
    #: the PIM channels' reserved capacity (raises PlacementError
    #: otherwise).  The paper places weights in the cell arrays in
    #: advance and implicitly assumes they fit.
    check_placement: bool = True

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise ValueError(
                f"unknown mechanism {self.mechanism!r}; "
                f"choose from {sorted(MECHANISMS)}")

    @property
    def spec(self) -> MechanismSpec:
        spec = MECHANISMS[self.mechanism]
        if spec.split_ratios and len(spec.split_ratios) > 2 and self.ratio_step != 0.1:
            return replace(spec, split_ratios=_md_ratios(self.ratio_step))
        return spec


@dataclass
class CompiledModel:
    """Result of the compile step."""

    graph: Graph
    decisions: List[Decision]
    table: MeasurementTable
    predicted_time_us: float


class PimFlow:
    """One configured PIMFlow toolchain instance."""

    def __init__(self, config: Optional[PimFlowConfig] = None) -> None:
        self.config = config or PimFlowConfig()
        spec = self.config.spec
        if spec.uses_pim:
            gpu_cfg = self.config.memory.gpu_config(self.config.gpu_base)
            self.gpu = GpuDevice(gpu_cfg, write_through=True)
            pim_cfg = self.config.memory.pim_config(self.config.pim_base)
            opts = self.config.pim_opts or spec.pim_opts
            self.pim: Optional[PimDevice] = PimDevice(pim_cfg, opts)
        else:
            self.gpu = GpuDevice(self.config.gpu_base, write_through=False)
            self.pim = None
        self.engine = ExecutionEngine(self.gpu, self.pim)

    def prepare(self, graph: Graph) -> Graph:
        """Apply the mechanism-independent inference optimizations:
        constant folding, dead-code elimination, BN folding, and
        activation fusion."""
        if not self.config.fuse:
            return graph
        from repro.transform.cleanup import cleanup
        from repro.transform.fusion import fuse
        return fuse(cleanup(graph))

    # ------------------------------------------------------------------
    # Step 1: profile
    # ------------------------------------------------------------------
    def profile(self, graph: Graph) -> MeasurementTable:
        """Measure all execution-mode samples for ``graph``."""
        spec = self.config.spec
        table = MeasurementTable()
        order = [n.name for n in graph.toposort()]
        shapes = {t.name: t.shape for t in graph.tensors.values()}

        for name in order:
            node = graph.node(name)
            input_shapes = [shapes[t] for t in node.inputs]
            candidate = spec.uses_pim and is_pim_candidate(node, input_shapes)
            region = extract_subgraph(graph, [name])
            if candidate:
                ratios = set(spec.split_ratios) | {1.0}
                results = profile_split(region, name, self.engine, sorted(ratios))
                for ratio, time_us in results.items():
                    if ratio >= 1.0:
                        table.add(RegionMeasurement(name, 1, "gpu", time_us))
                    else:
                        table.add(RegionMeasurement(name, 1, "split", time_us,
                                                    ratio_gpu=ratio))
            else:
                for n in region.nodes:
                    n.device = "gpu"
                time_us = self.engine.run(region).makespan_us
                table.add(RegionMeasurement(name, 1, "gpu", time_us))

        if spec.uses_pim and spec.pipelines:
            positions = {name: i for i, name in enumerate(order)}
            stage_options = tuple(dict.fromkeys(
                (self.config.pipeline_stages,)
                + tuple(self.config.pipeline_stage_options)))
            for pattern in find_pipeline_candidates(graph):
                i = positions[pattern.chain[0]]
                span = len(pattern.chain)
                if tuple(order[i:i + span]) != pattern.chain:
                    continue  # chain is not contiguous in topo order
                for stages in stage_options:
                    time_us = profile_pipeline(graph, pattern.chain,
                                               self.engine, num_stages=stages)
                    if time_us is not None:
                        table.add(RegionMeasurement(
                            pattern.chain[0], span, "pipeline", time_us,
                            chain=pattern.chain, stages=stages))
        return table

    # ------------------------------------------------------------------
    # Step 2: solve
    # ------------------------------------------------------------------
    def solve(self, graph: Graph,
              table: MeasurementTable) -> Tuple[float, List[Decision]]:
        """Run the Algorithm-1 DP over the measurement table."""
        order = [n.name for n in graph.toposort()]
        return solve(order, table)

    # ------------------------------------------------------------------
    # Step 3: compile
    # ------------------------------------------------------------------
    def compile(self, graph: Graph,
                table: Optional[MeasurementTable] = None) -> CompiledModel:
        """Fuse, profile (unless a table is given), solve, and transform."""
        prepared = self.prepare(graph)
        if table is None:
            table = self.profile(prepared)
        predicted, decisions = self.solve(prepared, table)
        transformed = apply_decisions(prepared, decisions)
        transformed.validate()
        if self.pim is not None and self.config.check_placement:
            from repro.pim.placement import plan_placement

            pim_layers = [
                n.name for n in transformed.nodes
                if n.device == "pim"
                and n.op_type in ("Conv", "Gemm", "MatMul")
                and len(n.inputs) > 1 and n.inputs[1] in transformed.initializers
            ]
            plan_placement(transformed, self.pim.config, self.pim.opts,
                           pim_layers)
        return CompiledModel(graph=transformed, decisions=decisions,
                             table=table, predicted_time_us=predicted)

    # ------------------------------------------------------------------
    # Step 4: run
    # ------------------------------------------------------------------
    def run(self, graph: Graph,
            compiled: Optional[CompiledModel] = None) -> RunResult:
        """Schedule an inference of ``graph`` (compiling if needed)."""
        if self.config.mechanism == "gpu":
            g = self.prepare(graph).clone()
            for node in g.nodes:
                node.device = "gpu"
            return self.engine.run(g)
        if compiled is None:
            compiled = self.compile(graph)
        return self.engine.run(compiled.graph)


def run_mechanism(graph: Graph, mechanism: str,
                  config: Optional[PimFlowConfig] = None) -> RunResult:
    """Convenience one-shot: compile and run ``graph`` under a mechanism."""
    base = config or PimFlowConfig()
    flow = PimFlow(replace(base, mechanism=mechanism))
    return flow.run(graph)
