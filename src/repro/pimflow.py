"""Top-level PIMFlow API: configure, profile, solve, compile, run.

This module wires the whole stack together the way the artifact's
``pimflow`` driver script does, split into an ahead-of-time compile
layer and a thin runtime facade:

* :class:`Compiler` owns the expensive phases — ``profile`` (Algorithm-1
  measurements, memoized through a content-addressed
  :class:`~repro.plan.cache.ProfileCache`), ``solve`` (the DP), and
  ``compile`` (graph transformation).  ``build_plan`` packages the
  result as a serializable :class:`~repro.plan.artifact.ExecutionPlan`
  so compilation happens once and execution many times — including in
  processes that never import the search subsystem (see
  :class:`~repro.runtime.executor.PlanExecutor`).
* :class:`PimFlow` preserves the original one-object API: ``profile``,
  ``solve``, ``compile`` delegate to the compiler and ``run`` schedules
  on the mixed-parallel engine exactly as before.

The ``mechanism`` selects the offloading scheme of the evaluation
(Section 5): ``gpu``, ``newton+``, ``newton++``, ``pimflow-md``,
``pimflow-pl``, or ``pimflow``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exec.progress import ProgressReporter
from repro.graph.graph import Graph
from repro.graph.ops import is_pim_candidate
from repro.gpu.config import GpuConfig, RTX2060
from repro.gpu.device import GpuDevice
from repro.memsys.system import MemorySystem
from repro.pim.config import (
    NEWTON,
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.device import PimDevice
from repro.plan.artifact import ExecutionPlan
from repro.plan.cache import MemoryProfileCache, ProfileCache
from repro.plan.fingerprint import config_fingerprint, graph_fingerprint
from repro.runtime.engine import ExecutionEngine, RunResult
from repro.search.apply import apply_decisions
from repro.search.profiler import ProfileRequest, RegionProfiler
from repro.search.solver import Decision, solve
from repro.search.table import MeasurementTable
from repro.transform.passes import PREPARE_PASSES, PassContext, PassManager
from repro.transform.patterns import find_pipeline_candidates


@dataclass(frozen=True)
class MechanismSpec:
    """What an offloading mechanism is allowed to do."""

    uses_pim: bool
    split_ratios: Tuple[float, ...]   # allowed GPU ratios besides 1.0
    pipelines: bool
    pim_opts: Optional[PimOptimizations]


def _md_ratios(step: float) -> Tuple[float, ...]:
    count = int(round(1.0 / step))
    return tuple(round(i * step, 4) for i in range(count + 1))


MECHANISMS: Dict[str, MechanismSpec] = {
    "gpu": MechanismSpec(False, (), False, None),
    "newton": MechanismSpec(True, (0.0, 1.0), False, NEWTON),
    "newton+": MechanismSpec(True, (0.0, 1.0), False, NEWTON_PLUS),
    "newton++": MechanismSpec(True, (0.0, 1.0), False, NEWTON_PLUS_PLUS),
    "pimflow-md": MechanismSpec(True, _md_ratios(0.1), False, NEWTON_PLUS_PLUS),
    "pimflow-pl": MechanismSpec(True, (0.0, 1.0), True, NEWTON_PLUS_PLUS),
    "pimflow": MechanismSpec(True, _md_ratios(0.1), True, NEWTON_PLUS_PLUS),
}


@dataclass(frozen=True)
class PimFlowConfig:
    """Full configuration of one PIMFlow instantiation."""

    mechanism: str = "pimflow"
    memory: MemorySystem = field(default_factory=MemorySystem)
    gpu_base: GpuConfig = RTX2060
    pim_base: PimConfig = field(default_factory=PimConfig)
    ratio_step: float = 0.1
    pipeline_stages: int = 2
    #: Additional stage counts the search may consider per chain (the
    #: DP then picks the best-measured option).  Default: only the
    #: configured ``pipeline_stages``, matching the paper; Fig. 15
    #: justifies this with the stage-count sensitivity study.
    pipeline_stage_options: Tuple[int, ...] = ()
    #: Run the standard TVM inference fusions (BN folding, activation
    #: fusion) before any PIM-specific pass.  Applied to every
    #: mechanism including the GPU baseline, so comparisons are fair.
    fuse: bool = True
    #: Override the mechanism's PIM command-level optimization flags —
    #: used by the Fig. 14 ablation to isolate individual command
    #: optimizations on top of the Newton+ offloading scheme.
    pim_opts: Optional[PimOptimizations] = None
    #: Verify after compilation that all PIM-resident filter weights fit
    #: the PIM channels' reserved capacity (raises PlacementError
    #: otherwise).  The paper places weights in the cell arrays in
    #: advance and implicitly assumes they fit.
    check_placement: bool = True
    #: Directory for the content-addressed profile cache; None keeps
    #: the cache in memory (see ``memoize``).
    cache_dir: Optional[Union[str, Path]] = None
    #: With no ``cache_dir``, memoize measurements in process memory so
    #: repeat ``profile()``/``compile()`` calls on one toolchain replay
    #: them instead of re-running the simulators.  Set False to force
    #: every profile through the simulators (e.g. when timing them).
    memoize: bool = True
    #: Profiling worker processes: 1 = serial (historical behaviour),
    #: N > 1 = fan cache misses out over N workers, 0 = one worker per
    #: CPU.  None defers to the ``REPRO_JOBS`` environment variable
    #: (default 1).  Parallel profiling is deterministic — the
    #: measurement table is byte-identical to the serial one — so this
    #: knob deliberately does not participate in the configuration
    #: fingerprint.
    jobs: Optional[int] = None
    #: Host inference workers: the operator-parallel dispatch width
    #: inside each compiled run (1 = serial, the historical behaviour;
    #: 0 = one per CPU core).  None defers to the
    #: ``REPRO_HOST_WORKERS`` environment variable (default 1).  The
    #: parallel schedule is byte-identical to serial — hazard edges
    #: derived from the buffer plan keep every conflicting access in
    #: program order — so, like ``jobs``, this knob does not
    #: participate in the configuration fingerprint.
    host_workers: Optional[int] = None
    #: Intra-operator GEMM shard cap: how many row panels a single
    #: conv/matmul step may split into on the host pool (None = follow
    #: ``host_workers``; 0 = one per CPU core; 1 = off; N > 1 = force).
    #: Defers to the ``REPRO_GEMM_SHARDS`` environment variable when
    #: unset.  Row-panel splits are byte-identical to the serial kernel
    #: (see :class:`repro.runtime.gemmpar.ShardPolicy` for the floors
    #: that guarantee it), so — like ``host_workers`` — this knob does
    #: not participate in the configuration fingerprint.
    gemm_shards: Optional[int] = None
    #: Per-job wall-clock limit in parallel mode; a job exceeding it is
    #: retried and eventually recorded as failed.  None = no limit.
    job_timeout_s: Optional[float] = None
    #: Failed-attempt retries per job before recording a failure.
    job_retries: int = 2
    #: Front-end pass pipeline run by ``prepare`` (registered pass
    #: names); empty = the standard TVM-style front end
    #: (:data:`repro.transform.passes.PREPARE_PASSES`).  Participates in
    #: the configuration fingerprint — a different front end means
    #: different measured regions.
    prepare_passes: Tuple[str, ...] = ()
    #: Run the inter-pass verifier after every compiler pass:
    #: ``Graph.validate()`` (full shape re-inference), graph-interface
    #: preservation, clone-discipline (purity) checking, and — with
    #: ``verify_numeric`` — a numeric equivalence spot check against
    #: the numpy oracle.  The CLI flag ``--verify-passes`` sets this.
    verify_passes: bool = False
    #: Include the numeric oracle spot check in pass verification
    #: (ignored unless ``verify_passes`` is on).
    verify_numeric: bool = True
    #: Snapshot the graph IR after every compiler pass into this
    #: directory (``<seq>_<pass>.json``); the CLI flag ``--dump-ir``.
    dump_ir_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise ValueError(
                f"unknown mechanism {self.mechanism!r}; "
                f"choose from {sorted(MECHANISMS)}")

    def resolved_host_workers(self) -> int:
        """Effective host inference worker count (see
        :func:`repro.runtime.hostpool.resolve_host_workers`)."""
        from repro.runtime.hostpool import resolve_host_workers
        return resolve_host_workers(self.host_workers)

    def shard_policy(self):
        """The :class:`~repro.runtime.gemmpar.ShardPolicy` this config
        implies: the environment default with ``gemm_shards`` applied
        on top when set."""
        from repro.runtime.gemmpar import ShardPolicy
        return ShardPolicy.from_env().with_gemm_shards(self.gemm_shards)

    @property
    def spec(self) -> MechanismSpec:
        spec = MECHANISMS[self.mechanism]
        if spec.split_ratios and len(spec.split_ratios) > 2 and self.ratio_step != 0.1:
            return replace(spec, split_ratios=_md_ratios(self.ratio_step))
        return spec


@dataclass
class CompiledModel:
    """Result of the compile step."""

    graph: Graph
    decisions: List[Decision]
    table: MeasurementTable
    predicted_time_us: float
    #: Per-pass instrumentation log (``PassRecord.to_dict`` form) from
    #: the front-end and decision-application pipelines.
    pass_records: List[Dict[str, object]] = field(default_factory=list)


class Compiler:
    """The ahead-of-time half of the toolchain.

    Owns the simulated devices, the execution engine used for
    measurements, and (optionally) a profile cache.  All expensive work
    happens here; the products — a :class:`CompiledModel` or a
    serializable :class:`ExecutionPlan` — can be executed repeatedly
    without re-entering any of it.
    """

    def __init__(self, config: Optional[PimFlowConfig] = None,
                 cache: Optional[ProfileCache] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        self.config = config or PimFlowConfig()
        self.progress = progress
        spec = self.config.spec
        if spec.uses_pim:
            gpu_cfg = self.config.memory.gpu_config(self.config.gpu_base)
            self.gpu = GpuDevice(gpu_cfg, write_through=True)
            pim_cfg = self.config.memory.pim_config(self.config.pim_base)
            opts = self.config.pim_opts or spec.pim_opts
            self.pim: Optional[PimDevice] = PimDevice(pim_cfg, opts)
        else:
            self.gpu = GpuDevice(self.config.gpu_base, write_through=False)
            self.pim = None
        self.engine = ExecutionEngine(self.gpu, self.pim)
        if cache is None and self.config.cache_dir:
            cache = ProfileCache(self.config.cache_dir)
        elif cache is None and self.config.memoize:
            cache = MemoryProfileCache()
        self.cache = cache
        self._config_fp: Optional[str] = None
        #: Summary of the most recent profile phase (request counts,
        #: cache hits, jobs run, wall-clock) for CLI/telemetry use.
        self.last_profile_summary: Dict[str, object] = {}
        #: Per-pass instrumentation log of the most recent
        #: ``prepare``/``compile``/``build_plan`` (list of
        #: ``PassRecord.to_dict`` dicts) for CLI/provenance use.
        self.last_pass_records: List[Dict[str, object]] = []

    @property
    def jobs(self) -> int:
        """Resolved profiling worker count: the config's ``jobs`` knob,
        else the ``REPRO_JOBS`` environment variable, else 1."""
        if self.config.jobs is not None:
            return self.config.jobs
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "") or 1)
        except ValueError:
            return 1
        return jobs if jobs >= 0 else 1  # a broken env var never aborts

    @property
    def config_fingerprint(self) -> str:
        """Stable hash of everything that can change a measurement.

        Cache entries live under this fingerprint; any change to the
        mechanism, device configs, optimization flags, or engine
        parameters moves the toolchain to a disjoint cache namespace,
        which is exactly the invalidation the cache needs.
        """
        if self._config_fp is None:
            self._config_fp = config_fingerprint(
                mechanism=self.config.mechanism,
                spec=self.config.spec,
                gpu_config=self.gpu.config,
                pim_config=self.pim.config if self.pim else None,
                pim_opts=self.pim.opts if self.pim else None,
                extra={
                    "fuse": self.config.fuse,
                    "prepare_passes": list(self.prepare_passes),
                    "pipeline_stages": self.config.pipeline_stages,
                    "pipeline_stage_options":
                        list(self.config.pipeline_stage_options),
                    "write_through": self.gpu.write_through,
                    "sync_overhead_us": self.engine.sync_overhead_us,
                    "host_io": self.engine.host_io,
                })
        return self._config_fp

    @property
    def prepare_passes(self) -> Tuple[str, ...]:
        """Resolved front-end pipeline (config override or the default)."""
        return tuple(self.config.prepare_passes) or PREPARE_PASSES

    def pass_manager(self) -> PassManager:
        """A pass manager wired from the config's verification knobs."""
        return PassManager(verify=self.config.verify_passes,
                           verify_numeric=self.config.verify_numeric,
                           dump_dir=self.config.dump_ir_dir)

    def prepare(self, graph: Graph,
                manager: Optional[PassManager] = None) -> Graph:
        """Apply the mechanism-independent inference optimizations:
        constant folding, dead-code elimination, BN folding, and
        activation fusion — as the registered front-end pass pipeline.

        Pass a ``manager`` to accumulate instrumentation records across
        phases (``compile`` does); standalone calls record their
        per-pass log on :attr:`last_pass_records`.
        """
        mgr = manager or self.pass_manager()
        if self.config.fuse:
            graph = mgr.run(self.prepare_passes, graph, PassContext())
        self.last_pass_records = mgr.record_dicts()
        return graph

    # ------------------------------------------------------------------
    # Step 1: profile
    # ------------------------------------------------------------------
    def _profile_requests(self, graph: Graph) -> Tuple[List[ProfileRequest], int]:
        """Enumerate every measurement Algorithm 1 needs, in the
        canonical (topological, then pipeline-pattern) order the serial
        profiler has always used.  Returns the requests and the number
        of PIM-candidate regions among them."""
        spec = self.config.spec
        order = [n.name for n in graph.toposort()]
        shapes = {t.name: t.shape for t in graph.tensors.values()}
        requests: List[ProfileRequest] = []
        candidates = 0

        for name in order:
            node = graph.node(name)
            input_shapes = [shapes[t] for t in node.inputs]
            if spec.uses_pim and is_pim_candidate(node, input_shapes):
                candidates += 1
                ratios = sorted(set(spec.split_ratios) | {1.0})
                requests.append(ProfileRequest("split", (name,),
                                               tuple(ratios)))
            else:
                requests.append(ProfileRequest("gpu", (name,)))

        if spec.uses_pim and spec.pipelines:
            positions = {name: i for i, name in enumerate(order)}
            stage_options = tuple(dict.fromkeys(
                (self.config.pipeline_stages,)
                + tuple(self.config.pipeline_stage_options)))
            for pattern in find_pipeline_candidates(graph):
                i = positions[pattern.chain[0]]
                span = len(pattern.chain)
                if tuple(order[i:i + span]) != pattern.chain:
                    continue  # chain is not contiguous in topo order
                candidates += 1
                for stages in stage_options:
                    requests.append(ProfileRequest(
                        "pipeline", tuple(pattern.chain), stages=stages))
        return requests, candidates

    def profile(self, graph: Graph) -> MeasurementTable:
        """Measure all execution-mode samples for ``graph``.

        With a cache configured, regions whose structural fingerprints
        were measured before (under this configuration fingerprint) are
        served from disk with zero simulator invocations.  With
        ``jobs > 1`` (or ``REPRO_JOBS`` set), cache misses fan out over
        worker processes through :mod:`repro.exec`; the resulting table
        is byte-identical to the serial one.
        """
        t0 = time.perf_counter()
        requests, candidates = self._profile_requests(graph)
        profiler = RegionProfiler(
            self.engine, self.cache, self.config_fingerprint,
            jobs=self.jobs, engine_spec=self.runtime_spec(),
            timeout_s=self.config.job_timeout_s,
            retries=self.config.job_retries,
            progress=self.progress)
        if self.cache is not None:
            self.cache.reset_stats()
        table = MeasurementTable()
        for measurements in profiler.profile_requests(graph, requests):
            for m in measurements:
                table.add(m)
        if self.cache is not None:
            self.cache.record_run(self.config_fingerprint)
        self.last_profile_summary = {
            "candidates": candidates,
            "samples": len(table),
            **profiler.last_stats,
            "failed_jobs": [r.to_dict() for r in profiler.failed_jobs],
            "wall_s": time.perf_counter() - t0,
        }
        return table

    # ------------------------------------------------------------------
    # Step 2: solve
    # ------------------------------------------------------------------
    def solve(self, graph: Graph,
              table: MeasurementTable) -> Tuple[float, List[Decision]]:
        """Run the Algorithm-1 DP over the measurement table."""
        order = [n.name for n in graph.toposort()]
        return solve(order, table)

    # ------------------------------------------------------------------
    # Step 3: compile
    # ------------------------------------------------------------------
    def compile(self, graph: Graph,
                table: Optional[MeasurementTable] = None) -> CompiledModel:
        """Fuse, profile (unless a table is given), solve, and transform.

        The front-end and decision-application pipelines run through
        one shared :class:`~repro.transform.passes.PassManager`, so the
        full per-pass log lands on :attr:`last_pass_records` (and in
        the plan provenance via :meth:`build_plan`).
        """
        manager = self.pass_manager()
        prepared = self.prepare(graph, manager=manager)
        if table is None:
            table = self.profile(prepared)
        predicted, decisions = self.solve(prepared, table)
        transformed = apply_decisions(prepared, decisions, manager=manager)
        self.last_pass_records = manager.record_dicts()
        transformed.validate()
        if self.pim is not None and self.config.check_placement:
            from repro.pim.placement import plan_placement

            pim_layers = [
                n.name for n in transformed.nodes
                if n.device == "pim"
                and n.op_type in ("Conv", "Gemm", "MatMul")
                and len(n.inputs) > 1 and n.inputs[1] in transformed.initializers
            ]
            plan_placement(transformed, self.pim.config, self.pim.opts,
                           pim_layers)
        return CompiledModel(graph=transformed, decisions=decisions,
                             table=table, predicted_time_us=predicted,
                             pass_records=list(self.last_pass_records))

    # ------------------------------------------------------------------
    # Step 3b: package as a reusable artifact
    # ------------------------------------------------------------------
    def runtime_spec(self) -> Dict[str, object]:
        """Serializable description of the execution environment, enough
        for :class:`~repro.runtime.executor.PlanExecutor` — or a
        profiling worker process — to rebuild an identical engine
        without this compiler."""
        return {"mechanism": self.config.mechanism, **self.engine.to_spec()}

    def build_plan(self, graph: Graph, model_name: Optional[str] = None,
                   with_traces: bool = False,
                   compiled: Optional[CompiledModel] = None) -> ExecutionPlan:
        """Compile ``graph`` into a self-contained execution plan.

        The plan carries the transformed graph, the solver decisions,
        the runtime spec, and provenance; ``with_traces`` additionally
        attaches explicit PIM command programs for every offloaded
        layer (for offline inspection and replay).  Pass an existing
        ``compiled`` model to package it without re-compiling.
        """
        from repro import __version__

        source_fp = graph_fingerprint(graph)
        if self.config.mechanism == "gpu":
            transformed = self.prepare(graph).clone()
            for node in transformed.nodes:
                node.device = "gpu"
            decisions: List[Dict[str, object]] = []
            predicted = self.engine.run(transformed).makespan_us
            num_measurements = 0
            pass_records = list(self.last_pass_records)
        else:
            if compiled is None:
                compiled = self.compile(graph)
            transformed = compiled.graph
            decisions = [d.to_dict() for d in compiled.decisions]
            predicted = compiled.predicted_time_us
            num_measurements = len(compiled.table)
            pass_records = list(compiled.pass_records)

        traces: Dict[str, object] = {}
        if with_traces and self.pim is not None:
            from repro.codegen.generator import traces_for_graph
            from repro.codegen.trace_io import trace_to_dict
            traces = {
                name: trace_to_dict(trace)
                for name, trace in traces_for_graph(
                    transformed, self.pim.config, self.pim.opts).items()
            }

        from repro.runtime.bufferplan import plan_buffers
        buffer_plan = plan_buffers(transformed).stats()

        return ExecutionPlan(
            mechanism=self.config.mechanism,
            config_fingerprint=self.config_fingerprint,
            graph=transformed,
            decisions=decisions,
            predicted_time_us=predicted,
            runtime_spec=self.runtime_spec(),
            buffer_plan=buffer_plan,
            provenance={
                "model": model_name or graph.name,
                "created_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"),
                "repro_version": __version__,
                "source_graph_fingerprint": source_fp,
                "measurements": num_measurements,
                "passes": pass_records,
            },
            traces=traces,
        )


class PimFlow:
    """One configured PIMFlow toolchain instance.

    A thin facade over :class:`Compiler` plus the execution engine,
    preserving the original profile/solve/compile/run API.
    """

    def __init__(self, config: Optional[PimFlowConfig] = None,
                 cache: Optional[ProfileCache] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        self.compiler = Compiler(config, cache=cache, progress=progress)

    @property
    def config(self) -> PimFlowConfig:
        return self.compiler.config

    @property
    def gpu(self) -> GpuDevice:
        return self.compiler.gpu

    @property
    def pim(self) -> Optional[PimDevice]:
        return self.compiler.pim

    @property
    def engine(self) -> ExecutionEngine:
        return self.compiler.engine

    @property
    def cache(self) -> Optional[ProfileCache]:
        return self.compiler.cache

    def prepare(self, graph: Graph) -> Graph:
        return self.compiler.prepare(graph)

    def profile(self, graph: Graph) -> MeasurementTable:
        """Measure all execution-mode samples for ``graph``."""
        return self.compiler.profile(graph)

    def solve(self, graph: Graph,
              table: MeasurementTable) -> Tuple[float, List[Decision]]:
        """Run the Algorithm-1 DP over the measurement table."""
        return self.compiler.solve(graph, table)

    def compile(self, graph: Graph,
                table: Optional[MeasurementTable] = None) -> CompiledModel:
        """Fuse, profile (unless a table is given), solve, and transform."""
        return self.compiler.compile(graph, table)

    def build_plan(self, graph: Graph, model_name: Optional[str] = None,
                   with_traces: bool = False,
                   compiled: Optional[CompiledModel] = None) -> ExecutionPlan:
        """Compile ``graph`` into a serializable execution plan."""
        return self.compiler.build_plan(graph, model_name=model_name,
                                        with_traces=with_traces,
                                        compiled=compiled)

    # ------------------------------------------------------------------
    # Step 4: run
    # ------------------------------------------------------------------
    def run(self, graph: Graph,
            compiled: Optional[CompiledModel] = None) -> RunResult:
        """Schedule an inference of ``graph`` (compiling if needed)."""
        if self.config.mechanism == "gpu":
            g = self.prepare(graph).clone()
            for node in g.nodes:
                node.device = "gpu"
            return self.engine.run(g)
        if compiled is None:
            compiled = self.compile(graph)
        return self.engine.run(compiled.graph)


def run_mechanism(graph: Graph, mechanism: str,
                  config: Optional[PimFlowConfig] = None) -> RunResult:
    """Convenience one-shot: compile and run ``graph`` under a mechanism."""
    base = config or PimFlowConfig()
    flow = PimFlow(replace(base, mechanism=mechanism))
    return flow.run(graph)
