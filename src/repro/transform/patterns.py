"""Pipelining candidate subgraph detection (paper Sections 4.2.2, 5).

The paper identifies sequences of 1x1 and depthwise convolutions as the
frequent and promising subgraph patterns; the evaluated patterns are
``1x1-DW`` (Type 1), ``DW-1x1`` (Type 2) and ``1x1-DW-1x1`` (Type 3),
with DW layers on GPU and 1x1 layers on DRAM-PIM.  In real model
graphs the convolutions are separated by lightweight row-local ops
(batchnorm, activations), which are absorbed into the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_depthwise
from repro.transform.pipeline import ROW_LOCAL_OPS


@dataclass(frozen=True)
class PipelinePattern:
    """One pipelining candidate: a chain of node names and its type."""

    kind: str                  # "1x1-dw" | "dw-1x1" | "1x1-dw-1x1"
    chain: Tuple[str, ...]     # full node chain including row-local ops
    convs: Tuple[str, ...]     # just the convolution anchors


def _conv_kind(node: Node, graph: Graph) -> Optional[str]:
    """"pw" for pointwise, "dw" for depthwise, None otherwise."""
    if node.op_type != "Conv":
        return None
    in_shape = graph.tensors[node.inputs[0]].shape
    if is_depthwise(node, [in_shape]):
        return "dw"
    kh, kw = node.attr("kernel_shape")
    if kh == 1 and kw == 1 and int(node.attr("group", 1)) == 1:
        return "pw"
    return None


def _walk_to_next_conv(graph: Graph, node: Node) -> Optional[List[Node]]:
    """Follow single-consumer row-local ops to the next Conv.

    Returns the intermediate nodes plus the terminating Conv, or None
    if the chain branches, ends, or hits a non-pipelinable op first.
    """
    path: List[Node] = []
    current = node
    while True:
        out = current.outputs[0]
        if out in graph.outputs:
            return None
        consumers = graph.consumers(out)
        if len(consumers) != 1:
            return None
        nxt = consumers[0]
        if nxt.op_type == "Conv":
            path.append(nxt)
            return path
        if nxt.op_type in ROW_LOCAL_OPS and len(graph.tensors[nxt.outputs[0]].shape) == 4:
            path.append(nxt)
            current = nxt
            continue
        return None


def find_pipeline_candidates(graph: Graph) -> List[PipelinePattern]:
    """All pattern matches in the graph, longest (Type 3) included.

    Matches may share nodes; the execution-mode search measures each
    and the DP solver picks a non-overlapping assignment.
    """
    patterns: List[PipelinePattern] = []
    for node in graph.toposort():
        first = _conv_kind(node, graph)
        if first is None:
            continue
        hop1 = _walk_to_next_conv(graph, node)
        if hop1 is None:
            continue
        second_conv = hop1[-1]
        second = _conv_kind(second_conv, graph)
        chain12 = (node.name,) + tuple(n.name for n in hop1)

        if first == "pw" and second == "dw":
            patterns.append(PipelinePattern(
                kind="1x1-dw", chain=chain12,
                convs=(node.name, second_conv.name)))
            hop2 = _walk_to_next_conv(graph, second_conv)
            if hop2 is not None and _conv_kind(hop2[-1], graph) == "pw":
                chain123 = chain12 + tuple(n.name for n in hop2)
                patterns.append(PipelinePattern(
                    kind="1x1-dw-1x1", chain=chain123,
                    convs=(node.name, second_conv.name, hop2[-1].name)))
        elif first == "dw" and second == "pw":
            patterns.append(PipelinePattern(
                kind="dw-1x1", chain=chain12,
                convs=(node.name, second_conv.name)))
    return patterns
