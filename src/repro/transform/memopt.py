"""Memory-layout optimization pass (paper Section 4.3.2, Fig. 7).

With single-batch NHWC tensors laid out contiguously, slicing or
concatenating along the height dimension addresses one contiguous byte
range; if split producers/consumers are co-allocated, the Slice and
Concat operators become no-ops.  Pre-allocating the padded input extent
likewise eliminates Pad operators.  This pass marks such nodes with the
``elided`` attribute, which both the GPU cost model and the execution
engine honour as zero cost.

Without this pass, the data-copy cost of Slice/Pad/Concat makes "most
splitting attempts futile" (paper) — the ablation benchmark
reproduces exactly that.

The implementation is registered with the pass manager
(:mod:`repro.transform.passes`) as ``optimize_memory``; the public
function here is a thin wrapper routing through it.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.lowering.layout import concat_is_contiguous, slice_is_contiguous


def _pad_is_elidable(shape, pads) -> bool:
    """Spatial-only zero padding of a rank-4 NHWC tensor.

    The pre-padded-allocation argument (Fig. 7) is specific to NHWC:
    axes 1 and 2 are spatial only when the tensor is rank 4 with one
    ``(before, after)`` pair per axis.  Other ranks must keep their Pad
    nodes — the old ``i not in (1, 2)`` check silently treated e.g. the
    last axis of a rank-2 tensor as "spatial" and elided a pad the
    buffer planner cannot absorb.
    """
    if len(shape) != 4 or len(pads) != 4:
        return False
    return all((before, after) == (0, 0)
               for i, (before, after) in enumerate(pads) if i not in (1, 2))


def _optimize_memory(graph: Graph) -> Graph:
    """Return a clone with elidable Slice/Concat/Pad nodes marked."""
    g = graph.clone()
    for node in g.nodes:
        if node.op_type == "Slice":
            shape = g.tensors[node.inputs[0]].shape
            if slice_is_contiguous(shape, int(node.attr("axis"))):
                node.attrs["elided"] = True
        elif node.op_type == "Concat":
            shapes = [g.tensors[t].shape for t in node.inputs]
            if concat_is_contiguous(shapes, int(node.attr("axis"))):
                node.attrs["elided"] = True
        elif node.op_type == "Pad":
            shape = g.tensors[node.inputs[0]].shape
            if _pad_is_elidable(shape, node.attr("pads", ())):
                node.attrs["elided"] = True
    return g


def optimize_memory(graph: Graph) -> Graph:
    """Memory-layout optimization via the registered ``optimize_memory``
    pass."""
    from repro.transform.passes import run_pass
    return run_pass("optimize_memory", graph)
