"""Memory-layout optimization pass (paper Section 4.3.2, Fig. 7).

With single-batch NHWC tensors laid out contiguously, slicing or
concatenating along the height dimension addresses one contiguous byte
range; if split producers/consumers are co-allocated, the Slice and
Concat operators become no-ops.  Pre-allocating the padded input extent
likewise eliminates Pad operators.  This pass marks such nodes with the
``elided`` attribute, which both the GPU cost model and the execution
engine honour as zero cost.

Without this pass, the data-copy cost of Slice/Pad/Concat makes "most
splitting attempts futile" (paper) — the ablation benchmark
reproduces exactly that.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.lowering.layout import concat_is_contiguous, slice_is_contiguous


def optimize_memory(graph: Graph) -> Graph:
    """Return a clone with elidable Slice/Concat/Pad nodes marked."""
    g = graph.clone()
    for node in g.nodes:
        if node.op_type == "Slice":
            shape = g.tensors[node.inputs[0]].shape
            if slice_is_contiguous(shape, int(node.attr("axis"))):
                node.attrs["elided"] = True
        elif node.op_type == "Concat":
            shapes = [g.tensors[t].shape for t in node.inputs]
            if concat_is_contiguous(shapes, int(node.attr("axis"))):
                node.attrs["elided"] = True
        elif node.op_type == "Pad":
            pads = node.attr("pads")
            # Spatial-only zero padding of NHWC tensors is absorbed by
            # pre-padded allocation.
            spatial_only = all(
                (before, after) == (0, 0)
                for i, (before, after) in enumerate(pads) if i not in (1, 2)
            )
            if spatial_only:
                node.attrs["elided"] = True
    return g
