"""Generic cleanup passes: dead-code elimination and constant folding.

Standard compiler hygiene the TVM front end performs before the
PIM-specific passes.  Both passes are pure (clone + rewrite) and
semantics-preserving.

The implementations are registered with the pass manager
(:mod:`repro.transform.passes`) as ``fold_constants`` and
``eliminate_dead_nodes``; the public functions here are thin wrappers
routing through it, so every invocation is instrumented and can be
verified (``--verify-passes``) or snapshotted (``--dump-ir``).
"""

from __future__ import annotations

from repro.graph.graph import Graph


def _eliminate_dead_nodes(graph: Graph) -> Graph:
    """Remove nodes whose outputs are never consumed.

    Iterates to a fixpoint so whole dead chains disappear.  Graph
    outputs are always live.
    """
    g = graph.clone()
    changed = True
    while changed:
        changed = False
        live = set(g.outputs)
        for node in g.nodes:
            live.update(node.inputs)
        for node in list(g.nodes):
            if not any(t in live for t in node.outputs):
                g.remove_node(node.name)
                changed = True
    return g


def _fold_constants(graph: Graph) -> Graph:
    """Evaluate nodes whose inputs are all initializers.

    The node is removed and its output registered as a new initializer,
    so downstream passes (e.g. the FC weight pre-splitting of MD-DP)
    see a constant operand.
    """
    from repro.runtime.numerical import execute_node

    g = graph.clone()
    changed = True
    while changed:
        changed = False
        for node in list(g.nodes):
            if node.outputs[0] in g.outputs:
                continue
            if not node.inputs:
                continue
            if not all(t in g.initializers for t in node.inputs):
                continue
            value = execute_node(node, [g.initializers[t] for t in node.inputs])
            out = node.outputs[0]
            g.remove_node(node.name)
            dtype = g.tensors[out].dtype
            del g.tensors[out]
            g.add_initializer(out, value, dtype)
            changed = True
    return g


def eliminate_dead_nodes(graph: Graph) -> Graph:
    """Dead-code elimination via the registered ``eliminate_dead_nodes`` pass."""
    from repro.transform.passes import run_pass
    return run_pass("eliminate_dead_nodes", graph)


def fold_constants(graph: Graph) -> Graph:
    """Constant folding via the registered ``fold_constants`` pass."""
    from repro.transform.passes import run_pass
    return run_pass("fold_constants", graph)


def cleanup(graph: Graph) -> Graph:
    """Constant folding followed by dead-code elimination."""
    from repro.transform.passes import CLEANUP, run_pipeline
    return run_pipeline(CLEANUP, graph)
