"""Multi-device parallelization pass (MD-DP, paper Section 4.2.1).

Splits one PIM-candidate node into a GPU part and a PIM part so the two
execute in parallel on disjoint data:

* **Conv** nodes split along the output *height* — the dimension in
  which NHWC slices and concats are contiguous, letting the memory
  optimizer elide the data movement.  Interior split boundaries use
  overlapping (halo) input rows instead of padding.
* **Gemm/MatMul** nodes split along the output columns; the constant
  weight matrix is pre-split, so no runtime slice is needed at all.

The resulting subgraph is ``Slice -> Conv_gpu / Slice -> Conv_pim ->
Concat`` producing a tensor identical to the original node's output.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_pim_candidate
from repro.graph.tensor import TensorInfo
from repro.transform.base import TransformError, conv_h_window


def split_rows(total: int, ratio_gpu: float) -> int:
    """Rows (or columns) assigned to the GPU for a given split ratio."""
    if not 0.0 <= ratio_gpu <= 1.0:
        raise ValueError(f"ratio_gpu must be in [0, 1], got {ratio_gpu}")
    return int(round(ratio_gpu * total))


def apply_mddp(graph: Graph, node_name: str, ratio_gpu: float,
               axis: str = "auto") -> Graph:
    """Return a clone of ``graph`` with ``node_name`` split at ``ratio_gpu``.

    ``ratio_gpu = 0`` fully offloads the node to PIM; ``ratio_gpu = 1``
    keeps it on the GPU (both without structural changes — only the
    device placement is set, matching the search's use of the original
    graph for the 0/100 and 100/0 samples).

    ``axis`` selects the split dimension for convolutions: ``"h"`` (the
    paper's contiguity-friendly default), ``"batch"`` (exact, no halo;
    only meaningful for batch > 1), or ``"auto"`` (``"h"``).
    """
    if axis not in ("auto", "h", "batch"):
        raise ValueError(f"unknown split axis {axis!r}")
    g = graph.clone()
    node = g.node(node_name)
    input_shapes = [g.tensors[t].shape for t in node.inputs]
    if not is_pim_candidate(node, input_shapes):
        raise TransformError(f"node {node_name!r} is not a PIM candidate")

    if node.op_type == "Conv":
        out_shape = g.tensors[node.outputs[0]].shape
        if axis == "batch":
            if out_shape[0] < 2:
                raise TransformError(
                    f"batch-axis split of {node_name!r} needs batch >= 2")
            total = out_shape[0]
        else:
            total = out_shape[1]
    else:
        total = g.tensors[node.outputs[0]].shape[-1]

    gpu_rows = split_rows(total, ratio_gpu)
    if gpu_rows <= 0:
        node.device = "pim"
        return g
    if gpu_rows >= total:
        node.device = "gpu"
        return g

    if node.op_type == "Conv":
        if axis == "batch":
            _split_conv_batch(g, node, gpu_rows)
        else:
            _split_conv(g, node, gpu_rows)
    else:
        _split_gemm(g, node, gpu_rows)
    return g


def _split_conv_batch(g: Graph, node: Node, batch_gpu: int) -> None:
    """Replace ``node`` with a batch-split GPU/PIM pair (no halo)."""
    data_name = node.inputs[0]
    n, h, w, cin = g.tensors[data_name].shape
    _, oh, ow, cout = g.tensors[node.outputs[0]].shape
    dtype = g.tensors[data_name].dtype

    part_outputs = []
    for tag, b0, b1 in (("gpu", 0, batch_gpu), ("pim", batch_gpu, n)):
        slice_out = f"{node.name}__in_{tag}"
        g.add_tensor(TensorInfo(slice_out, (b1 - b0, h, w, cin), dtype))
        g.add_node(Node(
            name=f"{node.name}__slice_{tag}",
            op_type="Slice",
            inputs=[data_name],
            outputs=[slice_out],
            attrs={"axis": 0, "start": b0, "end": b1},
        ))
        conv_out = f"{node.name}__out_{tag}"
        g.add_tensor(TensorInfo(conv_out, (b1 - b0, oh, ow, cout), dtype))
        attrs = dict(node.attrs)
        attrs["mddp_part"] = tag
        g.add_node(Node(
            name=f"{node.name}__{tag}",
            op_type="Conv",
            inputs=[slice_out] + list(node.inputs[1:]),
            outputs=[conv_out],
            attrs=attrs,
            device=tag,
        ))
        part_outputs.append(conv_out)

    out_name = node.outputs[0]
    g.remove_node(node.name)
    g.add_node(Node(
        name=f"{node.name}__concat",
        op_type="Concat",
        inputs=part_outputs,
        outputs=[out_name],
        attrs={"axis": 0, "mddp_join": True},
    ))


def _split_conv(g: Graph, node: Node, oh_gpu: int) -> None:
    """Replace ``node`` with an H-split GPU/PIM pair."""
    data_name = node.inputs[0]
    n, h, w, cin = g.tensors[data_name].shape
    _, oh, ow, cout = g.tensors[node.outputs[0]].shape
    kh, kw = node.attr("kernel_shape")
    sh, sw = node.attr("strides", (1, 1))
    pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
    dtype = g.tensors[data_name].dtype

    ranges = [("gpu", 0, oh_gpu), ("pim", oh_gpu, oh)]
    part_outputs = []
    for tag, o0, o1 in ranges:
        in_start, in_end, npt, npb = conv_h_window(o0, o1, kh, sh, pt, h)

        slice_out = f"{node.name}__in_{tag}"
        g.add_tensor(TensorInfo(slice_out, (n, in_end - in_start, w, cin), dtype))
        g.add_node(Node(
            name=f"{node.name}__slice_{tag}",
            op_type="Slice",
            inputs=[data_name],
            outputs=[slice_out],
            attrs={"axis": 1, "start": in_start, "end": in_end},
        ))

        conv_out = f"{node.name}__out_{tag}"
        g.add_tensor(TensorInfo(conv_out, (n, o1 - o0, ow, cout), dtype))
        attrs = dict(node.attrs)
        attrs["pads"] = (npt, pl, npb, pr)
        attrs["mddp_part"] = tag
        g.add_node(Node(
            name=f"{node.name}__{tag}",
            op_type="Conv",
            inputs=[slice_out] + list(node.inputs[1:]),
            outputs=[conv_out],
            attrs=attrs,
            device=tag,
        ))
        part_outputs.append(conv_out)

    out_name = node.outputs[0]
    g.remove_node(node.name)
    g.add_node(Node(
        name=f"{node.name}__concat",
        op_type="Concat",
        inputs=part_outputs,
        outputs=[out_name],
        attrs={"axis": 1, "mddp_join": True},
    ))


def _split_gemm(g: Graph, node: Node, n_gpu: int) -> None:
    """Replace a Gemm/MatMul with an output-column-split GPU/PIM pair."""
    w_name = node.inputs[1]
    if w_name not in g.initializers:
        raise TransformError(
            f"cannot split {node.name!r}: weight {w_name!r} is not a constant")
    a_shape = g.tensors[node.inputs[0]].shape
    if len(a_shape) != 2:
        raise TransformError(
            f"cannot split {node.name!r}: only rank-2 activations supported")
    weight = g.initializers[w_name]
    bias = g.initializers[node.inputs[2]] if len(node.inputs) > 2 else None
    m, n_total = g.tensors[node.outputs[0]].shape
    dtype = g.tensors[node.outputs[0]].dtype

    part_outputs = []
    splits = [("gpu", 0, n_gpu), ("pim", n_gpu, n_total)]
    for tag, c0, c1 in splits:
        w_part_name = f"{w_name}__{node.name}_{tag}"
        g.add_initializer(w_part_name, np.ascontiguousarray(weight[:, c0:c1]), dtype)
        inputs = [node.inputs[0], w_part_name]
        if bias is not None:
            b_part_name = f"{node.inputs[2]}__{node.name}_{tag}"
            g.add_initializer(b_part_name, np.ascontiguousarray(bias[c0:c1]), dtype)
            inputs.append(b_part_name)
        out = f"{node.name}__out_{tag}"
        g.add_tensor(TensorInfo(out, (m, c1 - c0), dtype))
        attrs = dict(node.attrs)
        attrs["mddp_part"] = tag
        g.add_node(Node(
            name=f"{node.name}__{tag}",
            op_type=node.op_type,
            inputs=inputs,
            outputs=[out],
            attrs=attrs,
            device=tag,
        ))
        part_outputs.append(out)

    out_name = node.outputs[0]
    g.remove_node(node.name)
    g.add_node(Node(
        name=f"{node.name}__concat",
        op_type="Concat",
        inputs=part_outputs,
        outputs=[out_name],
        attrs={"axis": 1, "mddp_join": True},
    ))
