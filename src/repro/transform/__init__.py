"""PIM-aware graph transformations (the paper's core compiler passes).

* :mod:`repro.transform.passes` — the pass-manager core: the
  :class:`~repro.transform.passes.Pass` protocol, the pass registry,
  and the instrumenting/verifying
  :class:`~repro.transform.passes.PassManager` every transform entry
  point routes through.
* :mod:`repro.transform.split` — the multi-device parallelization pass:
  splits one PIM-candidate node into a GPU part and a PIM part (MD-DP).
* :mod:`repro.transform.pipeline` — the pipelining pass: splits a chain
  of nodes into pipeline-stage pieces whose execution overlaps across
  GPU and PIM.
* :mod:`repro.transform.patterns` — finds the pipelining candidate
  subgraphs (1x1-DW, DW-1x1, 1x1-DW-1x1 with interleaved elementwise
  ops).
* :mod:`repro.transform.memopt` — the memory-layout optimization:
  marks H-axis Slice/Concat (and Pad) nodes as zero-cost no-ops under
  the co-allocated NHWC layout.
* :mod:`repro.transform.elemfuse` — elementwise-group fusion: contracts
  maximal chains/DAGs of pure elementwise ops into ``FusedElementwise``
  super-nodes the compiled executor evaluates in one tiled sweep.

All passes are pure: they return a transformed clone and never mutate
their input graph (the :class:`~repro.transform.passes.PassManager`
enforces this clone discipline under ``--verify-passes``, and the test
suite asserts it for every registered pass).  Every pass is
semantics-preserving, which the test suite checks by executing original
and transformed graphs on the numpy reference and comparing outputs.
"""

from repro.transform.base import TransformError, UnsplittableError, conv_h_window
from repro.transform.split import apply_mddp, split_rows
from repro.transform.pipeline import pipeline_chain
from repro.transform.patterns import find_pipeline_candidates, PipelinePattern
from repro.transform.memopt import optimize_memory
from repro.transform.elemfuse import fuse_elementwise
from repro.transform.fusion import fuse, fold_batchnorm, fuse_activations
from repro.transform.cleanup import cleanup, eliminate_dead_nodes, fold_constants
from repro.transform.passes import (
    APPLY,
    CLEANUP,
    FUSE,
    PREPARE,
    PREPARE_PASSES,
    FunctionPass,
    Pass,
    PassContext,
    PassError,
    PassInfo,
    PassManager,
    PassPipeline,
    PassRecord,
    PassVerificationError,
    create_pass,
    pass_info,
    register_pass,
    registered_passes,
    run_pass,
    run_pipeline,
)

__all__ = [
    "TransformError",
    "UnsplittableError",
    "conv_h_window",
    "apply_mddp",
    "split_rows",
    "pipeline_chain",
    "find_pipeline_candidates",
    "PipelinePattern",
    "optimize_memory",
    "fuse",
    "fold_batchnorm",
    "fuse_activations",
    "fuse_elementwise",
    "cleanup",
    "eliminate_dead_nodes",
    "fold_constants",
    # Pass-manager core
    "Pass",
    "FunctionPass",
    "PassInfo",
    "PassContext",
    "PassRecord",
    "PassManager",
    "PassPipeline",
    "PassError",
    "PassVerificationError",
    "register_pass",
    "registered_passes",
    "pass_info",
    "create_pass",
    "run_pass",
    "run_pipeline",
    "CLEANUP",
    "FUSE",
    "PREPARE",
    "PREPARE_PASSES",
    "APPLY",
]
