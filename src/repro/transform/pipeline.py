"""Pipelining pass (paper Section 4.2.1, Fig. 5).

Takes a straight-line chain of H-local nodes (convolutions and
row-local elementwise ops) and splits every node into ``num_stages``
pipeline-stage pieces along the output height.  Stage ``s`` of node
``j`` depends only on stages ``0..s`` of node ``j-1``, so the engine's
list scheduler overlaps stage ``s`` of a GPU node with stage ``s+1`` of
its PIM producer (and vice versa) — inter-node parallelism created from
a purely sequential subgraph.

The "concat" nodes the paper inserts before epilogue pieces appear here
as *progressive concats*: after node ``j-1`` finishes stage ``s``, its
cumulative output rows ``[0, bounds[j-1][s])`` are materialized (a
zero-cost H-concat under the co-allocated layout) and sliced by node
``j``'s stage ``s`` with the correct halo.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_depthwise
from repro.graph.tensor import TensorInfo
from repro.transform.base import (
    TransformError,
    UnsplittableError,
    conv_h_window,
    input_rows_needed,
    single_consumer_chain,
)

#: Ops that act row-locally on 4-D NHWC tensors and can be pipelined.
ROW_LOCAL_OPS = ("Relu", "Clip", "Sigmoid", "Silu", "Gelu", "Identity", "BatchNormalization")


def _default_device(node: Node, graph: Graph) -> str:
    """Paper placement rule: non-DW convs to PIM, everything else GPU."""
    if node.op_type == "Conv":
        in_shape = graph.tensors[node.inputs[0]].shape
        return "gpu" if is_depthwise(node, [in_shape]) else "pim"
    return "gpu"


def _geometry(node: Node, graph: Graph):
    """(kernel_h, stride_h, pad_top, pad_left, pad_bottom, pad_right, in_h, out_h)."""
    in_shape = graph.tensors[node.inputs[0]].shape
    out_shape = graph.tensors[node.outputs[0]].shape
    if len(in_shape) != 4:
        raise TransformError(
            f"pipelining requires 4-D NHWC tensors, {node.name!r} has {in_shape}")
    if node.op_type == "Conv":
        kh, _ = node.attr("kernel_shape")
        sh, _ = node.attr("strides", (1, 1))
        pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
        return kh, sh, pt, pl, pb, pr, in_shape[1], out_shape[1]
    if node.op_type in ROW_LOCAL_OPS:
        return 1, 1, 0, 0, 0, 0, in_shape[1], out_shape[1]
    raise TransformError(f"op {node.op_type!r} ({node.name!r}) is not pipelinable")


def _stage_bounds(nodes: List[Node], graph: Graph, num_stages: int) -> List[List[int]]:
    """Cumulative output-row boundaries per node per stage.

    ``bounds[j][s]`` is the number of output rows node ``j`` has
    produced once its stage ``s`` completes; derived backwards from an
    even split of the last node's output so every stage piece of the
    final node has near-equal size.
    """
    geos = [_geometry(n, graph) for n in nodes]
    last_out_h = geos[-1][7]
    if num_stages < 2:
        raise ValueError("num_stages must be >= 2")
    if last_out_h < num_stages:
        raise UnsplittableError(
            f"final output height {last_out_h} < {num_stages} stages")
    bounds = [[0] * num_stages for _ in nodes]
    bounds[-1] = [((s + 1) * last_out_h) // num_stages for s in range(num_stages)]
    for j in range(len(nodes) - 1, 0, -1):
        kh, sh, pt, _, _, _, in_h, _ = geos[j]
        prev_out_h = geos[j - 1][7]
        if in_h != prev_out_h:
            raise TransformError(
                f"chain mismatch: {nodes[j].name!r} input height {in_h} != "
                f"{nodes[j - 1].name!r} output height {prev_out_h}")
        prev = []
        for s in range(num_stages - 1):
            prev.append(input_rows_needed(bounds[j][s], kh, sh, pt, in_h))
        prev.append(prev_out_h)
        for s in range(1, num_stages):
            if prev[s] <= prev[s - 1]:
                raise UnsplittableError(
                    f"stage {s} of {nodes[j - 1].name!r} would be empty "
                    f"(bounds {prev}); halo consumes the whole stage")
        if prev[0] <= 0:
            raise UnsplittableError(f"stage 0 of {nodes[j - 1].name!r} is empty")
        bounds[j - 1] = prev
    return bounds


def pipeline_chain(graph: Graph, chain: Sequence[str], num_stages: int = 2,
                   devices: Optional[Dict[str, str]] = None,
                   group_id: Optional[str] = None) -> Graph:
    """Return a clone of ``graph`` with ``chain`` pipelined.

    ``chain`` must be a straight-line single-consumer sequence of
    pipelinable nodes.  ``devices`` overrides the default placement
    (non-DW convs on PIM, everything else on GPU).  Raises
    :class:`UnsplittableError` when halos would make a stage empty.
    """
    g = graph.clone()
    single_consumer_chain(g, chain)
    nodes = [g.node(name) for name in chain]
    bounds = _stage_bounds(nodes, g, num_stages)
    group = group_id or f"pl_{nodes[0].name}"
    placement = {
        n.name: (devices or {}).get(n.name, _default_device(n, g)) for n in nodes
    }

    pieces: List[List[str]] = []       # output tensor names per node per stage
    cumulative: List[List[str]] = []   # progressive concat names per node per stage
    last = len(nodes) - 1

    for j, node in enumerate(nodes):
        kh, sh, pt, pl, pb, pr, in_h, out_h = _geometry(node, g)
        dtype = g.tensors[node.outputs[0]].dtype
        out_shape = g.tensors[node.outputs[0]].shape
        node_pieces: List[str] = []

        for s in range(num_stages):
            a = bounds[j][s - 1] if s > 0 else 0
            b = bounds[j][s]
            if node.op_type == "Conv":
                in_start, in_end, npt, npb = conv_h_window(a, b, kh, sh, pt, in_h)
            else:
                in_start, in_end, npt, npb = a, b, 0, 0

            if j == 0:
                source = node.inputs[0]
                source_rows = in_h
            else:
                source = cumulative[j - 1][s]
                source_rows = bounds[j - 1][s]
            if in_end > source_rows:
                raise TransformError(
                    f"internal error: stage {s} of {node.name!r} needs rows up "
                    f"to {in_end} but only {source_rows} are available")

            if in_start == 0 and in_end == source_rows:
                piece_input = source
            else:
                piece_input = f"{node.name}__pl_in_{s}"
                src_shape = g.tensors[source].shape
                sliced = (src_shape[0], in_end - in_start) + src_shape[2:]
                g.add_tensor(TensorInfo(piece_input, sliced, dtype))
                g.add_node(Node(
                    name=f"{node.name}__pl_slice_{s}",
                    op_type="Slice",
                    inputs=[source],
                    outputs=[piece_input],
                    attrs={"axis": 1, "start": in_start, "end": in_end,
                           "pipeline_group": group, "pipeline_stage": s},
                ))

            piece_out = f"{node.name}__pl_out_{s}"
            piece_shape = (out_shape[0], b - a) + out_shape[2:]
            g.add_tensor(TensorInfo(piece_out, piece_shape, dtype))
            attrs = dict(node.attrs)
            attrs["pipeline_group"] = group
            attrs["pipeline_stage"] = s
            if node.op_type == "Conv":
                attrs["pads"] = (npt, pl, npb, pr)
            g.add_node(Node(
                name=f"{node.name}__pl_{s}",
                op_type=node.op_type,
                inputs=[piece_input] + list(node.inputs[1:]),
                outputs=[piece_out],
                attrs=attrs,
                device=placement[node.name],
            ))
            node_pieces.append(piece_out)

        pieces.append(node_pieces)

        # Progressive concats feed the next node's stage slices.
        node_cumulative = [node_pieces[0]]
        if j < last:
            for s in range(1, num_stages):
                cum_name = f"{node.name}__pl_cum_{s}"
                cum_shape = (out_shape[0], bounds[j][s]) + out_shape[2:]
                g.add_tensor(TensorInfo(cum_name, cum_shape, dtype))
                g.add_node(Node(
                    name=f"{node.name}__pl_concat_{s}",
                    op_type="Concat",
                    inputs=[node_cumulative[s - 1], node_pieces[s]],
                    outputs=[cum_name],
                    attrs={"axis": 1, "pipeline_group": group,
                           "pipeline_stage": s},
                ))
                node_cumulative.append(cum_name)
        cumulative.append(node_cumulative)

    final_out = nodes[last].outputs[0]
    for node in nodes:
        g.remove_node(node.name)
    g.add_node(Node(
        name=f"{nodes[last].name}__pl_join",
        op_type="Concat",
        inputs=pieces[last],
        outputs=[final_out],
        attrs={"axis": 1, "pipeline_group": group},
    ))
    return g
