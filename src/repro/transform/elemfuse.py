"""Elementwise-group fusion: ``FusedElementwise`` super-nodes.

The buffer planner already eliminates *allocation* for in-place
elementwise chains, but every op in a BN/Add/Clip/Sigmoid chain still
round-trips a full activation tensor through the arena: each kernel
reads its input from memory and writes its output back, so a chain of
``k`` elementwise ops moves ``2k`` activation-sized tensors even when
they all share one buffer.  This pass collapses maximal groups of pure
elementwise ops into a single ``FusedElementwise`` node carrying the
original sub-expression, so the compiled executor can evaluate the
whole group in one blocked sweep over the output with intermediates
living in a cache-sized scratch tile (see
:meth:`repro.runtime.compiled.ExecutionState._bind_fused`).  Interior
tensors disappear from the graph entirely — the buffer planner
allocates nothing for them.

Groups may be arbitrary DAGs, not just chains (a diamond like
``Relu -> {Sigmoid, Tanh} -> Add`` fuses into one node).  The merge
loop keeps the contracted graph acyclic with per-node reachability
bitmasks: a producer may join its consumer's group only if no path
escapes the group and re-enters it through an external node.

Node encoding (all attrs JSON-serializable, so fused graphs survive
``graph.serialize`` round trips):

* ``expr`` — list of ``{"op", "inputs", "attrs"}`` entries in
  topological order; each input ref is ``["in", i]`` (the fused node's
  ``inputs[i]``) or ``["t", j]`` (entry ``j``'s result).
* ``out_ids`` — entry indices aligned 1:1 with ``node.outputs``
  (member results consumed outside the group, or graph outputs).

Every member's *output* shape must equal the group's common shape, so
the executor can tile all entries uniformly; member *inputs* may be
initializers or any broadcast-compatible shape (per-channel BN params,
bias vectors).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.graph import Graph
from repro.graph.node import Node

#: Ops a ``FusedElementwise`` group may contain: pure per-element maps
#: with a single data-shaped output.  BatchNormalization qualifies
#: because its params broadcast per-channel; Softmax does not (it
#: reduces over an axis, so it cannot be tiled along arbitrary axes).
FUSABLE_ELEMENTWISE = frozenset({
    "Add", "Mul", "Sub", "Div",
    "Relu", "Clip", "Sigmoid", "Silu", "Tanh", "Gelu", "Erf",
    "BatchNormalization",
})


def _fusable(node: Node, shape_of: Dict[str, tuple]) -> bool:
    return (node.op_type in FUSABLE_ELEMENTWISE
            and len(node.outputs) == 1
            and node.device != "pim"
            and not node.attr("elided", False)
            and shape_of.get(node.outputs[0]) is not None)


def _find_groups(graph: Graph) -> List[List[Node]]:
    """Maximal fusable groups (>= 2 members), each in topological order."""
    order = graph.toposort()
    shape_of = {name: tuple(info.shape)
                for name, info in graph.tensors.items()}
    producer_of: Dict[str, int] = {}
    consumers_of: Dict[str, List[int]] = {}
    for i, n in enumerate(order):
        for t in n.outputs:
            producer_of[t] = i
        for t in n.inputs:
            consumers_of.setdefault(t, []).append(i)

    # reach[i]: bitmask of nodes reachable from node i (including i).
    # Python ints give O(N/64)-word set union, cheap even for the
    # multi-hundred-node registry models.
    reach = [0] * len(order)
    for i in range(len(order) - 1, -1, -1):
        r = 1 << i
        for t in order[i].outputs:
            for j in consumers_of.get(t, ()):
                r |= reach[j]
        reach[i] = r

    def merge_safe(members: Sequence[int], mask: int) -> bool:
        # Contracting `members` into one node is acyclic iff no external
        # direct consumer of a member output can reach back into the
        # group (group -> external -> group would become a self-loop).
        for m in members:
            for t in order[m].outputs:
                for c in consumers_of.get(t, ()):
                    if not (mask >> c) & 1 and reach[c] & mask:
                        return False
        return True

    group_of: Dict[int, int] = {}
    members_of: Dict[int, List[int]] = {}
    mask_of: Dict[int, int] = {}
    for i, n in enumerate(order):
        if not _fusable(n, shape_of):
            continue
        gid = i
        group_of[i] = gid
        members_of[gid] = [i]
        mask_of[gid] = 1 << i
        out_shape = shape_of[n.outputs[0]]
        for t in n.inputs:
            p = producer_of.get(t)
            if p is None:
                continue
            pg = group_of.get(p)
            if pg is None or pg == gid:
                continue
            if shape_of[order[p].outputs[0]] != out_shape:
                continue
            if order[p].device != n.device:
                continue
            merged = members_of[pg] + members_of[gid]
            merged_mask = mask_of[pg] | mask_of[gid]
            if not merge_safe(merged, merged_mask):
                continue
            for m in members_of[pg]:
                group_of[m] = gid
            members_of[gid] = merged
            mask_of[gid] = merged_mask
            del members_of[pg], mask_of[pg]
    return [[order[m] for m in sorted(ms)]
            for gid, ms in sorted(members_of.items()) if len(ms) > 1]


def _contract(graph: Graph, members: List[Node]) -> None:
    """Replace `members` (topo-ordered) with one FusedElementwise node."""
    member_names = {n.name for n in members}
    produced: Dict[str, int] = {}
    ext_inputs: List[str] = []
    ext_index: Dict[str, int] = {}
    expr: List[dict] = []
    for n in members:
        refs: List[list] = []
        for t in n.inputs:
            if t in produced:
                refs.append(["t", produced[t]])
            else:
                j = ext_index.get(t)
                if j is None:
                    j = ext_index[t] = len(ext_inputs)
                    ext_inputs.append(t)
                refs.append(["in", j])
        expr.append({"op": n.op_type, "inputs": refs,
                     "attrs": dict(n.attrs)})
        produced[n.outputs[0]] = len(expr) - 1

    consumed_outside = set(graph.outputs)
    consumed_inside: Dict[str, int] = {}
    for node in graph.nodes:
        if node.name in member_names:
            for t in node.inputs:
                consumed_inside[t] = consumed_inside.get(t, 0) + 1
        else:
            consumed_outside.update(node.inputs)
    out_names: List[str] = []
    out_ids: List[int] = []
    for n in members:
        t = n.outputs[0]
        # Keep dead member results as fused outputs too: a Node needs
        # at least one output, and dead-node elimination is cleanup's
        # job, not this pass's.
        if t in consumed_outside or t not in consumed_inside:
            out_names.append(t)
            out_ids.append(produced[t])

    device = members[0].device
    for n in members:
        graph.remove_node(n.name)
    for t, j in produced.items():
        if t not in out_names:
            graph.tensors.pop(t, None)
    graph.add_node(Node(
        name=graph.unique_name("fused_elem"),
        op_type="FusedElementwise",
        inputs=ext_inputs,
        outputs=out_names,
        attrs={"expr": expr, "out_ids": out_ids},
        device=device,
    ))


def _shallow_clone(graph: Graph) -> Graph:
    """Structural copy sharing the input graph's Node objects.

    ``_contract`` only edits the copy's *containers* — the node list
    and the tensor dict — and reads member nodes (``dict(n.attrs)``
    copies); no Node is ever mutated.  Sharing them instead of deep-
    cloning keeps the fused graph the compiled executor retains per
    executable down to the containers themselves.
    """
    out = Graph(graph.name)
    out.tensors = dict(graph.tensors)
    out.initializers = dict(graph.initializers)
    out.inputs = list(graph.inputs)
    out.outputs = list(graph.outputs)
    out.nodes = list(graph.nodes)
    out._name_counter = graph._name_counter
    return out


def _fuse_elementwise(graph: Graph) -> Graph:
    """Pass body: returns a clone with elementwise groups contracted."""
    out = _shallow_clone(graph)
    for members in _find_groups(out):
        _contract(out, members)
    return out


def fuse_elementwise(graph: Graph) -> Graph:
    """Group maximal elementwise chains/DAGs into FusedElementwise nodes.

    Functional wrapper over the registered ``fuse_elementwise`` pass
    (instrumented, clone-disciplined).  The compiled executor applies
    the raw pass internally (``CompiledExecutable(fuse=True)``), so
    running this explicitly is only needed when inspecting or
    serializing the fused graph itself.
    """
    from repro.transform.passes import run_pass

    return run_pass("fuse_elementwise", graph)
