"""The pass-manager compiler core: registry, pipeline, instrumentation.

The paper's compiler is a sequence of graph passes (Fig. 5): the
cleanup/fusion front end, the MD-DP split and pipelining transforms
driven by the solver's decisions, and the memory-layout optimization.
This module makes that sequence a first-class subsystem instead of a
chain of ad-hoc function calls:

* :class:`Pass` — the protocol every pass implements: a ``name`` and a
  pure ``run(graph, ctx) -> Graph`` that returns a transformed *clone*
  and never mutates its input.
* :class:`PassContext` — per-pipeline state threaded through every
  pass: option payloads (e.g. the solver decisions), diagnostics, and
  free-form stats.
* :class:`PassManager` — resolves pass specs against the registry,
  instruments each pass (wall time, node/tensor/elided-count deltas,
  recorded as :class:`PassRecord` entries), optionally runs the
  inter-pass verifier (structure + shape inference via
  ``Graph.validate``, interface preservation, and a numeric
  equivalence spot check through :mod:`repro.runtime.verify`), and can
  snapshot the IR after every pass (``--dump-ir``).
* :class:`PassPipeline` — a named, reusable pass sequence; the
  front-end (:data:`PREPARE`), cleanup/fusion subsets, and the
  decision-application back end (:data:`APPLY`) ship as defaults.

Every existing transform is registered here — ``fold_constants``,
``eliminate_dead_nodes``, ``fold_batchnorm``, ``fuse_activations``,
``apply_decisions``, ``optimize_memory``, plus the parameterized
``mddp_split`` and ``pipeline_chain`` region transforms — and the
historical functional API (:func:`repro.transform.cleanup.cleanup`,
:func:`repro.transform.fusion.fuse`, ...) survives as thin wrappers
over :func:`run_pass` / :func:`run_pipeline`.  Adding a compiler pass
is now one :func:`register_pass` call; the manager gives it
diagnostics, verification, and CLI visibility (``pimflow -m=passes``)
for free.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.graph.graph import Graph, GraphError
from repro.transform.base import TransformError


class PassError(TransformError):
    """Raised when a pass misbehaves or a pipeline cannot be assembled."""


class PassVerificationError(PassError):
    """Raised when the inter-pass verifier rejects a pass's output."""


@runtime_checkable
class Pass(Protocol):
    """What the manager requires of a pass: a name and a pure ``run``."""

    name: str

    def run(self, graph: Graph, ctx: "PassContext") -> Graph:
        """Return a transformed clone of ``graph``; never mutate it."""
        ...  # pragma: no cover - protocol


class FunctionPass:
    """Adapter turning a plain function into a :class:`Pass`.

    Accepts both ``fn(graph)`` and ``fn(graph, ctx)`` signatures, so
    the pre-existing transform functions register unchanged.
    """

    def __init__(self, name: str, fn: Callable[..., Graph]) -> None:
        self.name = name
        self._fn = fn
        params = [
            p for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        self._takes_ctx = len(params) >= 2

    def run(self, graph: Graph, ctx: "PassContext") -> Graph:
        if self._takes_ctx:
            return self._fn(graph, ctx)
        return self._fn(graph)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionPass({self.name!r})"


@dataclass(frozen=True)
class PassInfo:
    """Registry metadata for one pass."""

    name: str
    description: str
    factory: Callable[[], Pass]
    #: Running the pass twice produces a structurally identical graph.
    idempotent: bool = False
    #: Transformed outputs numerically equal the original's (the numpy
    #: oracle); the verifier only runs the numeric spot check when set.
    preserves_semantics: bool = True
    #: The pass keeps the graph's input/output tensor names intact.
    preserves_interface: bool = True
    #: Context option keys the pass needs (empty = runs standalone).
    requires: Tuple[str, ...] = ()
    tags: Tuple[str, ...] = ()

    def instantiate(self) -> Pass:
        return self.factory()


#: The global pass registry, keyed by pass name.
_REGISTRY: Dict[str, PassInfo] = {}


def register_pass(name: str, *, description: str = "",
                  idempotent: bool = False,
                  preserves_semantics: bool = True,
                  preserves_interface: bool = True,
                  requires: Sequence[str] = (),
                  tags: Sequence[str] = ()) -> Callable:
    """Decorator registering a pass class or function under ``name``.

    A class must satisfy the :class:`Pass` protocol; a function is
    wrapped in :class:`FunctionPass`.  Names must be unique.
    """
    def decorate(obj):
        if name in _REGISTRY:
            raise PassError(f"duplicate pass name {name!r}")
        if isinstance(obj, type):
            factory: Callable[[], Pass] = obj
        else:
            def factory(o=obj):
                return FunctionPass(name, o)
        _REGISTRY[name] = PassInfo(
            name=name,
            description=description or inspect.getdoc(obj) or "",
            factory=factory,
            idempotent=idempotent,
            preserves_semantics=preserves_semantics,
            preserves_interface=preserves_interface,
            requires=tuple(requires),
            tags=tuple(tags),
        )
        return obj
    return decorate


def pass_info(name: str) -> PassInfo:
    """Registry metadata for ``name``; raises :class:`PassError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PassError(f"unknown pass {name!r}; registered: {known}") from None


def registered_passes() -> List[PassInfo]:
    """All registered passes, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def create_pass(name: str) -> Pass:
    """Instantiate a registered pass by name."""
    return pass_info(name).instantiate()


@dataclass
class PassContext:
    """State threaded through one pipeline run.

    ``options`` carries pass parameters (e.g. ``decisions`` for the
    ``apply_decisions`` pass); ``diagnostics`` collects human-readable
    notes from passes and the verifier; ``stats`` is a free-form
    scratchpad for cross-pass bookkeeping.
    """

    options: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    diagnostics: List[str] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    def option(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)

    def require_option(self, pass_name: str, key: str) -> Any:
        if key not in self.options:
            raise PassError(
                f"pass {pass_name!r} requires the {key!r} context option")
        return self.options[key]

    def log(self, message: str) -> None:
        self.diagnostics.append(str(message))

    def with_options(self, extra: Dict[str, Any]) -> "PassContext":
        """A view sharing diagnostics/stats but with options overridden."""
        merged = dict(self.options)
        merged.update(extra)
        return PassContext(options=merged, seed=self.seed,
                           diagnostics=self.diagnostics, stats=self.stats)


@dataclass
class PassRecord:
    """Instrumentation of one executed pass."""

    name: str
    wall_ms: float
    nodes_before: int
    nodes_after: int
    tensors_before: int
    tensors_after: int
    elided_before: int
    elided_after: int
    verified: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """Whether the instrumented counts moved (a cheap change proxy)."""
        return (self.nodes_before != self.nodes_after
                or self.tensors_before != self.tensors_after
                or self.elided_before != self.elided_after)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 3),
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "tensors_before": self.tensors_before,
            "tensors_after": self.tensors_after,
            "elided_before": self.elided_before,
            "elided_after": self.elided_after,
            "verified": self.verified,
            "notes": list(self.notes),
        }


def _elided_count(graph: Graph) -> int:
    return sum(1 for n in graph.nodes if n.attr("elided", False))


class _BoundPass:
    """A pass bound to extra per-invocation options."""

    def __init__(self, inner: Pass, options: Dict[str, Any]) -> None:
        self.name = inner.name
        self._inner = inner
        self._options = dict(options)

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        return self._inner.run(graph, ctx.with_options(self._options))


#: Things :meth:`PassManager.run` accepts as one pipeline element: a
#: registered pass name, a ``(name, options)`` binding, or an object
#: satisfying the :class:`Pass` protocol.
PassSpec = Union[str, Tuple[str, Dict[str, Any]], Pass]


class PassManager:
    """Runs pass pipelines with instrumentation and optional verification.

    ``verify`` enables the inter-pass verifier: after every pass the
    output graph is structurally validated (``Graph.validate`` re-runs
    full shape inference) and checked to preserve the graph interface;
    with ``verify_numeric`` (the default under ``verify``) a numeric
    equivalence spot check through the numpy oracle runs as well for
    passes that claim to preserve semantics.  ``check_purity`` (on by
    default whenever ``verify`` is) asserts clone discipline: a pass
    that mutates its input graph is reported as a :class:`PassError`.
    ``dump_dir`` snapshots the IR after every pass as
    ``<seq>_<pass>.json`` (the ``--dump-ir`` CLI workflow).
    """

    def __init__(self, *, verify: bool = False, verify_numeric: bool = True,
                 check_purity: Optional[bool] = None,
                 dump_dir: Optional[Union[str, Path]] = None,
                 rtol: float = 5e-3, atol: float = 5e-3,
                 seed: int = 0) -> None:
        self.verify = verify
        self.verify_numeric = verify and verify_numeric
        self.check_purity = verify if check_purity is None else check_purity
        self.dump_dir = Path(dump_dir) if dump_dir else None
        self.rtol = rtol
        self.atol = atol
        self.seed = seed
        self.records: List[PassRecord] = []
        self._dump_index = 0

    # ------------------------------------------------------------------
    # Spec resolution
    # ------------------------------------------------------------------
    def resolve(self, spec: PassSpec) -> Pass:
        """Materialize one pipeline element into a runnable pass."""
        if isinstance(spec, str):
            return create_pass(spec)
        if isinstance(spec, tuple):
            name, options = spec
            return _BoundPass(create_pass(name), options)
        if hasattr(spec, "run") and hasattr(spec, "name"):
            return spec
        raise PassError(f"cannot interpret pass spec {spec!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, passes: Union["PassPipeline", Sequence[PassSpec]],
            graph: Graph, ctx: Optional[PassContext] = None) -> Graph:
        """Run ``passes`` over ``graph``, appending to :attr:`records`."""
        if isinstance(passes, PassPipeline):
            passes = passes.passes
        ctx = ctx or PassContext()
        for spec in passes:
            graph = self.run_pass(self.resolve(spec), graph, ctx)
        return graph

    def run_pass(self, p: Pass, graph: Graph, ctx: PassContext) -> Graph:
        """Run a single pass with instrumentation and verification."""
        info = _REGISTRY.get(p.name)
        purity_fp = None
        version_before = graph.version
        if self.check_purity:
            from repro.plan.fingerprint import graph_fingerprint
            purity_fp = graph_fingerprint(graph)

        record = PassRecord(
            name=p.name, wall_ms=0.0,
            nodes_before=len(graph.nodes), nodes_after=0,
            tensors_before=len(graph.tensors), tensors_after=0,
            elided_before=_elided_count(graph), elided_after=0)
        t0 = time.perf_counter()
        out = p.run(graph, ctx)
        record.wall_ms = (time.perf_counter() - t0) * 1e3

        if not isinstance(out, Graph):
            raise PassError(f"pass {p.name!r} returned {type(out).__name__}, "
                            f"not a Graph")
        if out is graph:
            raise PassError(f"pass {p.name!r} returned its input graph; "
                            f"passes must return a transformed clone")
        record.nodes_after = len(out.nodes)
        record.tensors_after = len(out.tensors)
        record.elided_after = _elided_count(out)

        if purity_fp is not None:
            from repro.plan.fingerprint import graph_fingerprint
            if (graph.version != version_before
                    or graph_fingerprint(graph) != purity_fp):
                raise PassError(
                    f"pass {p.name!r} mutated its input graph "
                    f"(clone discipline violated)")

        if self.verify:
            self._verify(info, p.name, graph, out, record)
        if self.dump_dir is not None:
            self._dump(p.name, out, record)
        self.records.append(record)
        return out

    # ------------------------------------------------------------------
    # Verification & IR dumps
    # ------------------------------------------------------------------
    def _verify(self, info: Optional[PassInfo], name: str,
                before: Graph, after: Graph, record: PassRecord) -> None:
        try:
            after.validate()
        except GraphError as exc:
            raise PassVerificationError(
                f"pass {name!r} produced an invalid graph: {exc}") from exc
        preserves_interface = info.preserves_interface if info else True
        if preserves_interface:
            if (set(after.inputs) != set(before.inputs)
                    or set(after.outputs) != set(before.outputs)):
                raise PassVerificationError(
                    f"pass {name!r} changed the graph interface: "
                    f"inputs {before.inputs} -> {after.inputs}, "
                    f"outputs {before.outputs} -> {after.outputs}")
        preserves_semantics = info.preserves_semantics if info else True
        if self.verify_numeric and preserves_semantics and preserves_interface:
            from repro.runtime.verify import EquivalenceError, numeric_spot_check
            try:
                err = numeric_spot_check(before, after, seed=self.seed,
                                         rtol=self.rtol, atol=self.atol)
            except EquivalenceError as exc:
                raise PassVerificationError(
                    f"pass {name!r} changed graph semantics: {exc}") from exc
            record.notes.append(f"numeric max |error| {err:.2e}")
        record.verified = True

    def _dump(self, name: str, graph: Graph, record: PassRecord) -> None:
        from repro.graph.serialize import save_graph

        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / f"{self._dump_index:02d}_{name}.json"
        self._dump_index += 1
        save_graph(graph, path, include_weights=False)
        record.notes.append(f"ir -> {path}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def record_dicts(self) -> List[Dict[str, Any]]:
        """All records as plain dicts (plan-provenance form)."""
        return [r.to_dict() for r in self.records]


@dataclass(frozen=True)
class PassPipeline:
    """A named, reusable sequence of pass specs."""

    name: str
    passes: Tuple[PassSpec, ...]

    def run(self, graph: Graph, manager: Optional[PassManager] = None,
            ctx: Optional[PassContext] = None) -> Graph:
        return (manager or PassManager()).run(self.passes, graph, ctx)

    def __iter__(self):
        return iter(self.passes)


# ----------------------------------------------------------------------
# Convenience entry points (the thin-wrapper API routes through these)
# ----------------------------------------------------------------------
def run_pass(name: str, graph: Graph, **options: Any) -> Graph:
    """Run one registered pass with a throwaway manager/context."""
    return PassManager().run([name], graph, PassContext(options=options))


def run_pipeline(passes: Union[PassPipeline, Sequence[PassSpec]],
                 graph: Graph, manager: Optional[PassManager] = None,
                 ctx: Optional[PassContext] = None) -> Graph:
    """Run a pass sequence, defaulting to an un-instrumented manager."""
    return (manager or PassManager()).run(passes, graph, ctx)


# ----------------------------------------------------------------------
# Registered passes: the existing transforms, ported
# ----------------------------------------------------------------------
def _register_builtin_passes() -> None:
    from repro.transform.cleanup import _eliminate_dead_nodes, _fold_constants
    from repro.transform.elemfuse import _fuse_elementwise
    from repro.transform.fusion import _fold_batchnorm, _fuse_activations
    from repro.transform.memopt import _optimize_memory

    register_pass(
        "fold_constants", idempotent=True, tags=("cleanup",),
        description="Evaluate nodes whose inputs are all initializers and "
                    "register their outputs as new constants.",
    )(_fold_constants)
    register_pass(
        "eliminate_dead_nodes", idempotent=True, tags=("cleanup",),
        description="Remove nodes whose outputs are never consumed "
                    "(fixpoint, so whole dead chains disappear).",
    )(_eliminate_dead_nodes)
    register_pass(
        "fold_batchnorm", idempotent=True, tags=("fusion",),
        description="Fold Conv+BatchNormalization pairs into the "
                    "convolution's weights and bias.",
    )(_fold_batchnorm)
    register_pass(
        "fuse_activations", idempotent=True, tags=("fusion",),
        description="Absorb Relu/Clip/Silu/Sigmoid/Gelu into the producing "
                    "Conv/Gemm node's activation epilogue.",
    )(_fuse_activations)
    register_pass(
        "fuse_elementwise", idempotent=True, tags=("fusion",),
        description="Group maximal chains/DAGs of pure elementwise ops "
                    "(Add/Mul/Relu/Clip/Sigmoid/Silu/BatchNormalization/"
                    "...) into FusedElementwise super-nodes the compiled "
                    "executor evaluates in one tiled sweep.",
    )(_fuse_elementwise)
    register_pass(
        "optimize_memory", idempotent=True, tags=("memopt",),
        description="Mark contiguity-elidable Slice/Concat/Pad nodes as "
                    "zero-cost under the co-allocated NHWC layout.",
    )(_optimize_memory)
    register_pass(
        "apply_decisions", requires=("decisions",), tags=("backend",),
        description="Apply the solver's region decisions: device "
                    "placements, MD-DP splits, and pipelining.",
    )(_apply_decisions_pass)
    register_pass(
        "mddp_split", requires=("node",), tags=("backend",),
        description="Split one PIM-candidate node into a GPU part and a "
                    "PIM part at a given ratio (MD-DP).",
    )(_mddp_split_pass)
    register_pass(
        "pipeline_chain", requires=("chain",), tags=("backend",),
        description="Split a straight-line chain into overlapping "
                    "pipeline-stage pieces across GPU and PIM.",
    )(_pipeline_chain_pass)


def _decision_field(decision: Any, key: str, default: Any = None) -> Any:
    if isinstance(decision, dict):
        return decision.get(key, default)
    return getattr(decision, key, default)


def _apply_decisions_pass(graph: Graph, ctx: PassContext) -> Graph:
    """Decision application, duck-typed over solver ``Decision`` objects
    (or their dict form) so the transform layer never imports the
    search subsystem."""
    from repro.transform.pipeline import pipeline_chain
    from repro.transform.split import apply_mddp

    decisions = ctx.require_option("apply_decisions", "decisions")
    g = graph
    for d in decisions:
        mode = _decision_field(d, "mode")
        nodes = list(_decision_field(d, "nodes", ()))
        if mode == "gpu":
            g = g.clone()
            for name in nodes:
                g.node(name).device = "gpu"
        elif mode == "split":
            if len(nodes) != 1:
                raise PassError(
                    f"split decisions cover exactly one node, got {nodes}")
            g = apply_mddp(g, nodes[0], _decision_field(d, "ratio_gpu"))
        elif mode == "pipeline":
            g = pipeline_chain(g, nodes,
                               num_stages=_decision_field(d, "stages"))
        else:
            raise PassError(f"unknown decision mode {mode!r}")
    if g is graph:  # no decisions: still honour the clone contract
        g = graph.clone()
    return g


def _mddp_split_pass(graph: Graph, ctx: PassContext) -> Graph:
    from repro.transform.split import apply_mddp

    node = ctx.require_option("mddp_split", "node")
    return apply_mddp(graph, node,
                      float(ctx.option("ratio_gpu", 0.5)),
                      axis=ctx.option("axis", "auto"))


def _pipeline_chain_pass(graph: Graph, ctx: PassContext) -> Graph:
    from repro.transform.pipeline import pipeline_chain

    chain = list(ctx.require_option("pipeline_chain", "chain"))
    return pipeline_chain(graph, chain,
                          num_stages=int(ctx.option("stages", 2)),
                          devices=ctx.option("devices"))


_register_builtin_passes()


# ----------------------------------------------------------------------
# Default pipelines (the Fig. 5 stages)
# ----------------------------------------------------------------------
#: Constant folding + dead-code elimination (the ``cleanup`` wrapper).
CLEANUP = PassPipeline("cleanup", ("fold_constants", "eliminate_dead_nodes"))
#: BN folding + activation fusion (the ``fuse`` wrapper).
FUSE = PassPipeline("fuse", ("fold_batchnorm", "fuse_activations"))
#: The mechanism-independent front end run by ``Compiler.prepare``.
PREPARE = PassPipeline("prepare", CLEANUP.passes + FUSE.passes)
#: Names of the prepare passes (the ``PimFlowConfig.prepare_passes``
#: default).
PREPARE_PASSES: Tuple[str, ...] = tuple(PREPARE.passes)
#: Decision application followed by the memory-layout optimizer (the
#: ``apply_decisions`` wrapper in :mod:`repro.search.apply`).
APPLY = PassPipeline("apply", ("apply_decisions", "optimize_memory"))
