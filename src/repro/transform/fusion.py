"""Inference-graph fusion: BN folding and activation fusion.

The TVM back-end the paper builds on performs these standard inference
optimizations before any PIM-specific pass runs:

* **BatchNorm folding** — a BatchNormalization directly consuming a
  convolution's output is folded into the convolution's weights and
  bias (inference-time BN is an affine transform per output channel).
* **Activation fusion** — Relu/Clip/Silu/Sigmoid directly consuming a
  Conv/Gemm output becomes the producing node's ``activation``
  attribute, executed as the kernel epilogue on GPU.

Both are semantics-preserving (up to float re-association).  Note the
PIM device cannot execute activations (Newton supports only MAC); for
PIM-offloaded nodes the execution engine charges a GPU epilogue pass
over the output instead (paper Fig. 4: results return to other devices
for activation functions).

The implementations are registered with the pass manager
(:mod:`repro.transform.passes`) as ``fold_batchnorm`` and
``fuse_activations``; the public functions here are thin wrappers
routing through it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node

#: Activations fusable into a Conv/Gemm epilogue, with their attr spec.
FUSABLE_ACTIVATIONS = ("Relu", "Clip", "Silu", "Sigmoid", "Gelu")


def _fold_batchnorm(graph: Graph) -> Graph:
    """Fold Conv+BN pairs into the convolution's weights and bias."""
    g = graph.clone()
    changed = True
    while changed:
        changed = False
        for bn in list(g.nodes):
            if bn.op_type != "BatchNormalization":
                continue
            producer = g.producer(bn.inputs[0])
            if producer is None or producer.op_type != "Conv":
                continue
            if len(g.consumers(producer.outputs[0])) != 1:
                continue
            if producer.outputs[0] in g.outputs:
                continue
            w_name = producer.inputs[1]
            if w_name not in g.initializers:
                continue
            scale, beta, mean, var = (
                np.asarray(g.initializers[t], dtype=np.float32)
                for t in bn.inputs[1:5])
            eps = float(bn.attr("epsilon", 1e-5))
            factor = scale / np.sqrt(var + eps)

            weight = np.asarray(g.initializers[w_name], dtype=np.float32)
            folded_w_name = f"{w_name}__bnfold"
            g.add_initializer(folded_w_name, weight * factor,
                              g.tensors[w_name].dtype)

            if len(producer.inputs) > 2:
                bias = np.asarray(g.initializers[producer.inputs[2]],
                                  dtype=np.float32)
            else:
                bias = np.zeros(weight.shape[-1], dtype=np.float32)
            folded_b = (bias - mean) * factor + beta
            folded_b_name = f"{producer.name}__bnfold_bias"
            g.add_initializer(folded_b_name, folded_b, g.tensors[w_name].dtype)

            producer.inputs = [producer.inputs[0], folded_w_name, folded_b_name]
            # The conv now produces what the BN produced.
            g.remove_node(bn.name)
            old_out = producer.outputs[0]
            producer.outputs = [bn.outputs[0]]
            # Keep the tensor table consistent: the conv's old output
            # info is stale but harmless; shapes are identical.
            del g.tensors[old_out]
            g.touch()  # node wiring changed in place
            changed = True
    return g


def _fuse_activations(graph: Graph) -> Graph:
    """Absorb activations into their producing Conv/Gemm node."""
    g = graph.clone()
    changed = True
    while changed:
        changed = False
        for act in list(g.nodes):
            if act.op_type not in FUSABLE_ACTIVATIONS:
                continue
            producer = g.producer(act.inputs[0])
            if producer is None or producer.op_type not in ("Conv", "Gemm"):
                continue
            if producer.attr("activation"):
                continue
            if len(g.consumers(producer.outputs[0])) != 1:
                continue
            if producer.outputs[0] in g.outputs:
                continue
            producer.attrs["activation"] = act.op_type.lower()
            if act.op_type == "Clip":
                producer.attrs["activation_min"] = float(act.attr("min", 0.0))
                producer.attrs["activation_max"] = float(act.attr("max", 6.0))
            g.remove_node(act.name)
            old_out = producer.outputs[0]
            producer.outputs = [act.outputs[0]]
            del g.tensors[old_out]
            g.touch()  # node wiring changed in place
            changed = True
    return g


def fold_batchnorm(graph: Graph) -> Graph:
    """BN folding via the registered ``fold_batchnorm`` pass."""
    from repro.transform.passes import run_pass
    return run_pass("fold_batchnorm", graph)


def fuse_activations(graph: Graph) -> Graph:
    """Activation fusion via the registered ``fuse_activations`` pass."""
    from repro.transform.passes import run_pass
    return run_pass("fuse_activations", graph)


def fuse(graph: Graph) -> Graph:
    """The standard inference pipeline: fold BN, then fuse activations."""
    from repro.transform.passes import FUSE, run_pipeline
    return run_pipeline(FUSE, graph)


def apply_fused_activation(node: Node, out: np.ndarray) -> np.ndarray:
    """Numpy semantics of a fused activation epilogue."""
    kind = node.attr("activation")
    if not kind:
        return out
    if kind == "relu":
        return np.maximum(out, 0.0)
    if kind == "clip":
        return np.clip(out, node.attr("activation_min", 0.0),
                       node.attr("activation_max", 6.0))
    if kind == "silu":
        from repro.runtime.numerical import stable_silu
        return stable_silu(out)
    if kind == "sigmoid":
        from repro.runtime.numerical import stable_sigmoid
        return stable_sigmoid(out)
    if kind == "gelu":
        return 0.5 * out * (1.0 + np.tanh(
            0.7978845608 * (out + 0.044715 * out ** 3)))
    raise ValueError(f"unknown fused activation {kind!r}")
