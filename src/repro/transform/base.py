"""Shared helpers for the transformation passes."""

from __future__ import annotations

from typing import Tuple

from repro.graph.graph import Graph
from repro.graph.node import Node


class TransformError(ValueError):
    """Raised when a pass cannot be applied to the requested nodes."""


class UnsplittableError(TransformError):
    """Raised when a requested split would produce an empty piece."""


def conv_h_window(o0: int, o1: int, kernel: int, stride: int, pad_top: int,
                  in_h: int) -> Tuple[int, int, int, int]:
    """Input window along H for output rows ``[o0, o1)`` of a convolution.

    Returns ``(in_start, in_end, new_pad_top, new_pad_bottom)`` such
    that convolving ``input[in_start:in_end]`` with pads
    ``(new_pad_top, new_pad_bottom)`` produces exactly the requested
    output rows.  This is the halo math behind both the MD-DP split and
    the pipelining pass: interior boundaries use overlapping input rows
    instead of padding.
    """
    if not 0 <= o0 < o1:
        raise UnsplittableError(f"invalid output range [{o0}, {o1})")
    in_start = max(0, o0 * stride - pad_top)
    in_end = min(in_h, (o1 - 1) * stride + kernel - pad_top)
    new_pad_top = max(0, pad_top - o0 * stride)
    new_pad_bottom = max(0, (o1 - 1) * stride + kernel - pad_top - in_h)
    if in_end <= in_start:
        raise UnsplittableError(
            f"output rows [{o0}, {o1}) read no real input rows "
            f"(kernel={kernel}, stride={stride}, pad_top={pad_top}, h={in_h})")
    return in_start, in_end, new_pad_top, new_pad_bottom


def input_rows_needed(o_end: int, kernel: int, stride: int, pad_top: int,
                      in_h: int) -> int:
    """Input rows ``[0, result)`` needed to produce output rows ``[0, o_end)``."""
    if o_end <= 0:
        return 0
    return min(in_h, (o_end - 1) * stride + kernel - pad_top)


def single_consumer_chain(graph: Graph, names) -> None:
    """Validate that ``names`` form a straight-line single-consumer chain."""
    for i, name in enumerate(names):
        node = graph.node(name)
        if i + 1 < len(names):
            nxt = graph.node(names[i + 1])
            out = node.outputs[0]
            consumers = graph.consumers(out)
            if len(consumers) != 1 or consumers[0].name != nxt.name:
                raise TransformError(
                    f"node {name!r} output must feed exactly {names[i + 1]!r} "
                    f"(found consumers {[c.name for c in consumers]})")
            if out not in nxt.inputs:
                raise TransformError(f"{names[i + 1]!r} does not consume {name!r}")
        if node.outputs[0] in graph.outputs and i + 1 < len(names):
            raise TransformError(
                f"intermediate node {name!r} is a graph output; cannot pipeline")


def rename_output(graph: Graph, node: Node, old: str, new: str) -> None:
    """Replace an output tensor name of ``node`` in-place.

    Rewiring dataflow edges invalidates the owning graph's cached
    toposort, so this takes the graph and calls
    :meth:`~repro.graph.graph.Graph.touch` itself — the historical
    ``rename_output(node, ...)`` form silently left the cache stale
    unless every caller remembered to ``touch()``.
    """
    if old not in node.outputs:
        raise TransformError(
            f"node {node.name!r} does not produce tensor {old!r}")
    node.outputs = [new if t == old else t for t in node.outputs]
    graph.touch()
