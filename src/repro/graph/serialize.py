"""JSON (de)serialization for graphs.

The search engine stores transformed graphs and metadata logs on disk
between the ``profile``, ``solve`` and ``run`` phases, mirroring the
artifact workflow (Appendix A.5).  Weights round-trip as nested lists —
adequate for the small deterministic initializers used here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.tensor import TensorInfo


def _attrs_to_json(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, tuple):
            v = list(v)
        out[k] = v
    return out


def _attrs_from_json(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, list):
            v = tuple(tuple(e) if isinstance(e, list) else e for e in v)
        out[k] = v
    return out


def graph_to_dict(graph: Graph, include_weights: bool = True) -> Dict[str, Any]:
    """Serialize a graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "tensors": [
            {"name": t.name, "shape": list(t.shape), "dtype": t.dtype}
            for t in graph.tensors.values()
        ],
        "initializers": (
            {name: value.tolist() for name, value in graph.initializers.items()}
            if include_weights
            else {name: None for name in graph.initializers}
        ),
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "inputs": list(n.inputs),
                "outputs": list(n.outputs),
                "attrs": _attrs_to_json(n.attrs),
                "device": n.device,
            }
            for n in graph.nodes
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Deserialize a graph from :func:`graph_to_dict` output."""
    g = Graph(data["name"])
    for t in data["tensors"]:
        g.add_tensor(TensorInfo(t["name"], tuple(t["shape"]), t["dtype"]))
    for name, value in data.get("initializers", {}).items():
        info = g.tensors[name]
        if value is None:
            arr = np.zeros(info.shape, dtype=np.float32)
        else:
            arr = np.asarray(value, dtype=np.float32).reshape(info.shape)
        g.initializers[name] = arr
    for n in data["nodes"]:
        g.add_node(Node(n["name"], n["op_type"], list(n["inputs"]),
                        list(n["outputs"]), _attrs_from_json(n.get("attrs", {})),
                        n.get("device", "auto")))
    g.inputs = list(data["inputs"])
    g.outputs = list(data["outputs"])
    g.touch()
    return g


def save_graph(graph: Graph, path: Union[str, Path], include_weights: bool = True) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph, include_weights)))


def load_graph(path: Union[str, Path]) -> Graph:
    """Read a graph from a JSON file written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
