"""Model-graph intermediate representation.

This package is the reproduction's stand-in for ONNX graphs (opset 13)
used by the original PIMFlow artifact.  It provides typed tensors, an
operator registry with shape inference, a validated ``Graph`` container
with topological traversal, a convenience ``GraphBuilder`` for the model
zoo, and JSON (de)serialization.

All 4-D activations use the NHWC (channels-last) layout, matching the
paper's assumption for DRAM-PIM-friendly contiguous channel access
(Section 2.2).
"""

from repro.graph.tensor import TensorInfo
from repro.graph.node import Node
from repro.graph.graph import Graph, GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.ops import infer_shapes, OP_REGISTRY, is_pim_candidate
from repro.graph.serialize import graph_to_dict, graph_from_dict, save_graph, load_graph

__all__ = [
    "TensorInfo",
    "Node",
    "Graph",
    "GraphError",
    "GraphBuilder",
    "infer_shapes",
    "OP_REGISTRY",
    "is_pim_candidate",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
]
