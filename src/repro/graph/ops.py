"""Operator registry and shape inference.

Each supported operator registers a shape-inference function mapping the
node and its input shapes to output shapes.  The registry doubles as the
validation whitelist: graphs containing unregistered op types are
rejected.

Conventions
-----------
* Activations: NHWC.
* ``Conv`` inputs: ``[data, weight]`` or ``[data, weight, bias]`` with
  weight shaped ``(kh, kw, cin_per_group, cout)``.
* ``Gemm`` inputs: ``[data(N, K), weight(K, M)]`` (+ optional bias
  ``(M,)``); no transpose attributes — the model zoo lays weights out
  directly.
* ``pads`` for Conv/Pool are ``(top, left, bottom, right)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.graph.node import Node

Shape = Tuple[int, ...]
InferFn = Callable[[Node, List[Shape]], List[Shape]]

OP_REGISTRY: Dict[str, InferFn] = {}

#: Ops the paper treats as PIM-offload candidates: FC layers and all
#: convolutions except depthwise (Section 4.2.1).
PIM_CANDIDATE_OPS = ("Conv", "Gemm", "MatMul")

#: Ops that are computationally lightweight on GPU; pipelining across
#: them is excluded by the search (Section 4.2.2).
LIGHTWEIGHT_OPS = ("Relu", "Clip", "Add", "Mul", "Sigmoid", "Silu", "Gelu", "MaxPool", "Identity")


class ShapeError(ValueError):
    """Raised when shape inference fails for a node."""


def register(op_type: str) -> Callable[[InferFn], InferFn]:
    """Class of decorators registering a shape-inference function."""

    def wrap(fn: InferFn) -> InferFn:
        OP_REGISTRY[op_type] = fn
        return fn

    return wrap


def conv_out_dim(size: int, kernel: int, stride: int, pad_lo: int, pad_hi: int) -> int:
    """Output spatial extent of a convolution/pool along one axis."""
    out = (size + pad_lo + pad_hi - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive output dim: size={size} kernel={kernel} "
            f"stride={stride} pads=({pad_lo},{pad_hi})"
        )
    return out


def is_depthwise(node: Node, input_shapes: Sequence[Shape]) -> bool:
    """True when a Conv node is depthwise (group == input channels)."""
    if node.op_type != "Conv":
        return False
    group = int(node.attr("group", 1))
    cin = input_shapes[0][3]
    return group > 1 and group == cin


def is_pim_candidate(node: Node, input_shapes: Sequence[Shape]) -> bool:
    """True for nodes the search may offload to DRAM-PIM.

    FC (Gemm/MatMul) and Conv layers qualify; depthwise convolutions do
    not, because offloading them would require flushing the global
    buffer per input channel (Section 4.2.2).
    """
    if node.op_type not in PIM_CANDIDATE_OPS:
        return False
    if node.op_type == "Conv" and is_depthwise(node, input_shapes):
        return False
    return True


def _freeze_attr(value) -> object:
    """Hashable form of a node attribute value."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_attr(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_attr(v)) for k, v in value.items()))
    if hasattr(value, "tobytes"):  # numpy array / scalar
        return (getattr(value, "shape", ()), value.tobytes())
    return value


def node_structural_key(node: Node, tensors: Mapping[str, object]) -> Tuple:
    """Hashable key capturing everything an analytical cost model reads.

    Two nodes with equal keys have identical op type, attributes, and
    input/output tensor shapes+dtypes, so any pure cost function of the
    node (GPU roofline, PIM command timing) returns identical results —
    the memoization contract of :class:`~repro.gpu.device.GpuDevice`
    and :class:`~repro.pim.device.PimDevice`.  Node *names* and device
    placements are deliberately excluded: the same layer structure at a
    different position (or on the other device timeline) prices the
    same.
    """
    attrs = tuple(sorted((k, _freeze_attr(v)) for k, v in node.attrs.items()))
    ins = tuple((tensors[t].shape, tensors[t].dtype) for t in node.inputs)
    outs = tuple((tensors[t].shape, tensors[t].dtype) for t in node.outputs)
    return (node.op_type, attrs, ins, outs)


def _expect_rank(shape: Shape, rank: int, what: str) -> None:
    if len(shape) != rank:
        raise ShapeError(f"{what} must be rank {rank}, got shape {shape}")


def _broadcast(a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcast of two shapes."""
    out = []
    for da, db in zip(reversed((1,) * max(0, len(b) - len(a)) + a),
                      reversed((1,) * max(0, len(a) - len(b)) + b)):
        if da == db or da == 1 or db == 1:
            out.append(max(da, db))
        else:
            raise ShapeError(f"cannot broadcast {a} with {b}")
    return tuple(reversed(out))


@register("Conv")
def _infer_conv(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data, weight = input_shapes[0], input_shapes[1]
    _expect_rank(data, 4, "Conv data")
    _expect_rank(weight, 4, "Conv weight")
    n, h, w, cin = data
    kh, kw, cin_g, cout = weight
    group = int(node.attr("group", 1))
    if cin % group != 0 or cout % group != 0:
        raise ShapeError(f"channels ({cin}->{cout}) not divisible by group {group}")
    if cin_g != cin // group:
        raise ShapeError(
            f"weight cin_per_group {cin_g} != input channels {cin} / group {group}"
        )
    ks = tuple(node.attr("kernel_shape", (kh, kw)))
    if ks != (kh, kw):
        raise ShapeError(f"kernel_shape attr {ks} != weight spatial dims {(kh, kw)}")
    sh, sw = node.attr("strides", (1, 1))
    pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
    oh = conv_out_dim(h, kh, sh, pt, pb)
    ow = conv_out_dim(w, kw, sw, pl, pr)
    if len(input_shapes) > 2:
        _expect_rank(input_shapes[2], 1, "Conv bias")
        if input_shapes[2][0] != cout:
            raise ShapeError("Conv bias length != cout")
    return [(n, oh, ow, cout)]


@register("Gemm")
def _infer_gemm(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data, weight = input_shapes[0], input_shapes[1]
    _expect_rank(data, 2, "Gemm data")
    _expect_rank(weight, 2, "Gemm weight")
    n, k = data
    k2, m = weight
    if k != k2:
        raise ShapeError(f"Gemm inner dims mismatch: {k} vs {k2}")
    if len(input_shapes) > 2 and input_shapes[2] != (m,):
        raise ShapeError("Gemm bias shape mismatch")
    return [(n, m)]


@register("MatMul")
def _infer_matmul(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    a, b = input_shapes[0], input_shapes[1]
    if len(a) < 2 or len(b) != 2:
        raise ShapeError(f"MatMul expects (..., K) x (K, M), got {a} x {b}")
    if a[-1] != b[0]:
        raise ShapeError(f"MatMul inner dims mismatch: {a[-1]} vs {b[0]}")
    return [a[:-1] + (b[1],)]


def _infer_unary(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    return [input_shapes[0]]


for _op in ("Relu", "Sigmoid", "Clip", "Softmax", "Identity", "Erf", "Tanh", "Silu", "Gelu"):
    OP_REGISTRY[_op] = _infer_unary


def _infer_binary(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    return [_broadcast(input_shapes[0], input_shapes[1])]


for _op in ("Add", "Mul", "Sub", "Div"):
    OP_REGISTRY[_op] = _infer_binary


@register("FusedElementwise")
def _infer_fused_elementwise(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    # Re-derive every entry's shape from the embedded sub-expression
    # (see transform/elemfuse.py for the expr/out_ids encoding), so a
    # fused graph stays checkable by Graph.validate without the
    # original member nodes.
    expr = node.attr("expr") or []
    out_ids = node.attr("out_ids") or []
    if not expr or len(out_ids) != len(node.outputs):
        raise ShapeError(
            f"FusedElementwise {node.name!r} has inconsistent expr/out_ids")
    shapes: List[Shape] = []
    for entry in expr:
        ins: List[Shape] = []
        for ref in entry["inputs"]:
            kind, j = ref[0], ref[1]
            ins.append(tuple(input_shapes[j]) if kind == "in"
                       else shapes[j])
        if entry["op"] in ("Add", "Mul", "Sub", "Div"):
            shapes.append(_broadcast(ins[0], ins[1]))
        else:
            # Unary activations and BatchNormalization: data-shaped.
            shapes.append(ins[0])
    return [shapes[i] for i in out_ids]


@register("BatchNormalization")
def _infer_bn(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    c = data[-1]
    for i, name in ((1, "scale"), (2, "bias"), (3, "mean"), (4, "var")):
        if input_shapes[i] != (c,):
            raise ShapeError(f"BatchNormalization {name} must be ({c},)")
    return [data]


def _infer_pool(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    _expect_rank(data, 4, f"{node.op_type} data")
    n, h, w, c = data
    kh, kw = node.attr("kernel_shape")
    sh, sw = node.attr("strides", (kh, kw))
    pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
    oh = conv_out_dim(h, kh, sh, pt, pb)
    ow = conv_out_dim(w, kw, sw, pl, pr)
    return [(n, oh, ow, c)]


OP_REGISTRY["MaxPool"] = _infer_pool
OP_REGISTRY["AveragePool"] = _infer_pool


@register("GlobalAveragePool")
def _infer_gap(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    _expect_rank(data, 4, "GlobalAveragePool data")
    n, _, _, c = data
    return [(n, 1, 1, c)]


@register("Flatten")
def _infer_flatten(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    n = data[0]
    rest = 1
    for d in data[1:]:
        rest *= d
    return [(n, rest)]


@register("Reshape")
def _infer_reshape(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    target = list(node.attr("shape"))
    total = 1
    for d in data:
        total *= d
    if target.count(-1) > 1:
        raise ShapeError("Reshape allows at most one -1")
    known = 1
    for d in target:
        if d != -1:
            known *= d
    if -1 in target:
        if total % known != 0:
            raise ShapeError(f"cannot reshape {data} to {target}")
        target[target.index(-1)] = total // known
    elif known != total:
        raise ShapeError(f"cannot reshape {data} ({total}) to {target} ({known})")
    return [tuple(target)]


@register("Transpose")
def _infer_transpose(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = input_shapes[0]
    perm = node.attr("perm", tuple(reversed(range(len(data)))))
    if sorted(perm) != list(range(len(data))):
        raise ShapeError(f"invalid perm {perm} for shape {data}")
    return [tuple(data[p] for p in perm)]


@register("Concat")
def _infer_concat(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    axis = int(node.attr("axis"))
    base = list(input_shapes[0])
    axis = axis % len(base)
    total = base[axis]
    for s in input_shapes[1:]:
        if len(s) != len(base):
            raise ShapeError("Concat rank mismatch")
        for i, (a, b) in enumerate(zip(base, s)):
            if i != axis and a != b:
                raise ShapeError(f"Concat non-axis dim mismatch: {input_shapes}")
        total += s[axis]
    base[axis] = total
    return [tuple(base)]


@register("Slice")
def _infer_slice(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = list(input_shapes[0])
    axis = int(node.attr("axis")) % len(data)
    start = int(node.attr("start"))
    end = int(node.attr("end"))
    start = max(0, start if start >= 0 else data[axis] + start)
    end = min(data[axis], end if end >= 0 else data[axis] + end)
    if end <= start:
        raise ShapeError(f"empty Slice [{start}:{end}] on axis {axis} of {data}")
    data[axis] = end - start
    return [tuple(data)]


@register("Pad")
def _infer_pad(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = list(input_shapes[0])
    pads = node.attr("pads")  # sequence of (before, after) per axis
    if len(pads) != len(data):
        raise ShapeError(f"Pad needs one (before, after) pair per axis of {data}")
    out = []
    for d, (before, after) in zip(data, pads):
        if before < 0 or after < 0:
            raise ShapeError("negative padding is not supported")
        out.append(d + before + after)
    return [tuple(out)]


@register("ReduceMean")
def _infer_reduce_mean(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    data = list(input_shapes[0])
    axes = [a % len(data) for a in node.attr("axes")]
    keepdims = bool(node.attr("keepdims", True))
    if keepdims:
        for a in axes:
            data[a] = 1
        return [tuple(data)]
    return [tuple(d for i, d in enumerate(data) if i not in axes)]


def infer_shapes(node: Node, input_shapes: List[Shape]) -> List[Shape]:
    """Infer output shapes for ``node`` given its input shapes."""
    fn = OP_REGISTRY.get(node.op_type)
    if fn is None:
        raise ShapeError(f"unregistered op type {node.op_type!r} (node {node.name!r})")
    expected_inputs = len(node.inputs)
    if len(input_shapes) != expected_inputs:
        raise ShapeError(
            f"node {node.name!r} has {expected_inputs} inputs but got "
            f"{len(input_shapes)} shapes"
        )
    shapes = fn(node, input_shapes)
    if len(shapes) != len(node.outputs):
        raise ShapeError(
            f"node {node.name!r} declares {len(node.outputs)} outputs but "
            f"inference produced {len(shapes)}"
        )
    return shapes
