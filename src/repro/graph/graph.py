"""The ``Graph`` container: nodes, tensors, weights, traversal, validation."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.graph.node import Node
from repro.graph.ops import infer_shapes
from repro.graph.tensor import TensorInfo


class GraphError(ValueError):
    """Raised when a graph is structurally invalid."""


class Graph:
    """A dataflow graph of operator nodes over named tensors.

    The container mirrors what the PIMFlow passes need from ONNX
    ``ModelProto``: named value infos, initializers (weights), graph
    inputs/outputs, and nodes in insertion order.  ``toposort`` and the
    producer/consumer indexes support the transformation passes; shape
    ``validate`` re-runs full shape inference and is called after every
    pass in the test suite.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.tensors: Dict[str, TensorInfo] = {}
        self.initializers: Dict[str, np.ndarray] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._name_counter = 0
        self._version = 0
        self._topo_cache: Optional[List[Node]] = None

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter of structural mutations.

        Derived caches (the memoized :meth:`toposort`, the executor's
        float32 initializer cache) key on this value.  All ``Graph``
        methods that change structure bump it; code that rewires nodes
        or graph input/output lists *in place* must call :meth:`touch`.
        """
        return self._version

    def touch(self) -> None:
        """Invalidate derived caches after an in-place structural edit."""
        self._version += 1
        self._topo_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_tensor(self, info: TensorInfo) -> TensorInfo:
        """Register tensor metadata; re-registering identical info is a no-op."""
        existing = self.tensors.get(info.name)
        if existing is not None and existing != info:
            raise GraphError(
                f"tensor {info.name!r} already registered with different "
                f"metadata ({existing.shape} vs {info.shape})"
            )
        self.tensors[info.name] = info
        return info

    def add_initializer(self, name: str, value: np.ndarray, dtype: str = "float16") -> TensorInfo:
        """Register a weight tensor with its constant value."""
        info = self.add_tensor(TensorInfo(name, tuple(value.shape), dtype))
        self.initializers[name] = value
        self.touch()
        return info

    def add_node(self, node: Node) -> Node:
        """Append a node; its tensors must already be registered."""
        if any(n.name == node.name for n in self.nodes):
            raise GraphError(f"duplicate node name {node.name!r}")
        for t in list(node.inputs) + list(node.outputs):
            if t not in self.tensors:
                raise GraphError(f"node {node.name!r} references unknown tensor {t!r}")
        self.nodes.append(node)
        self.touch()
        return node

    def unique_name(self, prefix: str) -> str:
        """Generate a tensor/node name not yet used in the graph."""
        while True:
            self._name_counter += 1
            candidate = f"{prefix}_{self._name_counter}"
            if candidate not in self.tensors and all(n.name != candidate for n in self.nodes):
                return candidate

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Fetch a node by name."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"no node named {name!r}")

    def producer(self, tensor: str) -> Optional[Node]:
        """The node producing ``tensor``, or None for inputs/weights."""
        for n in self.nodes:
            if tensor in n.outputs:
                return n
        return None

    def consumers(self, tensor: str) -> List[Node]:
        """All nodes consuming ``tensor``."""
        return [n for n in self.nodes if tensor in n.inputs]

    def is_weight(self, tensor: str) -> bool:
        """True if the tensor is a registered initializer."""
        return tensor in self.initializers

    def remove_node(self, name: str) -> Node:
        """Remove a node by name and return it."""
        for i, n in enumerate(self.nodes):
            if n.name == name:
                removed = self.nodes.pop(i)
                self.touch()
                return removed
        raise KeyError(f"no node named {name!r}")

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def toposort(self) -> List[Node]:
        """Nodes in topological (dataflow) order.

        Raises :class:`GraphError` on cycles or undefined data inputs.
        The result is memoized until the next structural mutation
        (:meth:`touch`); callers receive a fresh list each time, but
        the ``Node`` objects are the graph's own.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        self._topo_cache = self._toposort_uncached()
        return list(self._topo_cache)

    def _toposort_uncached(self) -> List[Node]:
        ready: Dict[str, bool] = {t: True for t in self.inputs}
        for t in self.initializers:
            ready[t] = True
        remaining = list(self.nodes)
        ordered: List[Node] = []
        while remaining:
            progressed = False
            still: List[Node] = []
            for n in remaining:
                if all(ready.get(t, False) for t in n.inputs):
                    ordered.append(n)
                    for t in n.outputs:
                        ready[t] = True
                    progressed = True
                else:
                    still.append(n)
            remaining = still
            if not progressed and remaining:
                names = [n.name for n in remaining]
                raise GraphError(f"graph has a cycle or undefined inputs at: {names}")
        return ordered

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structure and re-run shape inference over every node."""
        for t in self.inputs + self.outputs:
            if t not in self.tensors:
                raise GraphError(f"graph input/output {t!r} has no tensor info")
        producers: Dict[str, str] = {}
        for n in self.nodes:
            for t in n.outputs:
                if t in producers:
                    raise GraphError(
                        f"tensor {t!r} produced by both {producers[t]!r} and {n.name!r}"
                    )
                if t in self.initializers:
                    raise GraphError(f"node {n.name!r} overwrites initializer {t!r}")
                if t in self.inputs:
                    raise GraphError(f"node {n.name!r} overwrites graph input {t!r}")
                producers[t] = n.name
        for t in self.outputs:
            if t not in producers and t not in self.inputs:
                raise GraphError(f"graph output {t!r} is never produced")
        for n in self.toposort():
            input_shapes = [self.tensors[t].shape for t in n.inputs]
            inferred = infer_shapes(n, input_shapes)
            for t, shape in zip(n.outputs, inferred):
                declared = self.tensors[t].shape
                if declared != shape:
                    raise GraphError(
                        f"node {n.name!r} output {t!r}: declared shape {declared} "
                        f"!= inferred {shape}"
                    )

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def clone(self) -> "Graph":
        """Structural copy; initializer arrays are shared (they are read-only)."""
        g = Graph(self.name)
        g.tensors = dict(self.tensors)
        g.initializers = dict(self.initializers)
        g.inputs = list(self.inputs)
        g.outputs = list(self.outputs)
        g.nodes = [n.clone() for n in self.nodes]
        g._name_counter = self._name_counter
        return g

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def op_counts(self) -> Dict[str, int]:
        """Histogram of op types, useful for model-zoo sanity checks."""
        counts: Dict[str, int] = {}
        for n in self.nodes:
            counts[n.op_type] = counts.get(n.op_type, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph({self.name!r}, {len(self.nodes)} nodes)"
