"""Tensor metadata for the graph IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Bytes per element for the dtypes the IR understands.
DTYPE_SIZES = {
    "float16": 2,
    "float32": 4,
    "int8": 1,
    "int32": 4,
}


@dataclass(frozen=True)
class TensorInfo:
    """Shape and dtype metadata for one value flowing through a graph.

    Activations are NHWC for 4-D tensors.  Convolution weights use the
    (kh, kw, cin_per_group, cout) layout so that the innermost dimension
    is the output channel, matching the column-major placement of filter
    matrices in DRAM-PIM banks after convolution lowering.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float16"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if self.dtype not in DTYPE_SIZES:
            raise ValueError(f"unknown dtype {self.dtype!r}")
        # Normalize the shape to a plain tuple of ints (guards against
        # numpy integers sneaking in from shape arithmetic).
        try:
            normalized = tuple(int(d) for d in self.shape)
        except (TypeError, ValueError):
            raise ValueError(
                f"invalid shape {self.shape!r} for tensor {self.name!r}") from None
        if any(d <= 0 for d in normalized):
            raise ValueError(f"invalid shape {self.shape!r} for tensor {self.name!r}")
        object.__setattr__(self, "shape", normalized)

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def num_bytes(self) -> int:
        """Size of the tensor in bytes."""
        return self.num_elements * DTYPE_SIZES[self.dtype]

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorInfo":
        """Return a copy of this tensor info with a different shape."""
        return TensorInfo(self.name, tuple(shape), self.dtype)

    def with_name(self, name: str) -> "TensorInfo":
        """Return a copy of this tensor info with a different name."""
        return TensorInfo(name, self.shape, self.dtype)
