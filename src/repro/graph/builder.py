"""Fluent builder used by the model zoo to assemble graphs."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import infer_shapes
from repro.graph.tensor import TensorInfo


class GraphBuilder:
    """Incrementally builds a validated :class:`Graph`.

    Every emitter returns the output tensor *name*, so model definitions
    chain naturally::

        b = GraphBuilder("toy")
        x = b.input("x", (1, 56, 56, 64))
        y = b.conv(x, cout=128, kernel=1)
        y = b.relu(y)
        b.output(y)

    Weights are initialized from a seeded RNG: timing only depends on
    shapes, and the numerical test suite needs deterministic values.
    """

    def __init__(self, name: str = "graph", seed: int = 0, dtype: str = "float16") -> None:
        self.graph = Graph(name)
        self.dtype = dtype
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _weight(self, prefix: str, shape: Tuple[int, ...], scale: Optional[float] = None) -> str:
        name = self._fresh(prefix)
        if scale is None:
            fan_in = 1
            for d in shape[:-1]:
                fan_in *= d
            scale = (2.0 / max(fan_in, 1)) ** 0.5
        value = self._rng.standard_normal(shape, dtype=np.float32) * np.float32(scale)
        self.graph.add_initializer(name, value, self.dtype)
        return name

    def _emit(self, op_type: str, inputs: Sequence[str], attrs: Optional[dict] = None,
              name: Optional[str] = None) -> str:
        node_name = name or self._fresh(op_type.lower())
        out = f"{node_name}_out"
        node = Node(node_name, op_type, list(inputs), [out], dict(attrs or {}))
        input_shapes = [self.graph.tensors[t].shape for t in inputs]
        (out_shape,) = infer_shapes(node, input_shapes)
        self.graph.add_tensor(TensorInfo(out, out_shape, self.dtype))
        self.graph.add_node(node)
        return out

    # ------------------------------------------------------------------
    # Graph boundary
    # ------------------------------------------------------------------
    def input(self, name: str, shape: Tuple[int, ...]) -> str:
        """Declare a graph input tensor."""
        self.graph.add_tensor(TensorInfo(name, shape, self.dtype))
        self.graph.inputs.append(name)
        self.graph.touch()
        return name

    def output(self, tensor: str) -> None:
        """Mark a tensor as a graph output."""
        self.graph.outputs.append(tensor)
        self.graph.touch()

    def build(self) -> Graph:
        """Validate and return the graph."""
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def conv(self, data: str, cout: int, kernel: int = 1, stride: int = 1,
             pad: Optional[int] = None, group: int = 1, bias: bool = True,
             name: Optional[str] = None) -> str:
        """2-D convolution (NHWC); ``pad=None`` means SAME-style for odd kernels."""
        cin = self.graph.tensors[data].shape[3]
        if pad is None:
            pad = (kernel - 1) // 2
        w = self._weight("w", (kernel, kernel, cin // group, cout))
        inputs = [data, w]
        if bias:
            b = self._fresh("b")
            self.graph.add_initializer(
                b, np.zeros((cout,), dtype=np.float32), self.dtype)
            inputs.append(b)
        attrs = {
            "kernel_shape": (kernel, kernel),
            "strides": (stride, stride),
            "pads": (pad, pad, pad, pad),
            "group": group,
        }
        return self._emit("Conv", inputs, attrs, name)

    def dwconv(self, data: str, kernel: int = 3, stride: int = 1,
               pad: Optional[int] = None, name: Optional[str] = None) -> str:
        """Depthwise convolution (group == channels)."""
        cin = self.graph.tensors[data].shape[3]
        return self.conv(data, cout=cin, kernel=kernel, stride=stride,
                         pad=pad, group=cin, name=name)

    def gemm(self, data: str, cout: int, bias: bool = True,
             name: Optional[str] = None) -> str:
        """Fully-connected layer (data is (N, K))."""
        k = self.graph.tensors[data].shape[1]
        w = self._weight("w", (k, cout))
        inputs = [data, w]
        if bias:
            b = self._fresh("b")
            self.graph.add_initializer(
                b, np.zeros((cout,), dtype=np.float32), self.dtype)
            inputs.append(b)
        return self._emit("Gemm", inputs, {}, name)

    def matmul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self._emit("MatMul", [a, b], {}, name)

    def batchnorm(self, data: str, name: Optional[str] = None) -> str:
        c = self.graph.tensors[data].shape[-1]
        scale = self._fresh("bn_scale")
        bias = self._fresh("bn_bias")
        mean = self._fresh("bn_mean")
        var = self._fresh("bn_var")
        self.graph.add_initializer(scale, np.ones((c,), dtype=np.float32), self.dtype)
        self.graph.add_initializer(bias, np.zeros((c,), dtype=np.float32), self.dtype)
        self.graph.add_initializer(
            mean, (self._rng.standard_normal(c) * 0.01).astype(np.float32), self.dtype)
        self.graph.add_initializer(
            var, np.ones((c,), dtype=np.float32), self.dtype)
        return self._emit("BatchNormalization", [data, scale, bias, mean, var],
                          {"epsilon": 1e-5}, name)

    def relu(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Relu", [data], None, name)

    def relu6(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Clip", [data], {"min": 0.0, "max": 6.0}, name)

    def sigmoid(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Sigmoid", [data], None, name)

    def swish(self, data: str, name: Optional[str] = None) -> str:
        """SiLU / swish (x * sigmoid(x)), the EfficientNet activation.

        Emitted as a single fused op, matching ONNX exports of these
        models; the fused form keeps 1x1-DW chains single-consumer so
        the pipelining pattern matcher can find them.
        """
        return self._emit("Silu", [data], None, name)

    def gelu(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Gelu", [data], None, name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self._emit("Add", [a, b], None, name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self._emit("Mul", [a, b], None, name)

    def maxpool(self, data: str, kernel: int, stride: int, pad: int = 0,
                name: Optional[str] = None) -> str:
        return self._emit("MaxPool", [data], {
            "kernel_shape": (kernel, kernel),
            "strides": (stride, stride),
            "pads": (pad, pad, pad, pad),
        }, name)

    def avgpool(self, data: str, kernel: int, stride: int, pad: int = 0,
                name: Optional[str] = None) -> str:
        return self._emit("AveragePool", [data], {
            "kernel_shape": (kernel, kernel),
            "strides": (stride, stride),
            "pads": (pad, pad, pad, pad),
        }, name)

    def global_avgpool(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("GlobalAveragePool", [data], None, name)

    def flatten(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Flatten", [data], None, name)

    def reshape(self, data: str, shape: Sequence[int], name: Optional[str] = None) -> str:
        return self._emit("Reshape", [data], {"shape": tuple(shape)}, name)

    def transpose(self, data: str, perm: Sequence[int],
                  name: Optional[str] = None) -> str:
        return self._emit("Transpose", [data], {"perm": tuple(perm)}, name)

    def softmax(self, data: str, name: Optional[str] = None) -> str:
        return self._emit("Softmax", [data], {"axis": -1}, name)

    def concat(self, tensors: Sequence[str], axis: int, name: Optional[str] = None) -> str:
        return self._emit("Concat", list(tensors), {"axis": axis}, name)

    def slice(self, data: str, axis: int, start: int, end: int,
              name: Optional[str] = None) -> str:
        return self._emit("Slice", [data], {"axis": axis, "start": start, "end": end},
                          name)
