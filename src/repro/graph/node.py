"""Graph node (operator instance)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class Node:
    """One operator instance in a model graph.

    Attributes
    ----------
    name:
        Unique node name within the graph.
    op_type:
        Operator kind, e.g. ``"Conv"`` or ``"Gemm"`` (see
        :mod:`repro.graph.ops` for the registry).
    inputs:
        Names of input tensors, in operator-defined order.
    outputs:
        Names of output tensors.
    attrs:
        Operator attributes (kernel shape, strides, pads, ...).
    device:
        Placement hint consumed by the runtime: ``"gpu"``, ``"pim"`` or
        ``"auto"``.  The search engine rewrites this field; it mirrors
        the node-name prefix marking used by the original artifact to
        trigger the DRAM-PIM TVM back-end.
    """

    name: str
    op_type: str
    inputs: List[str]
    outputs: List[str]
    attrs: Dict[str, Any] = field(default_factory=dict)
    device: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if not self.op_type:
            raise ValueError(f"node {self.name!r} has empty op_type")
        if not self.outputs:
            raise ValueError(f"node {self.name!r} must produce at least one output")
        if self.device not in ("auto", "gpu", "pim"):
            raise ValueError(f"node {self.name!r} has invalid device {self.device!r}")

    def attr(self, key: str, default: Any = None) -> Any:
        """Fetch an attribute with a default."""
        return self.attrs.get(key, default)

    def clone(self, **overrides: Any) -> "Node":
        """Deep-ish copy with field overrides (attrs dict is copied)."""
        fields = {
            "name": self.name,
            "op_type": self.op_type,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "attrs": dict(self.attrs),
            "device": self.device,
        }
        fields.update(overrides)
        return Node(**fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ins = ", ".join(self.inputs)
        outs = ", ".join(self.outputs)
        return f"Node({self.op_type} {self.name!r}: [{ins}] -> [{outs}])"
