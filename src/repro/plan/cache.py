"""Content-addressed on-disk cache of profiling measurements.

Algorithm-1 profiling is by far the most expensive phase of the
toolchain — every PIM-candidate layer at 11 split ratios plus every
pipeline candidate, each a full simulator evaluation.  The cache keys
each profiled region by a stable structural fingerprint (see
:mod:`repro.plan.fingerprint`) under the toolchain's configuration
fingerprint, so repeated ``profile()`` calls — and the benchmark suite,
which profiles the same models dozens of times — replay measurements
from disk instead of re-running the simulators.

Layout::

    <cache_dir>/objects/<config_fp[:16]>/<region_fp>.json
    <cache_dir>/last_run.json

Grouping by configuration fingerprint makes invalidation exact: a
changed device config, mechanism, or optimization flag lands in a fresh
subdirectory, and :meth:`ProfileCache.invalidate` removes a stale
configuration's entries wholesale.

Concurrency: writes are atomic (unique temp file + ``os.replace``), so
readers never observe partial entries even with several profilers
sharing one cache directory.  Within one toolchain the parallel
profiling path additionally funnels all writes through the parent
process — the :class:`~repro.search.profiler.RegionProfiler` is the
single writer, merging worker results after jobs complete — so worker
crashes can never corrupt or half-write an entry.

Entries are lists of measurement dicts (``RegionMeasurement.to_dict``
form), kept as plain data so this module needs nothing from
:mod:`repro.search`.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

logger = logging.getLogger(__name__)


class ProfileCache:
    """Memoizes region measurements on disk, content-addressed."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.root = Path(cache_dir)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _config_dir(self, config_fingerprint: str) -> Path:
        return self.objects / config_fingerprint[:16]

    def _entry_path(self, config_fingerprint: str, region_fingerprint: str) -> Path:
        return self._config_dir(config_fingerprint) / f"{region_fingerprint}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, config_fingerprint: str,
               region_fingerprint: str) -> Optional[List[Dict[str, Any]]]:
        """Cached measurement dicts for a region, or None on a miss.

        An empty list is a valid (negative) result — e.g. a pipeline
        candidate that proved unsplittable — and still counts as a hit.
        Corrupt entries are dropped and reported as misses.
        """
        path = self._entry_path(config_fingerprint, region_fingerprint)
        if not path.exists():
            self.misses += 1
            return None
        try:
            data = json.loads(path.read_text())
            entries = data["entries"]
        except (json.JSONDecodeError, KeyError, TypeError):
            logger.warning("dropping corrupt profile-cache entry %s", path)
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return entries

    def store(self, config_fingerprint: str, region_fingerprint: str,
              entries: List[Dict[str, Any]],
              meta: Optional[Dict[str, Any]] = None) -> None:
        """Persist the measurements of one profiled region."""
        path = self._entry_path(config_fingerprint, region_fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"entries": entries, "meta": meta or {}}
        # Per-process temp name: two processes storing the same entry
        # must never interleave writes into one temp file.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)  # atomic: concurrent profilers never see partials

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, config_fingerprint: Optional[str] = None) -> int:
        """Remove cached entries; returns the number removed.

        With a fingerprint, only that configuration's entries go; with
        none, the whole cache is cleared.
        """
        dirs = ([self._config_dir(config_fingerprint)]
                if config_fingerprint is not None
                else [d for d in self.objects.iterdir() if d.is_dir()])
        removed = 0
        for d in dirs:
            if not d.exists():
                continue
            removed += sum(1 for _ in d.glob("*.json"))
            shutil.rmtree(d)
        return removed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Entries currently on disk (all configurations)."""
        return sum(1 for _ in self.objects.glob("*/*.json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": self.num_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (called at the start of a profile
        run so ``last_run.json`` reflects exactly one run)."""
        self.hits = 0
        self.misses = 0

    def record_run(self, config_fingerprint: str) -> None:
        """Persist the counters of the run that just finished, so
        ``pimflow stat`` can report cache effectiveness afterwards."""
        payload = dict(self.stats())
        payload["config_fingerprint"] = config_fingerprint
        (self.root / "last_run.json").write_text(json.dumps(payload))

    def last_run(self) -> Optional[Dict[str, Any]]:
        """Statistics of the most recent recorded profile run, if any."""
        path = self.root / "last_run.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            return None


class MemoryProfileCache(ProfileCache):
    """Dict-backed profile cache: same addressing, zero disk I/O.

    The default measurement memo of a :class:`~repro.pimflow.Compiler`
    when no ``cache_dir`` is configured: repeat ``profile()``/
    ``compile()`` calls on the same compiler replay measurements
    instead of re-running the transform passes and simulators, and the
    process leaves nothing behind on exit.  Entries are stored as the
    same plain measurement dicts the disk cache keeps, so serial and
    parallel profiling stay byte-identical through either backend.
    """

    def __init__(self) -> None:
        # Deliberately skip ProfileCache.__init__ — no directories.
        self._entries: Dict[tuple, List[Dict[str, Any]]] = {}
        self._last_run: Optional[Dict[str, Any]] = None
        self.hits = 0
        self.misses = 0

    def lookup(self, config_fingerprint: str,
               region_fingerprint: str) -> Optional[List[Dict[str, Any]]]:
        entries = self._entries.get((config_fingerprint, region_fingerprint))
        if entries is None:
            self.misses += 1
            return None
        self.hits += 1
        return [dict(e) for e in entries]

    def store(self, config_fingerprint: str, region_fingerprint: str,
              entries: List[Dict[str, Any]],
              meta: Optional[Dict[str, Any]] = None) -> None:
        self._entries[(config_fingerprint, region_fingerprint)] = [
            dict(e) for e in entries]

    def invalidate(self, config_fingerprint: Optional[str] = None) -> int:
        if config_fingerprint is None:
            removed = len(self._entries)
            self._entries.clear()
            return removed
        stale = [k for k in self._entries if k[0] == config_fingerprint]
        for k in stale:
            del self._entries[k]
        return len(stale)

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def record_run(self, config_fingerprint: str) -> None:
        payload = dict(self.stats())
        payload["config_fingerprint"] = config_fingerprint
        self._last_run = payload

    def last_run(self) -> Optional[Dict[str, Any]]:
        return self._last_run
