"""The serializable compile-once artifact.

An :class:`ExecutionPlan` captures everything the runtime needs to
execute a compiled model — the transformed graph with device
placements, the solver's decisions, the mechanism and configuration
fingerprints, and provenance metadata — as a single JSON document.
Plans can be saved, loaded, diffed, and executed repeatedly without
touching the search phase; :class:`~repro.runtime.executor.PlanExecutor`
is the matching hot-path loader.

This module deliberately imports nothing from :mod:`repro.search`:
decisions are stored as plain dicts and only materialized into
:class:`~repro.search.solver.Decision` objects on demand, so loading
and running a plan never pulls the profiler or solver into the process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.graph.graph import Graph
from repro.graph.serialize import graph_from_dict, graph_to_dict

#: Schema version of the on-disk plan format.
PLAN_VERSION = 1


class PlanFormatError(ValueError):
    """Raised when a plan document cannot be interpreted."""


@dataclass
class ExecutionPlan:
    """An ahead-of-time compiled, runnable model artifact."""

    mechanism: str
    config_fingerprint: str
    graph: Graph
    #: Serialized solver decisions (see ``Decision.to_dict``); kept as
    #: dicts so the runtime never imports the search subsystem.
    decisions: List[Dict[str, Any]]
    predicted_time_us: float
    #: Everything needed to rebuild the execution engine: mechanism,
    #: concrete device configs, and command-optimization flags.
    runtime_spec: Dict[str, Any]
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: Optional per-layer PIM command traces (``trace_to_dict`` form),
    #: attached by the compiler for offline inspection/replay.
    traces: Dict[str, Any] = field(default_factory=dict)
    #: Buffer-plan statistics of the transformed graph (arena bytes,
    #: elided copies, ...; see ``BufferPlan.stats``), recorded at
    #: compile time so serving tools can report the memory layout
    #: without re-running the planner.  Empty for pre-planner plans.
    buffer_plan: Dict[str, Any] = field(default_factory=dict)
    version: int = PLAN_VERSION

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def decision_objects(self) -> List[Any]:
        """The solver decisions as :class:`repro.search.solver.Decision`.

        Imported lazily: plan execution never needs this, only tooling
        that re-enters the compile phase does.
        """
        from repro.search.solver import Decision

        return [Decision.from_dict(d) for d in self.decisions]

    @property
    def pass_log(self) -> List[Dict[str, Any]]:
        """The compiler's per-pass instrumentation log (wall time and
        node/tensor/elided-count deltas per executed pass), recorded
        into provenance by ``Compiler.build_plan``.  Empty for plans
        compiled before the pass manager existed."""
        return list(self.provenance.get("passes", []))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, include_weights: bool = True) -> Dict[str, Any]:
        return {
            "version": self.version,
            "mechanism": self.mechanism,
            "config_fingerprint": self.config_fingerprint,
            "predicted_time_us": self.predicted_time_us,
            "graph": graph_to_dict(self.graph, include_weights=include_weights),
            "decisions": list(self.decisions),
            "runtime_spec": dict(self.runtime_spec),
            "provenance": dict(self.provenance),
            "traces": dict(self.traces),
            "buffer_plan": dict(self.buffer_plan),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionPlan":
        version = data.get("version")
        if version != PLAN_VERSION:
            raise PlanFormatError(
                f"unsupported plan version {version!r} (expected {PLAN_VERSION})")
        try:
            return cls(
                mechanism=data["mechanism"],
                config_fingerprint=data["config_fingerprint"],
                graph=graph_from_dict(data["graph"]),
                decisions=list(data["decisions"]),
                predicted_time_us=data["predicted_time_us"],
                runtime_spec=dict(data["runtime_spec"]),
                provenance=dict(data.get("provenance", {})),
                traces=dict(data.get("traces", {})),
                buffer_plan=dict(data.get("buffer_plan", {})),
                version=version,
            )
        except KeyError as exc:
            raise PlanFormatError(f"plan document missing field {exc}") from exc

    def save(self, path: Union[str, Path], include_weights: bool = True) -> None:
        """Write the plan as JSON.

        ``include_weights=False`` drops initializer values (they reload
        as zeros of the right shape) — the schedule and makespan are
        weight-value-independent, so lean plans reproduce timing exactly
        while staying small even for ResNet-scale models.
        """
        Path(path).write_text(json.dumps(self.to_dict(include_weights)))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExecutionPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def diff(self, other: "ExecutionPlan") -> List[str]:
        """Human-readable differences between two plans (empty = same)."""
        lines: List[str] = []
        if self.mechanism != other.mechanism:
            lines.append(f"mechanism: {self.mechanism} != {other.mechanism}")
        if self.config_fingerprint != other.config_fingerprint:
            lines.append(
                f"config fingerprint: {self.config_fingerprint[:12]} != "
                f"{other.config_fingerprint[:12]}")
        if abs(self.predicted_time_us - other.predicted_time_us) > 1e-9:
            lines.append(
                f"predicted time: {self.predicted_time_us:.3f} us != "
                f"{other.predicted_time_us:.3f} us")
        if len(self.decisions) != len(other.decisions):
            lines.append(f"decision count: {len(self.decisions)} != "
                         f"{len(other.decisions)}")
        else:
            for i, (a, b) in enumerate(zip(self.decisions, other.decisions)):
                if a != b:
                    lines.append(
                        f"decision {i} ({'+'.join(a.get('nodes', ()))}):"
                        f" {a.get('mode')}@{a.get('ratio_gpu')} != "
                        f"{b.get('mode')}@{b.get('ratio_gpu')}")
        placements_a = {n.name: n.device for n in self.graph.nodes}
        placements_b = {n.name: n.device for n in other.graph.nodes}
        if set(placements_a) != set(placements_b):
            lines.append(f"graph nodes: {len(placements_a)} != "
                         f"{len(placements_b)}")
        else:
            moved = [n for n, d in placements_a.items()
                     if placements_b[n] != d]
            if moved:
                lines.append(f"placement differs for {len(moved)} nodes: "
                             + ", ".join(sorted(moved)[:5]))
        return lines

    def summary(self) -> Dict[str, Any]:
        """Compact description for logs and CLI output."""
        modes: Dict[str, int] = {}
        for d in self.decisions:
            modes[d.get("mode", "?")] = modes.get(d.get("mode", "?"), 0) + 1
        return {
            "mechanism": self.mechanism,
            "model": self.provenance.get("model"),
            "nodes": len(self.graph),
            "decisions": len(self.decisions),
            "modes": modes,
            "predicted_time_us": self.predicted_time_us,
            "traces": len(self.traces),
            "passes": len(self.pass_log),
            "config_fingerprint": self.config_fingerprint[:12],
        }
