"""Compile-once artifacts: execution plans and the profile cache.

This package is the seam between the compile-time and run-time halves
of the toolchain.  :class:`ExecutionPlan` is the serializable artifact
a :class:`~repro.pimflow.Compiler` produces and a
:class:`~repro.runtime.executor.PlanExecutor` consumes;
:class:`ProfileCache` memoizes Algorithm-1 measurements on disk keyed
by the structural/configuration fingerprints of
:mod:`repro.plan.fingerprint`.  Nothing here imports the search
subsystem, so the runtime hot path stays search-free.
"""

from repro.plan.artifact import PLAN_VERSION, ExecutionPlan, PlanFormatError
from repro.plan.cache import MemoryProfileCache, ProfileCache
from repro.plan.fingerprint import (
    canonical_region,
    config_fingerprint,
    graph_fingerprint,
    region_fingerprint,
    stable_hash,
)

__all__ = [
    "PLAN_VERSION",
    "ExecutionPlan",
    "MemoryProfileCache",
    "PlanFormatError",
    "ProfileCache",
    "canonical_region",
    "config_fingerprint",
    "graph_fingerprint",
    "region_fingerprint",
    "stable_hash",
]
