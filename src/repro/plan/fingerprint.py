"""Stable content fingerprints for profiles, configs and plan artifacts.

The profile cache and the :class:`~repro.plan.artifact.ExecutionPlan`
provenance both need keys that (a) survive process restarts, (b) change
whenever anything that influences a measurement changes, and (c) do not
change when irrelevant details — node names, weight values, insertion
order — change.  The timing simulators are value-independent (they read
shapes, dtypes and attributes, never tensor contents), so structural
fingerprints over canonically renamed regions are exact cache keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.graph.graph import Graph


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of payload leaves to JSON-stable values."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


def stable_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``.

    Dict keys are sorted, dataclasses are flattened with
    :func:`dataclasses.asdict`, and numpy scalars/arrays become plain
    Python values, so equal payloads hash equally across processes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_jsonable)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        out[key] = value
    return out


def canonical_region(region: Graph) -> Dict[str, Any]:
    """Structural description of a region with position-based names.

    Graph inputs become ``in<i>``, initializers ``w<j>`` (in first-use
    order), and node outputs ``t<k>`` (in topological order), so two
    regions that differ only in tensor/node naming — e.g. two identical
    layers of the same model — canonicalize identically.  Shapes,
    dtypes, op types, attributes, device placements and weight-ness all
    participate; weight *values* deliberately do not (the timing models
    never read them).
    """
    rename: Dict[str, str] = {}
    for i, t in enumerate(region.inputs):
        rename[t] = f"in{i}"
    weight_idx = 0
    tensor_idx = 0
    nodes = []
    for node in region.toposort():
        inputs = []
        for t in node.inputs:
            if t not in rename:
                if t not in region.initializers:
                    raise KeyError(
                        f"region tensor {t!r} is neither an input, an "
                        f"initializer, nor produced by an earlier node")
                rename[t] = f"w{weight_idx}"
                weight_idx += 1
            inputs.append(rename[t])
        outputs = []
        for t in node.outputs:
            rename[t] = f"t{tensor_idx}"
            tensor_idx += 1
            outputs.append(rename[t])
        nodes.append({
            "op": node.op_type,
            "inputs": inputs,
            "outputs": outputs,
            "attrs": _canonical_attrs(node.attrs),
            "device": node.device,
        })
    tensors = sorted(
        (
            {
                "name": rename[t.name],
                "shape": list(t.shape),
                "dtype": t.dtype,
                "weight": t.name in region.initializers,
            }
            for t in region.tensors.values()
            if t.name in rename
        ),
        key=lambda d: d["name"],
    )
    outputs = sorted(rename[t] for t in region.outputs if t in rename)
    return {"nodes": nodes, "tensors": tensors, "outputs": outputs}


def region_fingerprint(region: Graph, kind: str, **params: Any) -> str:
    """Content-addressed key for one profiled region.

    ``kind`` names the profiling pass (``"gpu"``, ``"split"``,
    ``"pipeline"``) and ``params`` its knobs (ratio list, stage count),
    so the same subgraph profiled under different passes or settings
    occupies distinct cache slots.
    """
    return stable_hash({"kind": kind, "region": canonical_region(region),
                        "params": params})


def graph_fingerprint(graph: Graph) -> str:
    """Structural fingerprint of a whole model graph (for provenance)."""
    return stable_hash(canonical_region(graph))


def config_fingerprint(*, mechanism: str, spec: Any, gpu_config: Any,
                       pim_config: Optional[Any], pim_opts: Optional[Any],
                       extra: Optional[Dict[str, Any]] = None) -> str:
    """Fingerprint of everything measurement-relevant in a toolchain
    configuration: the mechanism spec (allowed ratios, pipelining), the
    concrete device configs after the channel split, the PIM command
    optimization flags, and any extra knobs the caller passes (stage
    options, sync overhead, ...).  Measurements cached under one
    fingerprint are never served to a differently configured toolchain.
    """
    return stable_hash({
        "mechanism": mechanism,
        "spec": spec,
        "gpu_config": gpu_config,
        "pim_config": pim_config,
        "pim_opts": pim_opts,
        "extra": extra or {},
    })
