"""EfficientNet V1 (Tan & Le, 2019), B0 through B6.

The scaled variants feed the paper's model-size sensitivity study
(Fig. 16): as width/depth/resolution grow, 1x1 convolutions gain
arithmetic intensity and the PIM advantage shrinks.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import (
    conv_bn_act,
    inverted_residual,
    make_divisible,
    round_repeats,
)

#: (expand_ratio, kernel, channels, repeats, first_stride) per stage (B0).
EFFICIENTNET_STAGES = [
    (1, 3, 16, 1, 1),
    (6, 3, 24, 2, 2),
    (6, 5, 40, 2, 2),
    (6, 3, 80, 3, 2),
    (6, 5, 112, 3, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
]

#: (width_multiplier, depth_multiplier, resolution) per variant.
EFFICIENTNET_PARAMS = {
    "b0": (1.0, 1.0, 224),
    "b1": (1.0, 1.1, 240),
    "b2": (1.1, 1.2, 260),
    "b3": (1.2, 1.4, 300),
    "b4": (1.4, 1.8, 380),
    "b5": (1.6, 2.2, 456),
    "b6": (1.8, 2.6, 528),
}


def build_efficientnet(variant: str = "b0", num_classes: int = 1000,
                       use_se: bool = True) -> Graph:
    """EfficientNet with compound width/depth/resolution scaling."""
    if variant not in EFFICIENTNET_PARAMS:
        raise ValueError(f"unknown EfficientNet variant {variant!r}; "
                         f"choose from {sorted(EFFICIENTNET_PARAMS)}")
    width, depth, resolution = EFFICIENTNET_PARAMS[variant]
    b = GraphBuilder(f"efficientnet-v1-{variant}", seed=7)
    x = b.input("input", (1, resolution, resolution, 3))
    stem = make_divisible(32 * width)
    x = conv_bn_act(b, x, cout=stem, kernel=3, stride=2, act="swish", name="stem")
    block = 0
    for expand, kernel, channels, repeats, first_stride in EFFICIENTNET_STAGES:
        cout = make_divisible(channels * width)
        for i in range(round_repeats(repeats, depth)):
            stride = first_stride if i == 0 else 1
            x = inverted_residual(b, x, cout=cout, stride=stride, expand=expand,
                                  kernel=kernel, act="swish",
                                  se_ratio=0.25 if use_se else 0.0,
                                  block_name=f"b{block}")
            block += 1
    head = make_divisible(1280 * width)
    x = conv_bn_act(b, x, cout=head, kernel=1, act="swish", name="head")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
