"""Model registry with the artifact's CLI names."""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from repro.graph.graph import Graph
from repro.models.bert import build_bert
from repro.models.efficientnet import build_efficientnet
from repro.models.mnasnet import build_mnasnet
from repro.models.mobilenet import build_mobilenet_v2
from repro.models.resnet import build_resnet18, build_resnet34, build_resnet50
from repro.models.shufflenet import build_shufflenet_v2
from repro.models.toy import build_toy
from repro.models.vgg import build_vgg16

MODEL_BUILDERS: Dict[str, Callable[[], Graph]] = {
    # The five evaluated CNN models, named as in the artifact appendix.
    "efficientnet-v1-b0": lambda: build_efficientnet("b0"),
    "mobilenet-v2": build_mobilenet_v2,
    "mnasnet-1.0": build_mnasnet,
    "resnet-50": build_resnet50,
    "vgg-16": build_vgg16,
    # Model-size sensitivity (Fig. 16).
    "efficientnet-v1-b1": lambda: build_efficientnet("b1"),
    "efficientnet-v1-b2": lambda: build_efficientnet("b2"),
    "efficientnet-v1-b3": lambda: build_efficientnet("b3"),
    "efficientnet-v1-b4": lambda: build_efficientnet("b4"),
    "efficientnet-v1-b5": lambda: build_efficientnet("b5"),
    "efficientnet-v1-b6": lambda: build_efficientnet("b6"),
    # Model-type sensitivity (Fig. 16): BERT with short and long inputs.
    "bert-seq3": lambda: build_bert(seq_len=3),
    "bert-seq64": lambda: build_bert(seq_len=64),
    # Extension models beyond the paper's evaluated set.
    "resnet-18": build_resnet18,
    "resnet-34": build_resnet34,
    "shufflenet-v2": build_shufflenet_v2,
    # Artifact walkthrough network.
    "toy": build_toy,
}


def list_models() -> List[str]:
    """Registered model names."""
    return sorted(MODEL_BUILDERS)


def normalize_model_name(name: str) -> str:
    """Canonical registry spelling: lowercase, hyphen-separated."""
    return name.strip().lower().replace("_", "-")


def build_model(name: str) -> Graph:
    """Build a registered model by its artifact name.

    Names are normalized before lookup, so ``mobilenet_v2`` and
    ``MobileNet-V2`` both resolve to ``mobilenet-v2``.
    """
    try:
        builder = MODEL_BUILDERS[normalize_model_name(name)]
    except KeyError:
        close = difflib.get_close_matches(normalize_model_name(name),
                                          list_models(), n=3, cutoff=0.5)
        hint = f" (did you mean: {', '.join(close)}?)" if close else ""
        raise KeyError(
            f"unknown model {name!r}{hint}; "
            f"available: {', '.join(list_models())}"
        ) from None
    return builder()
