"""The Toy network used by the artifact's installation walkthrough."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import conv_bn_act, inverted_residual


def build_toy(resolution: int = 56, num_classes: int = 10) -> Graph:
    """A small net exercising every PIMFlow feature.

    One regular conv, two inverted-residual blocks (pipelining
    candidates), and an FC head — enough to drive profile/solve/run
    end-to-end in seconds.
    """
    b = GraphBuilder("toy", seed=3)
    x = b.input("input", (1, resolution, resolution, 3))
    x = conv_bn_act(b, x, cout=32, kernel=3, stride=2, act="relu6", name="stem")
    x = inverted_residual(b, x, cout=32, stride=1, expand=4, kernel=3,
                          act="relu6", block_name="b0")
    x = inverted_residual(b, x, cout=64, stride=2, expand=4, kernel=3,
                          act="relu6", block_name="b1")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
