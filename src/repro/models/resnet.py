"""ResNet50 (He et al., 2016)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import conv_bn_act


def _bottleneck(b: GraphBuilder, x: str, planes: int, stride: int,
                name: str) -> str:
    """1x1 reduce -> 3x3 -> 1x1 expand bottleneck with projection shortcut.

    The two 1x1 convolutions per block are the dimensionality-reduction
    layers the paper's introduction points to as PIM-amenable in
    ResNet50.
    """
    cin = b.graph.tensors[x].shape[3]
    cout = planes * 4
    y = conv_bn_act(b, x, cout=planes, kernel=1, act="relu", name=f"{name}_reduce")
    y = conv_bn_act(b, y, cout=planes, kernel=3, stride=stride, act="relu",
                    name=f"{name}_conv3x3")
    y = conv_bn_act(b, y, cout=cout, kernel=1, act=None, name=f"{name}_expand")
    if stride != 1 or cin != cout:
        shortcut = conv_bn_act(b, x, cout=cout, kernel=1, stride=stride,
                               act=None, name=f"{name}_downsample")
    else:
        shortcut = x
    y = b.add(shortcut, y)
    return b.relu(y)


def _basic_block(b: GraphBuilder, x: str, planes: int, stride: int,
                 name: str) -> str:
    """Two 3x3 convolutions with identity/projection shortcut
    (ResNet18/34 block)."""
    cin = b.graph.tensors[x].shape[3]
    y = conv_bn_act(b, x, cout=planes, kernel=3, stride=stride, act="relu",
                    name=f"{name}_conv1")
    y = conv_bn_act(b, y, cout=planes, kernel=3, act=None, name=f"{name}_conv2")
    if stride != 1 or cin != planes:
        shortcut = conv_bn_act(b, x, cout=planes, kernel=1, stride=stride,
                               act=None, name=f"{name}_downsample")
    else:
        shortcut = x
    y = b.add(shortcut, y)
    return b.relu(y)


def _build_basic_resnet(name: str, depths, resolution: int,
                        num_classes: int) -> Graph:
    b = GraphBuilder(name, seed=18)
    x = b.input("input", (1, resolution, resolution, 3))
    x = conv_bn_act(b, x, cout=64, kernel=7, stride=2, act="relu", name="stem")
    x = b.maxpool(x, kernel=3, stride=2, pad=1)
    stages = [(64, depths[0], 1), (128, depths[1], 2), (256, depths[2], 2),
              (512, depths[3], 2)]
    for stage_idx, (planes, blocks, stride) in enumerate(stages):
        for block_idx in range(blocks):
            s = stride if block_idx == 0 else 1
            x = _basic_block(b, x, planes, s,
                             name=f"s{stage_idx + 1}b{block_idx}")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()


def build_resnet18(resolution: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet18: basic blocks (2, 2, 2, 2)."""
    return _build_basic_resnet("resnet-18", (2, 2, 2, 2), resolution,
                               num_classes)


def build_resnet34(resolution: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet34: basic blocks (3, 4, 6, 3)."""
    return _build_basic_resnet("resnet-34", (3, 4, 6, 3), resolution,
                               num_classes)


def build_resnet50(resolution: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet50: 7x7 stem, four bottleneck stages (3, 4, 6, 3), FC head."""
    b = GraphBuilder("resnet-50", seed=50)
    x = b.input("input", (1, resolution, resolution, 3))
    x = conv_bn_act(b, x, cout=64, kernel=7, stride=2, act="relu", name="stem")
    x = b.maxpool(x, kernel=3, stride=2, pad=1)
    stages = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)]
    for stage_idx, (planes, blocks, stride) in enumerate(stages):
        for block_idx in range(blocks):
            s = stride if block_idx == 0 else 1
            x = _bottleneck(b, x, planes, s, name=f"s{stage_idx + 1}b{block_idx}")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()
