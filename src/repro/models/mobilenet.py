"""MobileNetV2 (Sandler et al., 2018)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import conv_bn_act, inverted_residual, make_divisible

#: (expand_ratio, channels, repeats, first_stride) per stage.
MOBILENET_V2_STAGES = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v2(resolution: int = 224, width_mult: float = 1.0,
                       num_classes: int = 1000, batch: int = 1) -> Graph:
    """MobileNetV2: inverted residuals with ReLU6, 1x1-heavy by design.

    Every block is a 1x1-DW-1x1 sandwich — the exact subgraph pattern
    PIMFlow's pipelining pass targets.
    """
    b = GraphBuilder("mobilenet-v2", seed=2)
    x = b.input("input", (batch, resolution, resolution, 3))
    stem = make_divisible(32 * width_mult)
    x = conv_bn_act(b, x, cout=stem, kernel=3, stride=2, act="relu6", name="stem")
    block = 0
    for expand, channels, repeats, first_stride in MOBILENET_V2_STAGES:
        cout = make_divisible(channels * width_mult)
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            x = inverted_residual(b, x, cout=cout, stride=stride, expand=expand,
                                  kernel=3, act="relu6", block_name=f"b{block}")
            block += 1
    head = make_divisible(1280 * max(1.0, width_mult))
    x = conv_bn_act(b, x, cout=head, kernel=1, act="relu6", name="head")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
