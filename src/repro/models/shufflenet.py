"""ShuffleNetV2 x1.0 (Ma et al., 2018).

An extension model beyond the paper's evaluated five: its units mix
channel-split Slices, 1x1/depthwise convolutions, channel-axis Concats,
and channel shuffles (Reshape/Transpose/Reshape) — exercising the IR's
data-movement ops and giving the pattern matcher a architecture where
1x1-DW chains hide behind branchy dataflow.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import conv_bn_act, dw_bn_act

#: (out_channels, repeats) per stage for the x1.0 width.
SHUFFLENET_V2_STAGES = [(116, 4), (232, 8), (464, 4)]


def _channel_shuffle(b: GraphBuilder, x: str, groups: int = 2) -> str:
    """Interleave channel groups: reshape -> transpose -> reshape."""
    n, h, w, c = b.graph.tensors[x].shape
    y = b.reshape(x, (n, h, w, groups, c // groups))
    y = b.transpose(y, (0, 1, 2, 4, 3))
    return b.reshape(y, (n, h, w, c))


def _unit_stride1(b: GraphBuilder, x: str, name: str) -> str:
    """Basic unit: split channels, transform one half, concat, shuffle."""
    c = b.graph.tensors[x].shape[3]
    half = c // 2
    left = b.slice(x, axis=3, start=0, end=half, name=f"{name}_split_l")
    right = b.slice(x, axis=3, start=half, end=c, name=f"{name}_split_r")
    y = conv_bn_act(b, right, cout=half, kernel=1, act="relu",
                    name=f"{name}_pw1")
    y = dw_bn_act(b, y, kernel=3, stride=1, act=None, name=f"{name}_dw")
    y = conv_bn_act(b, y, cout=half, kernel=1, act="relu",
                    name=f"{name}_pw2")
    out = b.concat([left, y], axis=3, name=f"{name}_concat")
    return _channel_shuffle(b, out)


def _unit_stride2(b: GraphBuilder, x: str, cout: int, name: str) -> str:
    """Downsampling unit: both branches transform, spatial stride 2."""
    half = cout // 2
    left = dw_bn_act(b, x, kernel=3, stride=2, act=None, name=f"{name}_l_dw")
    left = conv_bn_act(b, left, cout=half, kernel=1, act="relu",
                       name=f"{name}_l_pw")
    right = conv_bn_act(b, x, cout=half, kernel=1, act="relu",
                        name=f"{name}_r_pw1")
    right = dw_bn_act(b, right, kernel=3, stride=2, act=None,
                      name=f"{name}_r_dw")
    right = conv_bn_act(b, right, cout=half, kernel=1, act="relu",
                        name=f"{name}_r_pw2")
    out = b.concat([left, right], axis=3, name=f"{name}_concat")
    return _channel_shuffle(b, out)


def build_shufflenet_v2(resolution: int = 224, num_classes: int = 1000) -> Graph:
    """ShuffleNetV2 x1.0: stem, three shuffled stages, 1x1 head, FC."""
    b = GraphBuilder("shufflenet-v2", seed=22)
    x = b.input("input", (1, resolution, resolution, 3))
    x = conv_bn_act(b, x, cout=24, kernel=3, stride=2, act="relu", name="stem")
    x = b.maxpool(x, kernel=3, stride=2, pad=1)
    for stage_idx, (cout, repeats) in enumerate(SHUFFLENET_V2_STAGES):
        x = _unit_stride2(b, x, cout, name=f"s{stage_idx}u0")
        for unit in range(1, repeats):
            x = _unit_stride1(b, x, name=f"s{stage_idx}u{unit}")
    x = conv_bn_act(b, x, cout=1024, kernel=1, act="relu", name="head")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
