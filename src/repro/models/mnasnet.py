"""MnasNet-1.0 (Tan et al., 2019), following the torchvision layout."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import conv_bn_act, dw_bn_act, inverted_residual, make_divisible

#: (expand_ratio, kernel, channels, repeats, first_stride) per stage.
MNASNET_STAGES = [
    (3, 3, 24, 3, 2),
    (3, 5, 40, 3, 2),
    (6, 5, 80, 3, 2),
    (6, 3, 96, 2, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
]


def build_mnasnet(resolution: int = 224, width_mult: float = 1.0,
                  num_classes: int = 1000) -> Graph:
    """MnasNet-1.0: NAS-found inverted residuals with 3x3/5x5 depthwise."""
    b = GraphBuilder("mnasnet-1.0", seed=10)
    x = b.input("input", (1, resolution, resolution, 3))
    stem = make_divisible(32 * width_mult)
    x = conv_bn_act(b, x, cout=stem, kernel=3, stride=2, act="relu", name="stem")
    # Separable first block: depthwise 3x3 + pointwise to 16 channels.
    x = dw_bn_act(b, x, kernel=3, stride=1, act="relu", name="sep_dw")
    x = conv_bn_act(b, x, cout=make_divisible(16 * width_mult), kernel=1,
                    act=None, name="sep_pw")
    block = 0
    for expand, kernel, channels, repeats, first_stride in MNASNET_STAGES:
        cout = make_divisible(channels * width_mult)
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            x = inverted_residual(b, x, cout=cout, stride=stride, expand=expand,
                                  kernel=kernel, act="relu6",
                                  block_name=f"b{block}")
            block += 1
    x = conv_bn_act(b, x, cout=1280, kernel=1, act="relu", name="head")
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
