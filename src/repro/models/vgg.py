"""VGG16 (Simonyan & Zisserman, 2014)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

#: Channels per conv block; "M" denotes a 2x2 max pool.
VGG16_LAYOUT = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
                512, 512, 512, "M", 512, 512, 512, "M"]


def build_vgg16(resolution: int = 224, num_classes: int = 1000) -> Graph:
    """VGG16: 13 3x3 convolutions + 3 FC layers.

    The FC layers (25088x4096, 4096x4096, 4096x1000) are the
    memory-bound GEMVs that give VGG16 its end-to-end PIM speedup in
    the paper despite its compute-heavy convolutions.
    """
    b = GraphBuilder("vgg-16", seed=16)
    x = b.input("input", (1, resolution, resolution, 3))
    conv_idx = 0
    for item in VGG16_LAYOUT:
        if item == "M":
            x = b.maxpool(x, kernel=2, stride=2)
        else:
            conv_idx += 1
            x = b.conv(x, cout=item, kernel=3, name=f"conv{conv_idx}")
            x = b.relu(x)
    x = b.flatten(x)
    x = b.gemm(x, 4096, name="fc1")
    x = b.relu(x)
    x = b.gemm(x, 4096, name="fc2")
    x = b.relu(x)
    x = b.gemm(x, num_classes, name="fc3")
    b.output(x)
    return b.build()
