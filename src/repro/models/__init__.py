"""Model zoo: shape-faithful graphs of the paper's evaluated networks.

Definitions follow the torchvision architectures the paper evaluates
(EfficientNetB0, MnasNet-1.0, MobileNetV2, ResNet50, VGG16), a
BERT-style FC encoder for the model-type sensitivity study, scaled
EfficientNet variants (B1-B6) for the model-size study, and the Toy
network the artifact uses for its walkthrough.  Weights are random and
deterministic — the reproduction only needs layer shapes and dataflow.
"""

from repro.models.registry import (
    MODEL_BUILDERS,
    build_model,
    list_models,
    normalize_model_name,
)

__all__ = ["MODEL_BUILDERS", "build_model", "list_models",
           "normalize_model_name"]
