"""Shared building blocks for the model zoo."""

from __future__ import annotations

import math
from typing import Optional

from repro.graph.builder import GraphBuilder


def conv_bn_act(b: GraphBuilder, x: str, cout: int, kernel: int = 3,
                stride: int = 1, group: int = 1, act: Optional[str] = "relu",
                name: Optional[str] = None) -> str:
    """Conv (no bias) + BatchNorm + optional activation."""
    y = b.conv(x, cout=cout, kernel=kernel, stride=stride, group=group,
               bias=False, name=name)
    y = b.batchnorm(y)
    if act == "relu":
        y = b.relu(y)
    elif act == "relu6":
        y = b.relu6(y)
    elif act == "swish":
        y = b.swish(y)
    elif act is not None:
        raise ValueError(f"unknown activation {act!r}")
    return y


def dw_bn_act(b: GraphBuilder, x: str, kernel: int = 3, stride: int = 1,
              act: Optional[str] = "relu6", name: Optional[str] = None) -> str:
    """Depthwise conv + BatchNorm + optional activation."""
    cin = b.graph.tensors[x].shape[3]
    return conv_bn_act(b, x, cout=cin, kernel=kernel, stride=stride,
                       group=cin, act=act, name=name)


def squeeze_excite(b: GraphBuilder, x: str, reduced: int) -> str:
    """Squeeze-and-excitation block (EfficientNet/MnasNet style)."""
    c = b.graph.tensors[x].shape[3]
    s = b.global_avgpool(x)
    s = b.conv(s, cout=max(1, reduced), kernel=1)
    s = b.swish(s)
    s = b.conv(s, cout=c, kernel=1)
    s = b.sigmoid(s)
    return b.mul(x, s)


def inverted_residual(b: GraphBuilder, x: str, cout: int, stride: int,
                      expand: int, kernel: int = 3, act: str = "relu6",
                      se_ratio: float = 0.0, block_name: str = "") -> str:
    """MobileNetV2/MnasNet/EfficientNet inverted-residual block.

    1x1 expand -> k x k depthwise -> (SE) -> 1x1 project, with a
    residual Add when the block preserves shape.  The 1x1 convolutions
    are the paper's prime PIM targets; the depthwise sits between them
    as the GPU-side pipeline partner.
    """
    cin = b.graph.tensors[x].shape[3]
    hidden = cin * expand
    y = x
    if expand != 1:
        y = conv_bn_act(b, y, cout=hidden, kernel=1, act=act,
                        name=f"{block_name}_expand" if block_name else None)
    y = dw_bn_act(b, y, kernel=kernel, stride=stride, act=act,
                  name=f"{block_name}_dw" if block_name else None)
    if se_ratio > 0:
        y = squeeze_excite(b, y, reduced=max(1, int(cin * se_ratio)))
    y = conv_bn_act(b, y, cout=cout, kernel=1, act=None,
                    name=f"{block_name}_project" if block_name else None)
    if stride == 1 and cin == cout:
        y = b.add(x, y)
    return y


def make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts the way MobileNet-family models do."""
    new_value = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:
        new_value += divisor
    return new_value


def round_repeats(repeats: int, depth_multiplier: float) -> int:
    """EfficientNet depth scaling."""
    return int(math.ceil(depth_multiplier * repeats))
