"""BERT-style transformer encoder (linear layers only).

Used for the model-type sensitivity study (paper Section 6.2): the
paper compares PIMFlow on BERT with 1x3 and 1x64 inputs, where MD-DP
splitting of the FC layers buys an extra 32% for the longer input.

We model the FC-dominant computation: per encoder layer the Q/K/V
projections, attention output projection, and the two feed-forward
layers, on a collapsed (seq_len, hidden) activation.  Attention-score
matmuls (activation x activation) are omitted: they carry no constant
operand to pre-place in the PIM cell arrays and stay on the GPU in the
paper's flow as well; at the evaluated sequence lengths (3-64) their
cost is negligible next to the 768x768 and 768x3072 projections.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def build_bert(seq_len: int = 64, hidden: int = 768, layers: int = 12,
               intermediate: int = 3072, num_classes: int = 2) -> Graph:
    """BERT-base-shaped stack of linear encoder layers."""
    b = GraphBuilder(f"bert-{seq_len}", seed=768)
    x = b.input("input", (seq_len, hidden))
    for layer in range(layers):
        q = b.gemm(x, hidden, name=f"l{layer}_q")
        k = b.gemm(x, hidden, name=f"l{layer}_k")
        v = b.gemm(x, hidden, name=f"l{layer}_v")
        # Attention mixing stand-in: combine the three projections with
        # elementwise ops so the dataflow (three parallel branches
        # joining) matches the real graph's structure.
        attn = b.add(b.add(q, k), v)
        attn = b.gemm(attn, hidden, name=f"l{layer}_attn_out")
        x = b.add(x, attn)
        ff = b.gemm(x, intermediate, name=f"l{layer}_ff1")
        ff = b.gelu(ff)
        ff = b.gemm(ff, hidden, name=f"l{layer}_ff2")
        x = b.add(x, ff)
    x = b.gemm(x, num_classes, name="classifier")
    b.output(x)
    return b.build()
