"""The ``pimflow`` command-line driver, mirroring the artifact (Appendix A.5).

Workflow::

    pimflow -m=profile -t=split -n=<net>     # Step 1a: MD-DP profiling
    pimflow -m=profile -t=pipeline -n=<net>  # Step 1b: pipeline profiling
    pimflow -m=solve -n=<net>                # Step 2: optimal graph (DP)
    pimflow -m=run --gpu_only -n=<net>       # Step 3: GPU baseline
    pimflow -m=run -n=<net>                  # Step 3: PIMFlow execution
    pimflow -m=stat -n=<net>                 # Table-2-style statistics

Compile-once/run-many::

    pimflow -m=compile -n=<net> --cache-dir=<dir>   # plan artifact
    pimflow -m=run --plan=<plan.json>               # execute the plan

``<net>`` is one of the registry names (``pimflow -m=list`` prints
them).  ``--policy`` selects the offloading mechanism for ``run``:
Newton+, Newton++, MDDP, Pipeline, or PIMFlow (default).

Profiling results and solved graphs persist under ``--workdir``
(default ``./pimflow_out``), so ``solve`` and ``run`` can reuse earlier
steps exactly like the original scripts.  ``--cache-dir`` additionally
enables the content-addressed profile cache: any step that profiles
serves repeated regions from disk instead of the simulators, and
``pimflow -m=stat`` reports the cache's effectiveness.

``--jobs N`` fans profiling cache misses out over N worker processes
(``--jobs 0`` uses every CPU core; the ``REPRO_JOBS`` environment
variable sets the default).  Parallel profiling streams progress to
stderr and produces measurement tables byte-identical to ``--jobs 1``;
every profiling step additionally prints a ``[profile]`` summary line
(candidates, jobs run, cache hits, wall-clock).

Pass-manager observability::

    pimflow -m=passes                          # list the pass registry
    pimflow -m=compile -n=<net> --verify-passes  # inter-pass verifier
    pimflow -m=compile -n=<net> --dump-ir=DIR    # IR after every pass
    pimflow -m=stat -n=<net>                   # per-pass log (+ ratios)
    pimflow -m=stat --plan=<plan.json>         # log recorded in a plan

Every compiling step prints a ``[compile]`` per-pass timing summary;
``--verify-passes`` additionally re-validates shapes, interface and
numeric equivalence after every pass.

Serving (see ``docs/serving.md``)::

    pimflow -m=serve -n=<net>[,<net>...]     # dynamic-batching server
                                             # under synthetic load
    pimflow -m=bench-serve -n=<net>          # batch-1 vs dynamic A/B

``serve`` registers each net (compiled on first request, or loaded
from ``--plan``), starts the worker pool, and drives the synthetic
load generator against it (closed-loop by default; ``--rate`` switches
to open-loop arrivals, which exposes admission control).
``bench-serve`` serves one workload at max-batch 1 and at
``--max-batch`` and reports the dynamic-batching throughput win on the
modelled hardware plus wall-clock tail latencies.  ``--json`` prints
machine-readable output for both, and for ``-m=stat``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.ratios import candidate_layer_names, mddp_ratio_distribution
from repro.graph.serialize import load_graph, save_graph
from repro.models import build_model, list_models, normalize_model_name
from repro.pimflow import PimFlow, PimFlowConfig
from repro.search.table import MeasurementTable

#: Artifact policy names -> mechanism keys.
POLICIES = {
    "Newton": "newton",
    "Newton+": "newton+",
    "Newton++": "newton++",
    "MDDP": "pimflow-md",
    "Pipeline": "pimflow-pl",
    "PIMFlow": "pimflow",
}


def _preprocess_argv(argv: List[str]) -> List[str]:
    """Support the artifact's ``-m=value`` single-dash syntax."""
    out: List[str] = []
    for arg in argv:
        if arg.startswith("-") and not arg.startswith("--") and "=" in arg:
            flag, value = arg.split("=", 1)
            out.extend([flag, value])
        else:
            out.append(arg)
    return out


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU core), got {jobs}")
    return jobs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pimflow",
        description="PIMFlow: compiler and runtime support for CNN models "
                    "on processing-in-memory DRAM (reproduction)")
    parser.add_argument("-m", "--mode", required=True,
                        choices=["profile", "solve", "compile", "run", "stat",
                                 "trace", "report", "list", "passes",
                                 "serve", "bench-serve"],
                        help="workflow step")
    parser.add_argument("--layer", default=None,
                        help="layer name for -m=trace (default: the "
                             "largest PIM-candidate layer)")
    parser.add_argument("-n", "--net", default="toy",
                        help="model name (see -m=list)")
    parser.add_argument("-t", "--type", dest="profile_type", default="split",
                        choices=["split", "pipeline"],
                        help="profiling pass for -m=profile")
    parser.add_argument("--policy", default=None, choices=sorted(POLICIES),
                        help="offloading mechanism for -m=run (default "
                             "PIMFlow; -m=bench-serve defaults to the GPU "
                             "baseline plan instead — PIM offload is a "
                             "batch-1 design point)")
    parser.add_argument("--gpu_only", action="store_true",
                        help="run the GPU-only baseline")
    parser.add_argument("--pim_channels", type=int, default=16,
                        help="PIM-enabled channels out of 32")
    parser.add_argument("--stages", type=int, default=2,
                        help="pipeline stage count")
    parser.add_argument("--ratio_step", type=float, default=0.1,
                        help="MD-DP split-ratio interval")
    parser.add_argument("--workdir", default="pimflow_out",
                        help="directory for profiles and solved graphs")
    parser.add_argument("--plan", default=None,
                        help="for -m=compile: output path of the plan "
                             "artifact (default <workdir>/<net>/plan.json); "
                             "for -m=run: execute this plan instead of "
                             "compiling")
    parser.add_argument("--cache-dir", dest="cache_dir", default=None,
                        help="enable the content-addressed profile cache "
                             "in this directory")
    parser.add_argument("--jobs", type=_jobs_arg, default=None,
                        help="profiling worker processes: 1 = serial "
                             "(default), N = fan cache misses out over N "
                             "workers, 0 = one per CPU core; the REPRO_JOBS "
                             "environment variable sets the default")
    parser.add_argument("--traces", action="store_true",
                        help="for -m=compile: attach explicit PIM command "
                             "traces to the plan")
    parser.add_argument("--with_weights", action="store_true",
                        help="for -m=compile: embed initializer values in "
                             "the plan (timing never needs them; large)")
    parser.add_argument("--verify-passes", dest="verify_passes",
                        action="store_true",
                        help="run the inter-pass verifier after every "
                             "compiler pass: shape re-inference, graph-"
                             "interface preservation, clone discipline, "
                             "and a numeric oracle spot check")
    parser.add_argument("--dump-ir", dest="dump_ir", default=None,
                        metavar="DIR",
                        help="snapshot the graph IR into DIR after every "
                             "compiler pass (<seq>_<pass>.json)")
    parser.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="for -m=run with --plan: execute host "
                             "inference through the buffer-planned compiled "
                             "executor (--no-compiled falls back to the "
                             "interpreted reference executor)")
    parser.add_argument("--host-workers", dest="host_workers",
                        type=_jobs_arg, default=None,
                        help="operator-parallel threads inside each host "
                             "inference: 1 = serial (default), N = dispatch "
                             "up to N ready steps at once, 0 = one per CPU "
                             "core; the REPRO_HOST_WORKERS environment "
                             "variable sets the default")
    parser.add_argument("--gemm-shards", dest="gemm_shards",
                        type=_jobs_arg, default=None,
                        help="intra-operator GEMM row-panel shards per "
                             "conv/matmul step (default: follow "
                             "--host-workers; 1 = off, 0 = one per CPU "
                             "core, N = force up to N panels); the "
                             "REPRO_GEMM_SHARDS environment variable sets "
                             "the default")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output (stat, serve, "
                             "bench-serve)")
    serve = parser.add_argument_group("serving (-m=serve / -m=bench-serve)")
    serve.add_argument("--max-batch", dest="max_batch", type=int, default=8,
                       help="micro-batch size cap (default %(default)s)")
    serve.add_argument("--max-wait-ms", dest="max_wait_ms", type=float,
                       default=None,
                       help="batching linger from the batch head's arrival "
                            "(default: 2 ms for serve, 50 ms for "
                            "bench-serve)")
    serve.add_argument("--serve-workers", dest="serve_workers", type=int,
                       default=2, help="worker threads (default %(default)s)")
    serve.add_argument("--queue-depth", dest="queue_depth", type=int,
                       default=64,
                       help="bounded admission queue depth; requests beyond "
                            "it are shed with a typed Overloaded rejection "
                            "(default %(default)s)")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop client threads (default %(default)s)")
    serve.add_argument("--requests", type=int, default=4,
                       help="requests per closed-loop client "
                            "(default %(default)s)")
    serve.add_argument("--rate", type=float, default=None,
                       help="open-loop arrival rate in requests/s (switches "
                            "the load generator from closed to open loop)")
    serve.add_argument("--duration", type=float, default=2.0,
                       help="open-loop duration in seconds "
                            "(default %(default)s)")
    serve.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                       default=None,
                       help="per-request deadline; requests not started "
                            "within it fail with DeadlineExceeded")
    serve.add_argument("--threads", dest="host_threads", type=_jobs_arg,
                       default=None,
                       help="serving alias for --host-workers: "
                            "operator-parallel threads inside each host "
                            "inference executed by a server worker")
    serve.add_argument("--host-states", dest="host_states", type=int,
                       default=None,
                       help="pooled execution states per compiled program "
                            "(bounds concurrent arenas; default 4)")
    return parser


def _config(args: argparse.Namespace, mechanism: str) -> PimFlowConfig:
    from repro.memsys.system import MemorySystem

    return PimFlowConfig(
        mechanism=mechanism,
        memory=MemorySystem(32, args.pim_channels),
        ratio_step=args.ratio_step,
        pipeline_stages=args.stages,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        verify_passes=args.verify_passes,
        dump_ir_dir=args.dump_ir,
    )


def _flow(args: argparse.Namespace, mechanism: str) -> PimFlow:
    """A PimFlow wired for the CLI: config from flags, and live
    progress telemetry on stderr whenever profiling runs in parallel."""
    from repro.exec.progress import ConsoleReporter

    flow = PimFlow(_config(args, mechanism))
    if flow.compiler.jobs != 1:
        flow.compiler.progress = ConsoleReporter(stream=sys.stderr)
    return flow


def _print_profile_summary(flow: PimFlow) -> None:
    """One per-phase line so long searches aren't silent."""
    s = flow.compiler.last_profile_summary
    if not s:
        return
    print(f"[profile] {s['candidates']} candidates, {s['requests']} "
          f"requests: {s['jobs_run']} jobs on {s['workers']} worker(s), "
          f"{s['cache_hits']} cache hits, {s['failed']} failed, "
          f"{s['wall_s']:.2f}s")
    for failed in s["failed_jobs"]:
        print(f"[profile] failed job {failed['job_id']}: {failed['error']} "
              f"(after {failed['attempts']} attempts)", file=sys.stderr)


def _print_pass_summary(records) -> None:
    """The ``[compile]`` per-phase pass-timing line."""
    if not records:
        return
    total_ms = sum(r.get("wall_ms", 0.0) for r in records)
    verified = sum(1 for r in records if r.get("verified"))
    parts = ", ".join(f"{r['name']} {r.get('wall_ms', 0.0):.1f}ms"
                      for r in records)
    suffix = f", {verified} verified" if verified else ""
    print(f"[compile] {len(records)} passes, {total_ms:.1f}ms{suffix}: "
          f"{parts}")


def _print_pass_table(records) -> None:
    """The ``-m=stat`` per-pass log: time and graph deltas."""
    if not records:
        return
    print("Pass pipeline (time, node/tensor/elided deltas):")
    for r in records:
        flags = " [verified]" if r.get("verified") else ""
        print(f"  {r['name']:<22} {r.get('wall_ms', 0.0):8.2f} ms  "
              f"nodes {r['nodes_before']:>4} -> {r['nodes_after']:<4} "
              f"tensors {r['tensors_before']:>4} -> {r['tensors_after']:<4} "
              f"elided {r['elided_before']:>3} -> {r['elided_after']:<3}"
              f"{flags}")


def _paths(args: argparse.Namespace) -> dict:
    base = Path(args.workdir) / args.net
    return {
        "base": base,
        "split": base / "profile_split.json",
        "pipeline": base / "profile_pipeline.json",
        "graph": base / "solved_graph.json",
        "summary": base / "solve_summary.json",
    }


def cmd_profile(args: argparse.Namespace) -> int:
    paths = _paths(args)
    paths["base"].mkdir(parents=True, exist_ok=True)
    mechanism = "pimflow-md" if args.profile_type == "split" else "pimflow-pl"
    flow = _flow(args, mechanism)
    graph = flow.prepare(build_model(args.net))
    table = flow.profile(graph)
    out = paths[args.profile_type]
    table.save(out)
    print(f"profiled {len(table)} samples ({args.profile_type}) -> {out}")
    _print_profile_summary(flow)
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    paths = _paths(args)
    flow = _flow(args, "pimflow")
    graph = flow.prepare(build_model(args.net))

    table = MeasurementTable()
    found = False
    for kind in ("split", "pipeline"):
        path = paths[kind]
        if path.exists():
            found = True
            table.merge(MeasurementTable.load(path))
    if not found:
        print("no profiles found; running the full profile step first",
              file=sys.stderr)
        table = flow.profile(graph)
        _print_profile_summary(flow)

    t0 = time.perf_counter()
    compiled = flow.compile(graph, table)
    solve_wall = time.perf_counter() - t0
    save_graph(compiled.graph, paths["graph"])
    summary = {
        "predicted_time_us": compiled.predicted_time_us,
        "decisions": [
            {"nodes": list(d.nodes), "mode": d.mode, "time_us": d.time_us,
             "ratio_gpu": d.ratio_gpu, "stages": d.stages}
            for d in compiled.decisions
        ],
    }
    paths["summary"].write_text(json.dumps(summary, indent=2))
    print(f"solved: predicted {compiled.predicted_time_us:.1f} us over "
          f"{len(compiled.decisions)} regions -> {paths['graph']}")
    print(f"[solve] {len(table)} samples -> {len(compiled.decisions)} "
          f"regions, {solve_wall:.2f}s")
    _print_pass_summary(compiled.pass_records)
    return 0


def _print_cache_stats(flow: PimFlow) -> None:
    cache = flow.cache
    if cache is None:
        return
    stats = cache.stats()
    print(f"profile cache: {stats['entries']} entries, "
          f"{stats['hits']} hits / {stats['misses']} misses "
          f"(hit rate {stats['hit_rate'] * 100:.0f}%)")


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile a model into a reusable execution-plan artifact."""
    paths = _paths(args)
    mechanism = POLICIES[args.policy]
    flow = _flow(args, mechanism)
    plan = flow.build_plan(build_model(args.net), model_name=args.net,
                           with_traces=args.traces)
    out = Path(args.plan) if args.plan else paths["base"] / "plan.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    plan.save(out, include_weights=args.with_weights)
    info = plan.summary()
    print(f"compiled {args.net} [{args.policy}]: "
          f"{info['decisions']} regions, predicted "
          f"{plan.predicted_time_us:.1f} us, {info['traces']} traces "
          f"-> {out}")
    _print_profile_summary(flow)
    _print_pass_summary(plan.pass_log)
    _print_cache_stats(flow)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    paths = _paths(args)
    if args.plan:
        from repro.plan import PlanFormatError
        from repro.runtime.executor import PlanExecutor

        try:
            executor = PlanExecutor(args.plan)
        except FileNotFoundError:
            print(f"plan file not found: {args.plan}", file=sys.stderr)
            return 2
        except (PlanFormatError, json.JSONDecodeError) as exc:
            print(f"cannot load plan {args.plan}: {exc}", file=sys.stderr)
            return 2
        result = executor.run()
        plan = executor.plan

        # Host-side numerical inference through the buffer-planned
        # compiled executor (or the interpreter with --no-compiled).
        # Printed before the schedule line: scripts parse the final
        # line for the makespan.
        from repro.runtime.hostpool import resolve_host_workers
        from repro.runtime.verify import random_feeds
        feeds = random_feeds(plan.graph, seed=0)
        workers = resolve_host_workers(args.host_workers)
        mode = "compiled" if args.compiled else "interpreted"
        if args.compiled and workers > 1:
            mode += f", {workers} workers"
        start = time.perf_counter()
        executor.infer(feeds, compiled=args.compiled,
                       workers=args.host_workers,
                       gemm_shards=args.gemm_shards)
        first_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        executor.infer(feeds, compiled=args.compiled,
                       workers=args.host_workers,
                       gemm_shards=args.gemm_shards)
        repeat_ms = (time.perf_counter() - start) * 1e3
        stats = executor.buffer_stats()
        print(f"host exec [{mode}]: first {first_ms:.1f} ms, "
              f"repeat {repeat_ms:.1f} ms; arena "
              f"{stats['arena_bytes'] / 1e6:.1f} MB "
              f"({stats['copies_elided']} copies elided)")

        print(f"{plan.provenance.get('model', '?')} "
              f"[plan:{plan.mechanism}]: {result.makespan_us:.1f} us, "
              f"{result.energy.total_mj:.2f} mJ "
              f"(gpu busy {result.gpu_busy_us:.1f} us, "
              f"pim busy {result.pim_busy_us:.1f} us)")
        return 0
    if args.gpu_only:
        flow = PimFlow(_config(args, "gpu"))
        result = flow.run(build_model(args.net))
        print(f"{args.net} [GPU baseline]: {result.makespan_us:.1f} us, "
              f"{result.energy.total_mj:.2f} mJ")
        return 0

    mechanism = POLICIES[args.policy]
    flow = _flow(args, mechanism)
    if args.policy == "PIMFlow" and paths["graph"].exists():
        graph = load_graph(paths["graph"])
        result = flow.engine.run(graph)
    else:
        result = flow.run(build_model(args.net))
        _print_profile_summary(flow)
    print(f"{args.net} [{args.policy}]: {result.makespan_us:.1f} us, "
          f"{result.energy.total_mj:.2f} mJ "
          f"(gpu busy {result.gpu_busy_us:.1f} us, "
          f"pim busy {result.pim_busy_us:.1f} us)")
    return 0


def cmd_stat(args: argparse.Namespace) -> int:
    if args.plan:
        return _stat_plan(args)
    flow = _flow(args, "pimflow-md")
    graph = flow.prepare(build_model(args.net))
    compiled = flow.compile(graph)
    dist = mddp_ratio_distribution(compiled.decisions,
                                   candidate_layer_names(graph))
    if args.json:
        # Machine-readable stats for the serve harness and CI — same
        # data the human output formats, no screen-scraping required.
        from repro.runtime.bufferplan import plan_buffers
        payload = {
            "model": args.net,
            "predicted_time_us": compiled.predicted_time_us,
            "decisions": len(compiled.decisions),
            "ratio_distribution": {str(k): v for k, v in dist.items()},
            "buffer_plan": plan_buffers(compiled.graph).stats(),
            "passes": list(compiled.pass_records),
            "profile": dict(flow.compiler.last_profile_summary),
            "cache": flow.cache.stats() if flow.cache is not None else None,
            "last_run": (flow.cache.last_run()
                         if flow.cache is not None else None),
        }
        print(json.dumps(payload, indent=2))
        return 0
    _print_profile_summary(flow)
    _print_pass_table(compiled.pass_records)
    print("Split ratio to GPU (0: total offload):")
    print("  " + "  ".join(f"{k:>3d}%" for k in dist))
    print("  " + "  ".join(f"{v * 100:3.0f}%" for v in dist.values()))
    from repro.runtime.bufferplan import plan_buffers
    stats = plan_buffers(compiled.graph).stats()
    print("Buffer plan (transformed graph):")
    print(f"  arena {stats['arena_bytes'] / 1e6:.1f} MB for "
          f"{stats['num_tensors']} tensors in {stats['num_roots']} buffers "
          f"(naive {stats['naive_bytes'] / 1e6:.1f} MB)")
    print(f"  copies elided: {stats['copies_elided']} "
          f"(slice views {stats['slice_views']}, concat zero-copy inputs "
          f"{stats['concat_zero_copy_inputs']}, pad zero-copy "
          f"{stats['pad_zero_copy']}, in-place reuse "
          f"{stats['inplace_reused']})")
    print(f"  padded conv reads served in-arena: "
          f"{stats['padded_conv_reads']}")
    if flow.cache is not None:
        _print_cache_stats(flow)
        last = flow.cache.last_run()
        if last is not None:
            print(f"last profile run: {last['hits']} hits / "
                  f"{last['misses']} misses "
                  f"(hit rate {last['hit_rate'] * 100:.0f}%)")
    return 0


def _stat_plan(args: argparse.Namespace) -> int:
    """``-m=stat --plan``: inspect a compiled plan artifact, including
    the per-pass log recorded in its provenance."""
    from repro.plan import PlanFormatError
    from repro.plan.artifact import ExecutionPlan

    try:
        plan = ExecutionPlan.load(args.plan)
    except FileNotFoundError:
        print(f"plan file not found: {args.plan}", file=sys.stderr)
        return 2
    except (PlanFormatError, json.JSONDecodeError) as exc:
        print(f"cannot load plan {args.plan}: {exc}", file=sys.stderr)
        return 2
    info = plan.summary()
    profile, shard_rows = _plan_step_profile(plan, args.gemm_shards)
    if args.json:
        print(json.dumps({
            "summary": info,
            "predicted_time_us": plan.predicted_time_us,
            "passes": plan.pass_log,
            "buffer_plan": dict(plan.buffer_plan),
            "step_profile": profile,
            "shard_profile": shard_rows,
            "provenance": {k: v for k, v in plan.provenance.items()
                           if k != "passes"},
        }, indent=2))
        return 0
    print(f"{info['model'] or '?'} [plan:{plan.mechanism}]: "
          f"{info['nodes']} nodes, {info['decisions']} regions, "
          f"predicted {plan.predicted_time_us:.1f} us "
          f"(config {info['config_fingerprint']})")
    _print_pass_table(plan.pass_log)
    if plan.buffer_plan:
        bp = plan.buffer_plan
        print(f"Buffer plan: arena {bp['arena_bytes'] / 1e6:.1f} MB "
              f"(naive {bp['naive_bytes'] / 1e6:.1f} MB), "
              f"{bp['copies_elided']} copies elided")
    if profile:
        total = sum(v["ms"] for v in profile.values()) or 1.0
        print("Host step profile (one compiled inference, best of 2):")
        print(f"  {'kind':<12}{'steps':>6}{'ms':>9}{'share':>8}")
        for kind, row in sorted(profile.items(),
                                key=lambda kv: -kv[1]["ms"]):
            print(f"  {kind:<12}{row['steps']:>6}{row['ms']:>9.3f}"
                  f"{row['ms'] / total * 100:>7.1f}%")
    if shard_rows:
        print(f"Sharded steps ({len(shard_rows)} nodes, "
              f"per-shard ms):")
        print(f"  {'node':<28}{'kind':<8}{'shards':>7}{'ms':>9}"
              f"  per-shard")
        for row in shard_rows[:10]:
            per = "/".join(f"{ms:.2f}" for ms in row["shard_ms"])
            name = row["node"]
            if len(name) > 27:
                name = name[:24] + "..."
            print(f"  {name:<28}{row['kind']:<8}{row['shards']:>7}"
                  f"{row['ms']:>9.3f}  {per}")
        if len(shard_rows) > 10:
            rest = sum(r["ms"] for r in shard_rows[10:])
            print(f"  ... {len(shard_rows) - 10} more sharded nodes, "
                  f"{rest:.3f} ms")
    return 0


def _plan_step_profile(plan, gemm_shards=None):
    """Per-op-kind wall-clock breakdown of one compiled inference.

    Binds the plan's graph into a fresh compiled executable and times
    every step, bucketed by kernel class (gemm, dwconv, fused,
    elementwise, copy, other), plus the per-node, per-shard timing of
    every intra-op sharded step.  Steps only shard when sharding is
    enabled (``--gemm-shards`` / ``REPRO_GEMM_SHARDS``), so the shard
    table is empty by default.  Returns ``({}, [])`` when the graph
    cannot be bound (e.g. an op with no numpy kernel).
    """
    from repro.runtime.compiled import CompiledExecutable
    from repro.runtime.gemmpar import ShardPolicy
    from repro.runtime.verify import random_feeds

    try:
        policy = ShardPolicy.from_env().with_gemm_shards(gemm_shards)
        exe = CompiledExecutable(plan.graph, policy=policy)
        feeds = random_feeds(plan.graph, seed=0)
        return exe.step_profile(feeds, rounds=2, detail=True)
    except Exception:  # pragma: no cover - diagnostic best-effort
        return {}, []


def cmd_passes(args: argparse.Namespace) -> int:
    """List the pass registry (``pimflow -m=passes``)."""
    from repro.transform.passes import registered_passes

    for info in registered_passes():
        flags = []
        if info.idempotent:
            flags.append("idempotent")
        if info.requires:
            flags.append("requires " + ",".join(info.requires))
        if not info.preserves_semantics:
            flags.append("reshapes semantics")
        tag = f" [{'; '.join(flags)}]" if flags else ""
        summary = info.description.splitlines()[0] if info.description else ""
        print(f"{info.name:<22}{tag}")
        if summary:
            print(f"    {summary}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate and persist the PIM command trace for one layer."""
    from repro.codegen.generator import generate_trace
    from repro.codegen.trace_io import save_trace
    from repro.graph.ops import is_pim_candidate
    from repro.lowering.im2col import lower_node
    from repro.pim.simulator import simulate_trace

    flow = PimFlow(_config(args, "pimflow"))
    graph = flow.prepare(build_model(args.net))

    candidates = []
    for node in graph.toposort():
        shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, shapes):
            candidates.append(node)
    if not candidates:
        print(f"{args.net} has no PIM-candidate layers", file=sys.stderr)
        return 1
    if args.layer:
        matches = [n for n in candidates if n.name == args.layer]
        if not matches:
            names = ", ".join(n.name for n in candidates[:10])
            print(f"unknown layer {args.layer!r}; candidates include: "
                  f"{names} ...", file=sys.stderr)
            return 2
        node = matches[0]
    else:
        node = max(candidates,
                   key=lambda n: lower_node(n, graph).macs)

    gemv = lower_node(node, graph)
    trace = generate_trace(gemv, flow.pim.config, flow.pim.opts)
    result = simulate_trace(trace, flow.pim.config)

    paths = _paths(args)
    paths["base"].mkdir(parents=True, exist_ok=True)
    out = paths["base"] / f"trace_{node.name}.json"
    save_trace(trace, out)
    counts = ", ".join(f"{k}:{v}" for k, v in sorted(trace.counts().items()))
    print(f"{node.name}: {trace.num_commands} commands ({counts}) over "
          f"{len(trace.programs)} channels, {result.cycles} cycles "
          f"-> {out}")
    return 0


def cmd_serve(args: argparse.Namespace, nets: List[str]) -> int:
    """Run the dynamic-batching server against the synthetic load
    generator (``pimflow -m=serve``)."""
    from repro.serve import InferenceServer, ModelRepository, ServerConfig
    from repro.serve.loadgen import run_closed_loop, run_open_loop

    mechanism = POLICIES[args.policy or "PIMFlow"]
    repo = ModelRepository()
    if args.plan:
        repo.register_plan(nets[0], args.plan)
    else:
        for net in nets:
            repo.register_model(net, config=_config(args, mechanism))
    max_wait = args.max_wait_ms if args.max_wait_ms is not None else 2.0
    host_workers = args.host_threads if args.host_threads is not None \
        else args.host_workers
    server = InferenceServer(repo, ServerConfig(
        workers=args.serve_workers, queue_depth=args.queue_depth,
        max_batch_size=args.max_batch, max_wait_ms=max_wait,
        default_deadline_ms=args.deadline_ms,
        host_workers=host_workers, host_states=args.host_states,
        gemm_shards=args.gemm_shards))
    results = []
    with server:
        for net in nets:
            if args.rate is not None:
                results.append(run_open_loop(
                    server, net, rate_rps=args.rate,
                    duration_s=args.duration))
            else:
                results.append(run_closed_loop(
                    server, net, clients=args.clients,
                    requests_per_client=args.requests))
        snap = server.stats()
    if args.json:
        print(json.dumps({"load": [r.summary() for r in results],
                          "server": snap}, indent=2))
        return 0
    for r in results:
        s = r.summary()
        print(f"{s['model']}: {s['completed']}/{s['offered']} ok "
              f"({s['rejected']} shed, {s['expired']} expired, "
              f"{s['failed']} failed), wall {s['wall_rps']:.1f} rps, "
              f"device {s['device_rps']:.0f} rps, "
              f"p50/p99 {s['latency_p50_ms']:.1f}/"
              f"{s['latency_p99_ms']:.1f} ms")
    print(f"[serve] {snap['batches']} batches, mean size "
          f"{snap['mean_batch_size']:.2f}, peak queue "
          f"{snap['peak_queue_depth']}, device busy "
          f"{snap['device_busy_us'] / 1e3:.1f} ms, host exec "
          f"{snap['host_exec_ms']:.1f} ms")
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """A/B batch-1 vs dynamic batching (``pimflow -m=bench-serve``)."""
    from repro.serve.loadgen import bench_serve

    # PIM offload is a batch-1 design point (paper Fig. 8): the default
    # serving plan is the GPU baseline, where batching recovers SIMT
    # utilization.  --policy serves the chosen mechanism's plan instead.
    mechanism = POLICIES[args.policy] if args.policy else "gpu"
    host_workers = args.host_threads if args.host_threads is not None \
        else args.host_workers
    report = bench_serve(
        model=args.net, mechanism=mechanism, max_batch=args.max_batch,
        clients=args.clients, requests_per_client=args.requests,
        workers=args.serve_workers,
        max_wait_ms=args.max_wait_ms if args.max_wait_ms is not None else 50.0,
        host_workers=host_workers, host_states=args.host_states,
        progress=lambda msg: print(msg, file=sys.stderr))
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    b, d = report["batch1"], report["dynamic"]
    print(f"{report['model']} [{report['mechanism']}] serve A/B, "
          f"{report['requests']} requests, {args.clients} clients:")
    print(f"{'':>14s} {'batch-1':>12s} {'dynamic(max-' + str(report['max_batch']) + ')':>18s}")
    for label, key, unit in (
            ("device rps", "device_rps", ""),
            ("wall rps", "wall_rps", ""),
            ("p50 ms", "latency_p50_ms", ""),
            ("p99 ms", "latency_p99_ms", ""),
            ("mean batch", "mean_batch_size", "")):
        print(f"{label:>14s} {b[key]:>12.2f} {d[key]:>18.2f}")
    print(f"dynamic batching win (modelled device throughput): "
          f"{report['device_win']:.2f}x "
          f"(steady-state ceiling {report['device_win_ceiling']:.2f}x)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Compile a model and print the full compilation report + schedule."""
    from repro.analysis.gantt import render_gantt
    from repro.analysis.report import compilation_report, format_report

    flow = _flow(args, POLICIES[args.policy])
    compiled = flow.compile(build_model(args.net))
    result = flow.engine.run(compiled.graph)
    _print_profile_summary(flow)
    print(f"{args.net} [{args.policy}]")
    for line in format_report(compilation_report(compiled, result)):
        print("  " + line)
    print("  schedule ('#' GPU, '=' PIM):")
    for line in render_gantt(result):
        print("    " + line)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(_preprocess_argv(
        list(sys.argv[1:] if argv is None else argv)))
    if args.mode == "list":
        for name in list_models():
            print(name)
        return 0
    if args.mode == "passes":
        return cmd_passes(args)
    if args.mode == "stat" and args.plan:
        return _stat_plan(args)
    # --policy defaults to PIMFlow everywhere except bench-serve, whose
    # A/B baseline is the GPU plan (cmd_bench_serve resolves None).
    if args.policy is None and args.mode != "bench-serve":
        args.policy = "PIMFlow"
    if args.mode == "serve":
        # Serve accepts a comma-separated model list (-n=a,b) so one
        # server can exercise model-affine batching across models.
        nets = [normalize_model_name(n)
                for n in (args.net or "").split(",") if n]
        if args.plan:
            nets = nets or ["plan"]
        else:
            unknown = [n for n in nets if n not in list_models()]
            if not nets or unknown:
                print(f"unknown net(s) {unknown or args.net!r}; use -m=list",
                      file=sys.stderr)
                return 2
        return cmd_serve(args, nets)
    if args.net is not None:
        args.net = normalize_model_name(args.net)
    if args.net not in list_models():
        print(f"unknown net {args.net!r}; use -m=list", file=sys.stderr)
        return 2
    if args.mode == "bench-serve":
        return cmd_bench_serve(args)
    if args.mode == "profile":
        return cmd_profile(args)
    if args.mode == "solve":
        return cmd_solve(args)
    if args.mode == "compile":
        return cmd_compile(args)
    if args.mode == "run":
        return cmd_run(args)
    if args.mode == "stat":
        return cmd_stat(args)
    if args.mode == "trace":
        return cmd_trace(args)
    if args.mode == "report":
        return cmd_report(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
