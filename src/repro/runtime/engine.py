"""Mixed-parallel execution engine.

The engine is the runtime half of PIMFlow: it takes a transformed graph
whose nodes carry device placements (``node.device``) and computes the
end-to-end schedule with GPU and PIM executing in parallel, respecting
dataflow dependencies.  This generic two-resource list scheduler covers
all three execution models of the paper:

* **Heterogeneous parallel** — nodes placed wholly on one device run
  back-to-back; offloaded nodes simply move to the PIM timeline.
* **MD-DP** — the split halves of a node sit on different devices with
  no mutual dependency, so they overlap.
* **Pipelined** — the per-stage pieces created by the pipelining pass
  form a dependency diamond; the scheduler overlaps stage ``s`` of one
  node with stage ``s+1`` of its producer automatically.

Nodes elided by the memory-layout optimizer (Slice/Concat/Pad with the
``elided`` attribute) occupy no device time.  Cross-device dependency
edges pay a fixed synchronization cost; the bulk data transfer itself
is already priced inside the PIM command model (GWRITE/READRES stream
over the inter-channel network).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.energy.accumulator import EnergyBreakdown
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_pim_candidate
from repro.gpu.device import GpuDevice
from repro.pim.device import PimDevice

#: Fixed cost of a GPU<->PIM synchronization at a dependency edge.
SYNC_OVERHEAD_US = 0.5

#: Compiled executables an engine keeps bound at once.  Each entry
#: holds a full arena (tens of MB for ImageNet-scale models), so the
#: cap bounds resident memory when one engine serves many graphs; the
#: serving layer's model repository adds its own per-model LRU above
#: this.
EXECUTABLE_CACHE_CAP = 8


@dataclass(frozen=True)
class ScheduleEvent:
    """One node's placement in the schedule."""

    node: str
    op_type: str
    device: str
    start_us: float
    finish_us: float

    @property
    def duration_us(self) -> float:
        return self.finish_us - self.start_us


@dataclass
class RunResult:
    """Outcome of scheduling one inference."""

    makespan_us: float
    events: List[ScheduleEvent]
    energy: EnergyBreakdown
    gpu_busy_us: float = 0.0
    pim_busy_us: float = 0.0
    #: Lazily built name->event index; benchmarks call :meth:`event`
    #: per node in tight loops, so lookups must not rescan the list.
    _event_index: Optional[Dict[str, ScheduleEvent]] = field(
        default=None, repr=False, compare=False)

    def event(self, node_name: str) -> ScheduleEvent:
        if self._event_index is None or len(self._event_index) != len(self.events):
            self._event_index = {e.node: e for e in self.events}
        try:
            return self._event_index[node_name]
        except KeyError:
            raise KeyError(f"no schedule event for node {node_name!r}") from None

    @property
    def overlap_us(self) -> float:
        """Time both devices were busy (upper-bounded by busy times)."""
        return max(0.0, self.gpu_busy_us + self.pim_busy_us - self.makespan_us)


class ExecutionEngine:
    """Schedules transformed graphs over one GPU and one PIM device.

    Engines are plain picklable objects (device configs and energy
    models are dataclasses; there are no open handles), and
    :meth:`to_spec` emits the JSON-compatible description that
    :func:`repro.runtime.executor.engine_from_spec` rebuilds an
    identical engine from — the contract both the plan artifact and the
    job-engine worker processes rely on.
    """

    def __init__(self, gpu: GpuDevice, pim: Optional[PimDevice] = None,
                 sync_overhead_us: float = SYNC_OVERHEAD_US,
                 host_io: bool = False,
                 pcie_bytes_per_us: float = 16e3,
                 executable_cache_cap: int = EXECUTABLE_CACHE_CAP) -> None:
        self.gpu = gpu
        self.pim = pim
        self.sync_overhead_us = sync_overhead_us
        #: Charge host<->device transfers over PCIe for graph inputs and
        #: outputs (paper Fig. 4 steps: data arrives from host memory
        #: and results return for host-side consumers).  Off by default:
        #: the evaluation reports on-device inference time.
        self.host_io = host_io
        self.pcie_bytes_per_us = pcie_bytes_per_us
        #: Simulator invocations served by this engine.  The profile
        #: cache's zero-reprofiling guarantee is asserted against this
        #: counter in the test suite.
        self.run_count = 0
        #: Host-side compiled executables: a bounded LRU keyed
        #: (id(graph), graph.version, elide), guarded by
        #: ``_compiled_lock`` so concurrent :meth:`infer` calls from
        #: server workers never race the map.  Holds closures, so it is
        #: dropped on pickling (see :meth:`__getstate__`) and rebuilt
        #: on demand.
        self.executable_cache_cap = max(1, int(executable_cache_cap))
        self._compiled_cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._compiled_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_compiled_cache"] = OrderedDict()
        del state["_compiled_lock"]  # locks don't pickle; rebuilt below
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._compiled_lock = threading.Lock()

    def to_spec(self) -> Dict[str, object]:
        """Serializable engine description, sufficient to rebuild an
        engine that prices every kernel identically (see
        :func:`repro.runtime.executor.engine_from_spec`)."""
        return {
            "write_through": self.gpu.write_through,
            "gpu_config": asdict(self.gpu.config),
            "pim_config": asdict(self.pim.config) if self.pim else None,
            "pim_opts": asdict(self.pim.opts) if self.pim else None,
            "sync_overhead_us": self.sync_overhead_us,
            "host_io": self.host_io,
            "pcie_bytes_per_us": self.pcie_bytes_per_us,
        }

    def _placement(self, node: Node, graph: Graph) -> str:
        if node.device != "pim":
            return "gpu"
        input_shapes = [graph.tensors[t].shape for t in node.inputs]
        if self.pim is None or not is_pim_candidate(node, input_shapes):
            return "gpu"
        return "pim"

    def run_plan(self, plan) -> RunResult:
        """Execute a compiled :class:`~repro.plan.artifact.ExecutionPlan`.

        The plan's graph already carries all device placements and
        transformations, so this is a pure runtime operation — no
        search-phase code is touched.
        """
        return self.run(plan.graph)

    def infer(self, graph: Graph, feeds, compiled: bool = True,
              elide: bool = True, workers: Optional[int] = None,
              max_states: Optional[int] = None, fuse: bool = True,
              policy=None):
        """Run one *numerical* inference of ``graph`` on the host.

        Where :meth:`run` prices a schedule on the modelled devices,
        this actually computes the outputs.  The buffer-planned
        :class:`~repro.runtime.compiled.CompiledExecutable` is the
        default path; ``compiled=False`` falls back to the interpreted
        :func:`~repro.runtime.numerical.execute` oracle.  Executables
        are cached per (graph identity, version, elide, workers,
        max_states, fuse, policy) so repeat inference pays binding cost
        once.

        ``workers`` sets the operator-parallel dispatch width inside
        the run (None defers to ``REPRO_HOST_WORKERS``, default
        serial); ``max_states`` caps the executable's pool of
        concurrent execution states; ``policy`` is the
        :class:`~repro.runtime.gemmpar.ShardPolicy` governing intra-op
        GEMM sharding (None defers to ``REPRO_GEMM_SHARDS``).  Calls
        are thread-safe without serializing — concurrent callers run on
        distinct pooled states.
        """
        if not compiled:
            from repro.runtime.numerical import execute
            return execute(graph, feeds)
        return self.executable(graph, elide=elide, workers=workers,
                               max_states=max_states, fuse=fuse,
                               policy=policy).run(feeds)

    def executable(self, graph: Graph, elide: bool = True,
                   workers: Optional[int] = None,
                   max_states: Optional[int] = None, fuse: bool = True,
                   policy=None):
        """The cached :class:`~repro.runtime.compiled.CompiledExecutable`
        for ``graph``, binding one on a miss.

        Thread-safe: the LRU map is lock-guarded, and the (expensive)
        binding runs outside the lock — two workers missing on the same
        key may both bind, but the first insert wins and both results
        are equivalent.  The cache is capped at
        :attr:`executable_cache_cap` entries, least-recently-used
        evicted first.
        """
        from repro.runtime.compiled import CompiledExecutable
        from repro.runtime.gemmpar import ShardPolicy
        from repro.runtime.hostpool import resolve_host_workers
        workers = resolve_host_workers(workers)
        if policy is None:
            policy = ShardPolicy.from_env()
        key = (id(graph), graph.version, elide, workers, max_states, fuse,
               policy)
        with self._compiled_lock:
            exe = self._compiled_cache.get(key)
            if exe is not None:
                self._compiled_cache.move_to_end(key)
                return exe
        built = CompiledExecutable(graph, elide=elide, workers=workers,
                                   max_states=max_states, fuse=fuse,
                                   policy=policy)
        with self._compiled_lock:
            exe = self._compiled_cache.get(key)
            if exe is None:
                # Old entries for this graph object are stale once the
                # version moves; drop them so repeated in-place
                # transforms never accumulate dead executables.
                for k in [k for k in self._compiled_cache
                          if k[0] == id(graph) and k[1] != graph.version]:
                    del self._compiled_cache[k]
                self._compiled_cache[key] = exe = built
            self._compiled_cache.move_to_end(key)
            while len(self._compiled_cache) > self.executable_cache_cap:
                self._compiled_cache.popitem(last=False)
        return exe

    def executable_cache_stats(self) -> Dict[str, int]:
        with self._compiled_lock:
            return {"entries": len(self._compiled_cache),
                    "cap": self.executable_cache_cap}

    def host_stats(self) -> Dict[str, object]:
        """Aggregate state-pool gauges across all cached executables.

        The serving layer surfaces this as its host-concurrency view:
        how many execution states are bound, the high-water mark of
        simultaneous in-flight runs, and how often an acquire had to
        wait for a state (contention).  Also carries the measured
        hazard-graph ``width`` (1 = chain-shaped, parallel dispatch
        gated off), the ``fused_groups`` count, the per-kind step
        census (``step_kinds``), and the intra-op GEMM shard fan-out
        (``gemm_sharded_steps`` nodes split, ``gemm_shard_max`` widest
        split).
        """
        with self._compiled_lock:
            exes = list(self._compiled_cache.values())
        agg: Dict[str, object] = {
            "executables": len(exes), "programs": 0, "states_bound": 0,
            "in_use": 0, "peak_in_use": 0, "acquires": 0, "waits": 0,
            "width": 1, "fused_groups": 0, "step_kinds": {},
            "gemm_sharded_steps": 0, "gemm_shard_max": 1}
        kinds: Dict[str, int] = agg["step_kinds"]
        for exe in exes:
            s = exe.pool_stats()
            agg["programs"] += s["programs"]
            agg["states_bound"] += s["states_bound"]
            agg["in_use"] += s["in_use"]
            agg["peak_in_use"] = max(agg["peak_in_use"], s["peak_in_use"])
            agg["acquires"] += s["acquires"]
            agg["waits"] += s["waits"]
            agg["width"] = max(agg["width"], s.get("width", 1))
            agg["fused_groups"] = max(agg["fused_groups"],
                                      s.get("fused_groups", 0))
            agg["gemm_sharded_steps"] = max(
                agg["gemm_sharded_steps"], s.get("gemm_sharded_steps", 0))
            agg["gemm_shard_max"] = max(
                agg["gemm_shard_max"], s.get("gemm_shard_max", 1))
            for kind, count in (s.get("step_kinds") or {}).items():
                kinds[kind] = max(kinds.get(kind, 0), count)
        return agg

    def run(self, graph: Graph) -> RunResult:
        """Compute the parallel schedule and energy for one inference."""
        self.run_count += 1
        device_free = {"gpu": 0.0, "pim": 0.0}
        busy = {"gpu": 0.0, "pim": 0.0}
        tensor_ready: Dict[str, float] = {}
        tensor_device: Dict[str, str] = {}
        for t in graph.inputs:
            ready = 0.0
            if self.host_io:
                ready = graph.tensors[t].num_bytes / self.pcie_bytes_per_us
            tensor_ready[t] = ready
            tensor_device[t] = "gpu"
        for t in graph.initializers:
            tensor_ready[t] = 0.0
            tensor_device[t] = "any"

        energy = EnergyBreakdown()
        events: List[ScheduleEvent] = []

        for node in graph.toposort():
            device = self._placement(node, graph)
            elided = bool(node.attr("elided", False))

            ready = 0.0
            for t in node.inputs:
                t_ready = tensor_ready[t]
                src = tensor_device.get(t, "gpu")
                if not elided and src not in ("any", device):
                    t_ready += self.sync_overhead_us
                ready = max(ready, t_ready)

            if elided:
                # Zero-cost view change: output is ready when inputs are,
                # no device occupancy.
                start = finish = ready
                out_device = tensor_device.get(node.inputs[0], "gpu")
            else:
                if device == "gpu":
                    cost = self.gpu.run_node(node, graph)
                    duration = cost.time_us
                    energy.gpu_dynamic_mj += self.gpu.energy_model.dynamic_mj(
                        cost.flops, cost.dram_bytes)
                else:
                    cost = self.pim.run_node(node, graph)
                    duration = cost.time_us
                    energy.pim_dynamic_mj += self.pim.energy_model.dynamic_mj(
                        cost.activations, cost.macs, cost.gwrite_bytes,
                        cost.io_bytes)
                    if node.attr("activation"):
                        # Newton's MAC-only PIM cannot run activation
                        # functions; the fused epilogue executes as a GPU
                        # elementwise pass over the returned results
                        # (paper Fig. 4, steps 3-4).
                        out_bytes = sum(graph.tensors[t].num_bytes
                                        for t in node.outputs)
                        bw = self.gpu.config.bandwidth_bytes_per_us * 0.85
                        epilogue = (2.0 * out_bytes / bw
                                    + self.gpu.config.fused_launch_overhead_us)
                        duration += epilogue
                        energy.gpu_dynamic_mj += self.gpu.energy_model.dynamic_mj(
                            float(out_bytes) / 2.0, 2.0 * out_bytes)
                start = max(ready, device_free[device])
                finish = start + duration
                device_free[device] = finish
                busy[device] += duration
                out_device = device

            for t in node.outputs:
                tensor_ready[t] = finish
                tensor_device[t] = out_device
            events.append(ScheduleEvent(node.name, node.op_type, out_device if not elided else "none",
                                        start, finish))

        makespan = max((tensor_ready[t] for t in graph.outputs), default=0.0)
        if self.host_io:
            out_bytes = sum(graph.tensors[t].num_bytes for t in graph.outputs)
            makespan += out_bytes / self.pcie_bytes_per_us
        energy.gpu_static_mj = self.gpu.energy_model.static_mj(makespan)
        if self.pim is not None:
            energy.pim_static_mj = self.pim.energy_model.static_mj(
                makespan, self.pim.config.num_channels)
        return RunResult(makespan_us=makespan, events=events, energy=energy,
                         gpu_busy_us=busy["gpu"], pim_busy_us=busy["pim"])
