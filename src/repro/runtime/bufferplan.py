"""Whole-graph buffer planning: lifetimes, aliasing, and a shared arena.

This pass turns the memory-layout *model* of :mod:`repro.transform.memopt`
(paper Section 4.3.2, Fig. 7) into something the numerical runtime can
actually execute.  ``optimize_memory`` marks Slice/Concat/Pad nodes whose
data movement a co-allocated NHWC layout makes free; this module computes
the co-allocation itself:

* every non-weight tensor is resolved to a **storage** — a rectangular
  region inside a **root** buffer (offset + extent per dimension), or an
  opaque derived view (Reshape/Transpose outputs);
* inputs of an ``elided`` Concat are laid out back-to-back inside the
  Concat output's buffer, so their producers write the concatenated
  result directly and the Concat itself disappears;
* the input of an ``elided`` Pad occupies the interior of the Pad
  output's buffer, whose border stays zero by construction;
* roots whose tensors feed convolutions are allocated with **margins** —
  the pre-padded extent — so ``Conv`` kernels read a padded view instead
  of calling ``np.pad`` per inference;
* all roots are packed into one float32 **arena** with lifetime-based
  region reuse, so repeat inference allocates nothing.

The planner is purely symbolic (names, offsets, element counts); the
compiled executor (:mod:`repro.runtime.compiled`) materializes the arena
and binds numpy views.  Margin/pad regions rely on a zero-once invariant:
roots carrying margins or an elided-Pad border are *pinned* — their arena
bytes are never reused — and the arena is zero-initialized, so the
padding stays zero across runs while producers only ever write interiors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.graph import Graph

#: Ops whose outputs are pure reinterpretations of their input buffer.
#: ``Slice`` always yields a (strided) view in numpy; ``Reshape`` only
#: when the underlying view is contiguous — the planner records those as
#: opaque derived views and the executor falls back to a copy if numpy
#: cannot express the reinterpretation without one.
VIEW_OPS = ("Identity", "Slice", "Reshape", "Flatten", "Transpose")

#: Arena offsets are rounded up to this many float32 elements (64 bytes)
#: so every root starts cache-line aligned.
ARENA_ALIGN = 16

#: Refuse in-place links that would put conv pre-pad margins on a
#: GEMM destination (see ``gemm_written`` in :func:`plan_buffers`).
GEMM_DST_GUARD = True

#: Ops whose single output may share its input's buffer when that input
#: dies at the node: either the op maps elements independently (in-place
#: ufunc with ``out=`` aliasing the input is well-defined) or the
#: compiled executor materializes the full result before copying it into
#: place (the generic-fallback ops).  GEMM/Conv are excluded — BLAS may
#: not read an operand it is overwriting.
INPLACE_OPS = frozenset({
    "Relu", "Clip", "Sigmoid", "Silu", "Tanh", "Gelu", "Erf", "Softmax",
    "BatchNormalization", "Add", "Mul", "Sub", "Div",
    # Fused elementwise groups stage every tile in scratch and flush
    # outputs at tile end, so overwriting a dying same-shape input is
    # as safe as for a single in-place ufunc.
    "FusedElementwise",
})


@dataclass(frozen=True)
class Storage:
    """Where a tensor's bytes live.

    ``offset`` is the element offset of the tensor's rectangle per
    dimension inside its root's *interior* (margins excluded); ``None``
    marks an opaque derived view (e.g. a Transpose output) whose layout
    the executor derives operationally — the root is then only used for
    lifetime accounting.
    """

    root: str
    offset: Optional[Tuple[int, ...]]
    shape: Tuple[int, ...]

    @property
    def is_rect(self) -> bool:
        return self.offset is not None


@dataclass
class RootAlloc:
    """One arena-resident buffer and its lifetime."""

    name: str
    shape: Tuple[int, ...]
    #: Per-dimension (before, after) margin elements — the pre-padded
    #: extent convolution consumers read through.
    margins: Tuple[Tuple[int, int], ...]
    birth: int
    death: int
    #: Pinned roots keep their arena bytes forever: their margins (or
    #: elided-Pad border) must stay zero across runs, which only holds
    #: if no other root ever writes the range.
    pinned: bool = False
    arena_offset: int = -1

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(b + d + a for d, (b, a) in zip(self.shape, self.margins))

    @property
    def elements(self) -> int:
        n = 1
        for d in self.padded_shape:
            n *= d
        return n


@dataclass
class BufferPlan:
    """The planner's output: storages, roots, and the arena layout."""

    roots: Dict[str, RootAlloc]
    storage: Dict[str, Storage]
    arena_elements: int
    #: Conv node names whose input padding is served by root margins
    #: (the kernel reads a padded view; no ``np.pad`` at runtime).
    padded_reads: Dict[str, bool] = field(default_factory=dict)
    #: Per-kind counts of copies the layout makes free.
    slice_views: int = 0
    concat_zero_copy_inputs: int = 0
    pad_zero_copy: int = 0
    elided_nodes: int = 0
    #: Elementwise outputs written onto their (dying) input's buffer.
    inplace_reused: int = 0

    @property
    def arena_bytes(self) -> int:
        return self.arena_elements * 4

    @property
    def naive_bytes(self) -> int:
        """Footprint without lifetime reuse (every root exclusive)."""
        return sum(r.elements for r in self.roots.values()) * 4

    def stats(self) -> Dict[str, object]:
        """JSON-ready summary for plans, ``stat`` output, and benchmarks."""
        padded = sum(1 for served in self.padded_reads.values() if served)
        return {
            "arena_bytes": self.arena_bytes,
            "naive_bytes": self.naive_bytes,
            "num_roots": len(self.roots),
            "num_tensors": len(self.storage),
            "slice_views": self.slice_views,
            "concat_zero_copy_inputs": self.concat_zero_copy_inputs,
            "pad_zero_copy": self.pad_zero_copy,
            "padded_conv_reads": padded,
            "elided_nodes": self.elided_nodes,
            "inplace_reused": self.inplace_reused,
            "copies_elided": (self.concat_zero_copy_inputs
                              + self.pad_zero_copy + padded),
        }


class _AliasForest:
    """Union-find over tensors with per-dimension rectangle offsets."""

    def __init__(self) -> None:
        # child -> (parent, offset or None); offset None = opaque view.
        self.parent: Dict[str, Tuple[str, Optional[Tuple[int, ...]]]] = {}

    def is_root(self, t: str) -> bool:
        return t not in self.parent

    def link(self, child: str, parent: str,
             offset: Optional[Tuple[int, ...]]) -> None:
        assert child not in self.parent, child
        self.parent[child] = (parent, offset)

    def find(self, t: str) -> Tuple[str, Optional[Tuple[int, ...]]]:
        """Resolve ``t`` to (root, rectangle offset in root).

        Offsets compose additively along the chain; any opaque link
        (a reinterpreting view) makes the final offset ``None``.
        """
        cur = t
        total: Optional[Tuple[int, ...]] = tuple()
        while cur in self.parent:
            cur, off = self.parent[cur]
            if off is None or total is None:
                total = None
            elif not total:
                total = off
            else:
                total = tuple(a + b for a, b in zip(total, off))
        if cur == t:
            return t, None
        return cur, total

    def resolve(self, t: str, shape: Tuple[int, ...]) -> Storage:
        root, off = self.find(t)
        if root == t:
            return Storage(t, tuple(0 for _ in shape), shape)
        return Storage(root, off, shape)


def _zeros(rank: int) -> Tuple[int, ...]:
    return tuple(0 for _ in range(rank))


def _axis_offset(rank: int, axis: int, value: int) -> Tuple[int, ...]:
    off = [0] * rank
    off[axis] = value
    return tuple(off)


def plan_buffers(graph: Graph,
                 shapes: Optional[Mapping[str, Sequence[int]]] = None,
                 *, elide: bool = True) -> BufferPlan:
    """Compute the buffer plan for ``graph``.

    ``shapes`` overrides the graph's declared tensor shapes (the
    compiled executor passes batched shapes); ``elide=False`` plans a
    layout with no co-allocation and no pre-padding — every Slice is
    still a view (numpy semantics) but Concat/Pad copy and convolutions
    pad at call time, which is the ablation baseline the benchmarks
    compare against.
    """
    order = graph.toposort()
    if shapes is None:
        shapes = {name: info.shape for name, info in graph.tensors.items()}
    shape_of = {name: tuple(s) for name, s in shapes.items()}
    inits = graph.initializers

    forest = _AliasForest()
    plan = BufferPlan(roots={}, storage={}, arena_elements=0)

    def alias_eligible(t: str) -> bool:
        # A tensor can be laid inside another buffer only if nothing has
        # claimed it yet and it is not a weight (weights live outside
        # the arena, shared read-only across runs).
        return forest.is_root(t) and t not in inits

    use_count: Dict[str, int] = {}
    for node in order:
        for t in node.inputs:
            use_count[t] = use_count.get(t, 0) + 1
    # Tensors an elided Concat/Pad will want to claim as children: leave
    # them unaliased so the (better) zero-copy concat/pad link wins over
    # in-place reuse.
    elide_claimed = set()
    if elide:
        for node in order:
            if node.op_type in ("Concat", "Pad") and node.attr("elided"):
                elide_claimed.update(node.inputs)

    # Tensors written by a matmul-shaped kernel, and tensors a padded
    # Conv reads: if an elementwise output that feeds a padded Conv
    # in-place-aliases a GEMM destination, the margin growth (phase 3)
    # lands on the GEMM's root, its destination view turns into a
    # non-contiguous interior rectangle, and the conv must stage its
    # whole output through scratch and copy it back — two extra passes
    # over the activation that cost more than the saved allocation.
    gemm_written = {node.outputs[0] for node in order
                    if node.op_type in ("Conv", "Gemm", "MatMul")
                    } if GEMM_DST_GUARD else set()
    padded_conv_reads = {node.inputs[0] for node in order
                         if node.op_type == "Conv"
                         and any(node.attr("pads", (0, 0, 0, 0)))}

    def inplace_src(node) -> Optional[str]:
        """The input whose buffer ``node`` may overwrite, if any."""
        out = node.outputs[0]
        if len(node.outputs) != 1 or out in elide_claimed \
                or not alias_eligible(out):
            return None
        if node.op_type == "FusedElementwise":
            # Any same-shape dying input qualifies: the fused sweep
            # reads each tile of every operand before flushing that
            # tile's output.
            candidates = node.inputs
        elif node.op_type in ("Add", "Mul", "Sub", "Div"):
            candidates = node.inputs[:2]
        else:
            candidates = node.inputs[:1]
        for src in candidates:
            if (src not in inits
                    and use_count.get(src) == 1
                    and forest.is_root(src)
                    and src not in graph.outputs
                    and shape_of.get(src) == shape_of[out]
                    # Keep GEMM destinations margin-free (see
                    # ``gemm_written`` above): a padded-conv feeder may
                    # not overwrite one.
                    and not (out in padded_conv_reads
                             and src in gemm_written)
                    # BLAS-free overlap safety: no other operand may
                    # share the buffer being overwritten.
                    and all(o == src or forest.find(o)[0] != src
                            for o in node.inputs)):
                return src
        return None

    # ------------------------------------------------------------------
    # 1. Alias resolution
    # ------------------------------------------------------------------
    for node in order:
        op = node.op_type
        out = node.outputs[0]
        if op in ("Identity",):
            src = node.inputs[0]
            if alias_eligible(out):
                forest.link(out, src, _zeros(len(shape_of[out])))
        elif op == "Slice":
            src = node.inputs[0]
            rank = len(shape_of[src])
            axis = int(node.attr("axis")) % rank
            start = int(node.attr("start"))
            if start < 0:
                start += shape_of[src][axis]
            forest.link(out, src, _axis_offset(rank, axis, start))
            plan.slice_views += 1
            if node.attr("elided"):
                plan.elided_nodes += 1
        elif op in ("Reshape", "Flatten", "Transpose"):
            forest.link(out, node.inputs[0], None)
        elif op == "Concat" and elide and node.attr("elided"):
            plan.elided_nodes += 1
            rank = len(shape_of[out])
            axis = int(node.attr("axis")) % rank
            cursor = 0
            seen = set()
            for t in node.inputs:
                extent = shape_of[t][axis]
                if t not in seen and alias_eligible(t) \
                        and t not in graph.outputs:
                    forest.link(t, out, _axis_offset(rank, axis, cursor))
                    plan.concat_zero_copy_inputs += 1
                    seen.add(t)
                cursor += extent
        elif op == "Pad" and elide and node.attr("elided"):
            plan.elided_nodes += 1
            src = node.inputs[0]
            pads = tuple(tuple(p) for p in node.attr("pads"))
            if alias_eligible(src) and src not in graph.outputs:
                forest.link(src, out,
                            tuple(before for before, _ in pads))
                plan.pad_zero_copy += 1
        elif op in INPLACE_OPS and elide:
            src = inplace_src(node)
            if src is not None:
                forest.link(out, src, _zeros(len(shape_of[out])))
                plan.inplace_reused += 1

    # ------------------------------------------------------------------
    # 2. Storage resolution
    # ------------------------------------------------------------------
    live_tensors: List[str] = list(graph.inputs)
    for node in order:
        live_tensors.extend(t for t in node.inputs if t not in inits)
        live_tensors.extend(node.outputs)
    live_tensors.extend(t for t in graph.outputs if t not in inits)
    for t in dict.fromkeys(live_tensors):
        plan.storage[t] = forest.resolve(t, shape_of[t])

    rank_margins: Dict[str, List[List[int]]] = {}

    def margins_for(root: str) -> List[List[int]]:
        if root not in rank_margins:
            rank_margins[root] = [[0, 0] for _ in shape_of[root]]
        return rank_margins[root]

    # ------------------------------------------------------------------
    # 3. Conv pre-padding margins
    # ------------------------------------------------------------------
    if elide:
        for node in order:
            if node.op_type != "Conv":
                continue
            st = plan.storage.get(node.inputs[0])
            if st is None or not st.is_rect or st.root in inits:
                plan.padded_reads[node.name] = False
                continue
            if len(st.shape) != 4:
                plan.padded_reads[node.name] = False
                continue
            pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
            root_shape = shape_of[st.root]
            # A margin read is only correct where the area adjacent to
            # the tensor's rectangle is the root's own (zero) margin,
            # not a co-allocated sibling.
            ok = ((pt == 0 or st.offset[1] == 0)
                  and (pb == 0 or st.offset[1] + st.shape[1] == root_shape[1])
                  and (pl == 0 or st.offset[2] == 0)
                  and (pr == 0 or st.offset[2] + st.shape[2] == root_shape[2]))
            plan.padded_reads[node.name] = ok
            if ok and (pt or pl or pb or pr):
                m = margins_for(st.root)
                m[1][0] = max(m[1][0], pt)
                m[1][1] = max(m[1][1], pb)
                m[2][0] = max(m[2][0], pl)
                m[2][1] = max(m[2][1], pr)

    # ------------------------------------------------------------------
    # 4. Root lifetimes
    # ------------------------------------------------------------------
    pos = {node.name: i for i, node in enumerate(order)}
    produced_at: Dict[str, int] = {}
    for node in order:
        for t in node.outputs:
            produced_at[t] = pos[node.name]
    end = len(order)

    last_use: Dict[str, int] = {}
    for node in order:  # topo order: the final assignment is the max
        for t in node.inputs:
            last_use[t] = pos[node.name]

    births: Dict[str, int] = {}
    deaths: Dict[str, int] = {}
    pad_rooted = {forest.find(node.inputs[0])[0]
                  for node in order
                  if node.op_type == "Pad" and elide and node.attr("elided")
                  and not forest.is_root(node.inputs[0])}
    for t, st in plan.storage.items():
        if st.root in inits:
            continue
        birth = produced_at.get(t, -1)  # graph inputs are born before node 0
        death = end if t in graph.outputs else last_use.get(t, birth)
        r = st.root
        births[r] = min(births.get(r, birth), birth)
        deaths[r] = max(deaths.get(r, death), death)

    for r in births:
        margins = rank_margins.get(r)
        margin_tuple = tuple(
            tuple(m) for m in margins) if margins else tuple(
            (0, 0) for _ in shape_of[r])
        has_margin = any(b or a for b, a in margin_tuple)
        plan.roots[r] = RootAlloc(
            name=r,
            shape=shape_of[r],
            margins=margin_tuple,
            birth=births[r],
            death=deaths[r],
            pinned=has_margin or r in pad_rooted,
        )

    # ------------------------------------------------------------------
    # 5. Arena assignment: first-fit with lifetime-based reuse
    # ------------------------------------------------------------------
    placed: List[RootAlloc] = []
    top = 0
    # Pinned roots conflict with every other root no matter when they
    # live, so placing them first stacks them contiguously at the
    # bottom of the arena.  Interleaving them with unpinned roots (pure
    # birth order) leaves lifetime-shaped holes under each pinned
    # block that nothing can ever reuse.  Unpinned roots then go
    # largest-first: big buffers claim the low offsets and small ones
    # fill the lifetime gaps between them, instead of small early
    # tensors squatting just above the pinned block and pushing every
    # later large buffer higher.
    for root in sorted(plan.roots.values(),
                       key=lambda r: (not r.pinned, -r.elements,
                                      r.birth, r.death)):
        size = -(-root.elements // ARENA_ALIGN) * ARENA_ALIGN
        conflicts = sorted(
            (a for a in placed
             if a.pinned or root.pinned
             or not (a.death < root.birth or a.birth > root.death)),
            key=lambda a: a.arena_offset)
        offset = 0
        for other in conflicts:
            other_size = -(-other.elements // ARENA_ALIGN) * ARENA_ALIGN
            if offset + size <= other.arena_offset:
                break
            offset = max(offset, other.arena_offset + other_size)
        root.arena_offset = offset
        placed.append(root)
        top = max(top, offset + size)
    plan.arena_elements = top
    return plan
