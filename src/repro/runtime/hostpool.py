"""Host-side concurrency primitives for the compiled runtime.

Three small pieces shared by :mod:`repro.runtime.compiled`, the
execution engine, and the serving layer:

* :func:`resolve_host_workers` — the one place the ``REPRO_HOST_WORKERS``
  environment default is interpreted (mirroring ``REPRO_JOBS`` for the
  profiling job engine).
* :class:`StatePool` — a bounded pool of per-run execution states.  The
  compiled executable keeps one pool per bound program; N server workers
  then run truly concurrently, each on its own arena, instead of
  serializing on a single shared one.
* :func:`host_executor` — the process-wide ``ThreadPoolExecutor`` the
  operator-parallel scheduler dispatches ready nodes onto.  One shared
  pool bounds total host threads no matter how many executables or
  serving models are live; its workers spend their time inside
  GIL-releasing NumPy/BLAS kernels, which is why threads (not
  processes) are the right vehicle.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Generic, List, Optional, TypeVar

#: Bound states per compiled program when the caller does not say
#: otherwise.  Each state owns a full arena (tens of MB for
#: ImageNet-scale models), but states bind lazily — a serial caller
#: never pays for more than one.
DEFAULT_MAX_STATES = 4

T = TypeVar("T")


def resolve_host_workers(workers: Optional[int] = None) -> int:
    """Effective intra-inference worker count.

    Explicit ``workers`` wins; otherwise the ``REPRO_HOST_WORKERS``
    environment variable (default 1 = serial, the historical
    behaviour); 0 means one worker per CPU core.
    """
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_HOST_WORKERS", "") or 1)
        except ValueError:
            workers = 1
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


def host_executor() -> ThreadPoolExecutor:
    """The process-wide scheduler thread pool (created on first use).

    Sized to the machine, not to any one caller: per-run ``workers``
    only bounds how many steps one inference keeps in flight, while
    this pool caps the total threads the whole process can burn.
    """
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=max(4, min(32, os.cpu_count() or 1)),
                thread_name_prefix="repro-host")
        return _executor


class StatePoolTimeout(RuntimeError):
    """Raised when ``StatePool.acquire`` times out with the pool
    exhausted — every bound state checked out and the cap reached."""


class StatePool(Generic[T]):
    """Bounded pool of lazily-built reusable objects.

    ``acquire`` hands out a free state, binds a new one while under
    ``cap``, and otherwise blocks until a concurrent run releases one
    (or ``timeout_s`` expires).  The factory runs outside the pool
    lock, so two cold acquires bind concurrently instead of
    serializing on each other's (expensive) arena allocation.
    """

    def __init__(self, factory: Callable[[], T], cap: int) -> None:
        if cap < 1:
            raise ValueError(f"state pool cap must be >= 1, got {cap}")
        self._factory = factory
        self.cap = cap
        self._cond = threading.Condition()
        self._free: List[T] = []
        self.created = 0
        self.in_use = 0
        self.peak_in_use = 0
        self.acquires = 0
        #: Times an acquire had to wait for a release (contention gauge).
        self.waits = 0

    def acquire(self, timeout_s: Optional[float] = None) -> T:
        deadline = None if timeout_s is None else (
            time.monotonic() + timeout_s)
        state: Optional[T] = None
        build = False
        with self._cond:
            while True:
                if self._free:
                    state = self._free.pop()
                    break
                if self.created < self.cap:
                    self.created += 1
                    build = True
                    break
                self.waits += 1
                remaining = None if deadline is None else (
                    deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise StatePoolTimeout(
                        f"no free execution state after {timeout_s}s "
                        f"({self.cap} bound, all in use)")
                if not self._cond.wait(remaining):
                    raise StatePoolTimeout(
                        f"no free execution state after {timeout_s}s "
                        f"({self.cap} bound, all in use)")
        if build:
            try:
                state = self._factory()
            except BaseException:
                with self._cond:
                    self.created -= 1
                    self._cond.notify()
                raise
        with self._cond:
            self.acquires += 1
            self.in_use += 1
            if self.in_use > self.peak_in_use:
                self.peak_in_use = self.in_use
        return state

    def release(self, state: T) -> None:
        with self._cond:
            self.in_use -= 1
            self._free.append(state)
            self._cond.notify()

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "cap": self.cap,
                "states_bound": self.created,
                "in_use": self.in_use,
                "peak_in_use": self.peak_in_use,
                "acquires": self.acquires,
                "waits": self.waits,
            }
