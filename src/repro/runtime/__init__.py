"""Runtime: numerical reference executor and the mixed-parallel engine."""

from repro.runtime.numerical import execute, execute_node
from repro.runtime.engine import ExecutionEngine, ScheduleEvent, RunResult
from repro.runtime.verify import EquivalenceError, random_feeds, verify_equivalence

__all__ = [
    "execute",
    "execute_node",
    "ExecutionEngine",
    "ScheduleEvent",
    "RunResult",
    "EquivalenceError",
    "random_feeds",
    "verify_equivalence",
]
