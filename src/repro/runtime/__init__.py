"""Runtime: numerical reference executor, the buffer-planned compiled
executor, the mixed-parallel engine, and the plan-driven executor for
compiled artifacts."""

from repro.runtime.numerical import execute, execute_node
from repro.runtime.bufferplan import BufferPlan, plan_buffers
from repro.runtime.compiled import CompiledExecutable, ExecutionState
from repro.runtime.engine import ExecutionEngine, ScheduleEvent, RunResult
from repro.runtime.executor import PlanExecutor, engine_from_spec
from repro.runtime.gemmpar import (
    ShardPolicy,
    conv_row_segments,
    panel_matmul,
    plan_row_panels,
)
from repro.runtime.hostpool import (
    StatePool,
    StatePoolTimeout,
    host_executor,
    resolve_host_workers,
)
from repro.runtime.verify import EquivalenceError, random_feeds, verify_equivalence

__all__ = [
    "execute",
    "execute_node",
    "BufferPlan",
    "plan_buffers",
    "CompiledExecutable",
    "ExecutionState",
    "ExecutionEngine",
    "ScheduleEvent",
    "RunResult",
    "PlanExecutor",
    "engine_from_spec",
    "ShardPolicy",
    "conv_row_segments",
    "panel_matmul",
    "plan_row_panels",
    "StatePool",
    "StatePoolTimeout",
    "host_executor",
    "resolve_host_workers",
    "EquivalenceError",
    "random_feeds",
    "verify_equivalence",
]
