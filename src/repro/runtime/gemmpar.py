"""Deterministic intra-operator GEMM sharding: row panels + policy.

The operator-parallel scheduler (see :mod:`repro.runtime.compiled`)
historically refused to split GEMM-backed steps — conv/matmul, the
dominant cost in every conv net — because a carelessly split matmul is
*not* byte-identical to the serial call.  This module provides the
pieces that make an intra-op split safe:

* :class:`ShardPolicy` — the single knob surface for every sharding
  decision the compiled executor makes (batch-sharding of elementwise
  pipelines *and* row-panel GEMM sharding), overridable per executable,
  via :class:`~repro.pimflow.PimFlowConfig`, or the
  ``REPRO_GEMM_SHARDS`` environment variable.
* :func:`plan_row_panels` — split ``C = A @ B`` into contiguous
  row panels ``C[m0:m1] = A[m0:m1] @ B`` subject to the safety floors
  below.
* :func:`conv_row_segments` — map an im2col row panel back to
  per-image output-row boxes, so each panel sub-step can declare a
  disjoint write rectangle to the hazard-edge builder.
* :func:`panel_matmul` — the serial reference kernel the property
  tests pin the executor against.

Why M-panels are bit-safe (and what the floors guard)
-----------------------------------------------------
Panels split only the M dimension: every output row is still produced
by exactly one ``np.matmul`` call accumulating serially over the full
K extent, so no floating-point summation order ever changes.  BLAS's
internal K-blocking for a row depends only on (K, N) — which panels
leave untouched — with three empirically confirmed exceptions, each of
which the planner refuses to create:

* ``M == 1`` panels dispatch to GEMV, whose accumulation differs from
  the GEMM kernel's (``min_panel_rows`` floor).
* Tiny panels (``M*K*N`` at or below ~1e6 on OpenBLAS) take a
  small-matrix kernel whose K-blocking differs from the normal path
  (``min_panel_elems`` floor, defaulting to 2x that threshold).
* ``N == 1`` products are GEMV-shaped at any size (never sharded).

Within those floors, an M-split is byte-identical to the serial call
even when BLAS itself is threaded: threaded GEMM partitions output
rows/columns, never the K reduction, so each output element's
accumulation order is invariant under our panelling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

#: Panels below this many M*K*N multiply-accumulates may hit BLAS's
#: small-matrix kernels, whose bits differ from the normal GEMM path.
#: The observed OpenBLAS cutover is ~1e6; the default keeps 2x margin.
DEFAULT_MIN_PANEL_ELEMS = 2_000_000

#: Minimum output rows per panel: M=1 panels dispatch to GEMV, and a
#: few rows of work never amortize a sub-step's dispatch overhead.
DEFAULT_MIN_PANEL_ROWS = 16

#: Batch size below which batch-shardable elementwise steps stay
#: whole: slicing a tiny batch buys no parallelism and costs closure
#: overhead.  (Promoted from the old ``compiled.SHARD_MIN_BATCH``.)
DEFAULT_SHARD_MIN_BATCH = 4


@dataclass(frozen=True)
class ShardPolicy:
    """Every intra-run sharding decision, in one tunable object.

    ``gemm_shards`` controls row-panel GEMM sharding:

    * ``None`` (default) — follow the executable's worker width, so
      panels exist exactly when a pool can overlap them;
    * ``0`` — one panel per physical core;
    * ``1`` — GEMM sharding off (batch-sharding unaffected);
    * ``N > 1`` — force up to N panels even at worker width 1, where
      the serial loop runs them in order (useful for determinism
      testing: same panels, no pool).

    The floors are safety bounds, not tuning hints — see the module
    docstring for the bit-identity argument behind each.
    """

    gemm_shards: Optional[int] = None
    min_panel_elems: int = DEFAULT_MIN_PANEL_ELEMS
    min_panel_rows: int = DEFAULT_MIN_PANEL_ROWS
    shard_min_batch: int = DEFAULT_SHARD_MIN_BATCH

    @staticmethod
    def from_env() -> "ShardPolicy":
        """Default policy, with ``REPRO_GEMM_SHARDS`` applied if set.

        An unparseable or negative value is ignored — like
        ``REPRO_JOBS`` and ``REPRO_HOST_WORKERS``, a broken env var
        never aborts an inference; ``--gemm-shards`` is the validated
        surface.
        """
        raw = os.environ.get("REPRO_GEMM_SHARDS", "").strip()
        if not raw:
            return ShardPolicy()
        try:
            shards = int(raw)
        except ValueError:
            return ShardPolicy()
        if shards < 0:
            return ShardPolicy()
        return ShardPolicy(gemm_shards=shards)

    def with_gemm_shards(self, shards: Optional[int]) -> "ShardPolicy":
        """Copy with ``gemm_shards`` replaced (None = leave as-is)."""
        if shards is None:
            return self
        return replace(self, gemm_shards=int(shards))

    def resolve_gemm_width(self, workers: int) -> int:
        """Max GEMM panels per step for an executable of ``workers``."""
        if self.gemm_shards is None:
            return max(1, int(workers))
        if self.gemm_shards == 0:
            return max(1, os.cpu_count() or 1)
        return max(1, int(self.gemm_shards))


def shard_ranges(n: int, shards: int) -> List[Tuple[int, int]]:
    """``shards`` contiguous, non-empty [start, stop) slices of 0..n."""
    if shards <= 1:
        return [(0, n)]
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        if size:
            ranges.append((start, start + size))
        start += size
    return ranges


def plan_row_panels(m: int, k: int, n: int, width: int,
                    policy: Optional[ShardPolicy] = None,
                    align: int = 1) -> List[Tuple[int, int]]:
    """Contiguous [m0, m1) row panels for ``C[m,n] = A[m,k] @ B[k,n]``.

    Returns at most ``width`` panels covering exactly ``0..m`` in
    order, every boundary a multiple of ``align`` (the im2col output
    row width, so conv panels map to whole output rows and their write
    boxes stay rectangular).  Collapses to a single panel whenever a
    split cannot be byte-safe or profitable under ``policy``:
    ``N < 2``, panels that would drop below the row floor, or panels
    below the min-FLOPs floor.
    """
    policy = policy or ShardPolicy()
    if m <= 0:
        return [(0, m)]
    if width <= 1 or n < 2:
        return [(0, m)]
    if align <= 0 or m % align:
        align = 1
    units = m // align
    shards = min(int(width), units)
    while shards > 1:
        # The smallest panel an even unit split produces; every floor
        # must hold for it, or for no panel at all.
        rows = (units // shards) * align
        if rows >= policy.min_panel_rows \
                and rows * k * n >= policy.min_panel_elems:
            break
        shards -= 1
    if shards <= 1:
        return [(0, m)]
    return [(u0 * align, u1 * align)
            for u0, u1 in shard_ranges(units, shards)]


def conv_row_segments(m0: int, m1: int, oh: int,
                      ow: int) -> List[Tuple[int, int, int]]:
    """Per-image output-row spans of an im2col row panel.

    Rows of the (n*oh*ow, K) im2col matrix enumerate output pixels in
    (image, y, x) order; a panel aligned to ``ow`` covers whole output
    rows.  Returns ``(image, y0, y1)`` segments — the disjoint write
    rectangles the panel's sub-step declares to the hazard builder.
    """
    r0, r1 = m0 // ow, -(-m1 // ow)
    segments: List[Tuple[int, int, int]] = []
    r = r0
    while r < r1:
        img, y = divmod(r, oh)
        y_stop = min(oh, y + (r1 - r))
        segments.append((img, y, y_stop))
        r += y_stop - y
    return segments


def panel_matmul(a: np.ndarray, b: np.ndarray,
                 out: Optional[np.ndarray] = None, *,
                 width: int,
                 policy: Optional[ShardPolicy] = None,
                 align: int = 1) -> np.ndarray:
    """Reference row-panel matmul: the exact per-panel kernel calls the
    compiled executor issues, run serially in panel order.

    The executor overlaps these panels on the host pool; since each
    writes a disjoint row slice of ``out``, execution order cannot
    affect the bytes, and this serial reference is the oracle the
    property tests compare against.
    """
    m, k = a.shape
    n = b.shape[1]
    if out is None:
        out = np.empty((m, n), dtype=np.result_type(a, b))
    for m0, m1 in plan_row_panels(m, k, n, width, policy, align=align):
        np.matmul(a[m0:m1], b, out=out[m0:m1])
    return out
