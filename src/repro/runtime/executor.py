"""Plan-driven execution: the run-many half of compile-once/run-many.

:class:`PlanExecutor` loads a serialized
:class:`~repro.plan.artifact.ExecutionPlan`, rebuilds the execution
engine from the plan's ``runtime_spec`` (concrete device configs, the
channel split, command-optimization flags), and schedules inferences on
it.  Nothing in this module — or anything it imports — touches
:mod:`repro.search`: serving traffic from a plan never pays for, or
even loads, the profiler and solver.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.gpu.config import GpuConfig
from repro.gpu.device import GpuDevice
from repro.pim.config import PimConfig, PimOptimizations, PimTiming
from repro.pim.device import PimDevice
from repro.plan.artifact import ExecutionPlan, PlanFormatError
from repro.runtime.engine import ExecutionEngine, RunResult


def engine_from_spec(spec: dict) -> ExecutionEngine:
    """Rebuild an execution engine from a plan's ``runtime_spec``.

    The spec stores the *post-split* device configurations (the GPU
    config already restricted to its share of the memory channels, the
    PIM config over the PIM-enabled channels), so the rebuilt engine
    prices every kernel exactly as the compiling toolchain did.
    """
    try:
        gpu = GpuDevice(GpuConfig(**spec["gpu_config"]),
                        write_through=bool(spec["write_through"]))
        pim: Optional[PimDevice] = None
        if spec.get("pim_config") is not None:
            pim_cfg_data = dict(spec["pim_config"])
            pim_cfg_data["timing"] = PimTiming(**pim_cfg_data["timing"])
            opts = PimOptimizations(**spec["pim_opts"])
            pim = PimDevice(PimConfig(**pim_cfg_data), opts)
        return ExecutionEngine(
            gpu, pim,
            sync_overhead_us=spec["sync_overhead_us"],
            host_io=spec["host_io"],
            pcie_bytes_per_us=spec["pcie_bytes_per_us"])
    except (KeyError, TypeError) as exc:
        raise PlanFormatError(f"invalid runtime spec: {exc}") from exc


class PlanExecutor:
    """Executes a compiled plan, repeatedly, with no compile-time code."""

    def __init__(self, plan: Union[ExecutionPlan, str, Path],
                 engine: Optional[ExecutionEngine] = None) -> None:
        if not isinstance(plan, ExecutionPlan):
            plan = ExecutionPlan.load(plan)
        self.plan = plan
        self.engine = engine or engine_from_spec(plan.runtime_spec)

    def run(self) -> RunResult:
        """Schedule one inference of the plan's compiled graph."""
        return self.engine.run_plan(self.plan)

    def infer(self, feeds, compiled: bool = True, elide: bool = True,
              workers: Optional[int] = None,
              max_states: Optional[int] = None, fuse: bool = True,
              gemm_shards: Optional[int] = None):
        """Numerically execute the plan's graph on the given feeds.

        Routes through the engine's compiled-executable cache, so a
        serving loop calling this repeatedly binds the graph once and
        then runs pure kernel dispatch (``compiled=False`` falls back
        to the interpreted oracle).  ``workers`` enables the
        operator-parallel scheduler inside the run; ``max_states`` caps
        the pool of concurrent execution states; ``fuse=False``
        disables the executor's internal elementwise fusion;
        ``gemm_shards`` caps intra-op GEMM row-panel sharding (None
        defers to ``REPRO_GEMM_SHARDS``).  Concurrent calls are safe
        and do not serialize.
        """
        policy = None
        if gemm_shards is not None:
            from repro.runtime.gemmpar import ShardPolicy
            policy = ShardPolicy.from_env().with_gemm_shards(gemm_shards)
        return self.engine.infer(self.plan.graph, feeds,
                                 compiled=compiled, elide=elide,
                                 workers=workers, max_states=max_states,
                                 fuse=fuse, policy=policy)

    def host_stats(self) -> dict:
        """State-pool and concurrency gauges for this plan's engine."""
        return self.engine.host_stats()

    def buffer_stats(self) -> dict:
        """Buffer-plan statistics for the plan's graph.

        Prefers the stats recorded in the plan artifact at compile
        time; recomputes from the graph when the plan predates the
        buffer planner.
        """
        if self.plan.buffer_plan:
            return dict(self.plan.buffer_plan)
        from repro.runtime.bufferplan import plan_buffers
        return plan_buffers(self.plan.graph).stats()
