"""Compile-once executor over a planned arena, concurrency-ready.

The module splits repeat inference into two halves:

* :class:`_ProgramSpec` — the immutable **program**: buffer plan, run
  shapes, read-only float32 weights, prepared kernel operands
  (contiguous weight reshapes, BatchNorm denominators), and the step
  dependency graph.  One spec is shared by every concurrent run.
* :class:`ExecutionState` — the cheap per-run half: one arena, one
  scratch holder, and the node closures bound against *this* state's
  arena views.  States are pooled (:class:`~repro.runtime.hostpool.
  StatePool`), so N server workers execute truly concurrently with no
  global run lock — the serialization the old single-arena design
  imposed is gone from the steady state.

Per run there is no toposort, no dict lookup, no attribute parsing,
and (for planned tensors) no allocation: every tensor's bytes live at
a fixed offset of the state's arena, elided Slice/Concat/Pad nodes
from :mod:`repro.transform.memopt` cost nothing, and convolutions read
pre-padded arena views instead of calling ``np.pad`` per invocation.

**Operator-parallel scheduling.**  With ``workers > 1`` a state also
carries a dependency-counted step graph and dispatches ready steps
onto the shared host thread pool.  Correctness needs more than
dataflow edges: the arena packs lifetime-disjoint buffers into the
same bytes, so the graph also carries WAR/WAW hazard edges computed
from the buffer plan (exact rectangle intersection within a root,
arena-extent intersection across roots).  Every pair of conflicting
accesses keeps its serial order, which is what makes the parallel
schedule *byte-identical* to serial execution.  Batch-shardable steps
(depthwise convolutions, BatchNormalization, fused/standalone
elementwise ops — all pure per-element ufunc pipelines) are split into
per-batch-slice sub-steps at batch >= 4 so a single wide node can
occupy several workers; GEMM-backed steps are never sharded, because
BLAS kernel selection depends on the operand shapes and splitting the
M dimension could change the floating-point reduction it runs.

**Elementwise fusion.**  By default the executable applies the
``fuse_elementwise`` pass to its graph before binding
(``fuse=False`` is the ablation): maximal chains/DAGs of pure
elementwise ops become single ``FusedElementwise`` steps that evaluate
the whole sub-expression in one blocked sweep over the output.
Intermediates live in reusable cache-sized scratch tiles
(:data:`TILE_ELEMENTS` each), never in the arena, so the buffer
planner allocates nothing for fused interiors and both latency and
arena peak drop.  Convolutions likewise skip materializing im2col:
:func:`~repro.runtime.numerical.conv_window_view` builds a read-only
``as_strided`` patch view that feeds the GEMM directly when the 2-D
reshape is expressible as a view, and otherwise collapses to a single
vectorized gather into scratch.

Semantics contract: outputs are **byte-identical** to the interpreted
:func:`repro.runtime.numerical.execute` oracle, serial or parallel,
fused or unfused.  Every specialized closure re-expresses the
interpreter's exact floating-point op sequence (same ufuncs, same
operand order, same GEMM operands) with the destination redirected
into the arena; anything without a proven bit-identical specialization
falls back to calling the registered kernel and copying the result
into place.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from queue import Empty, SimpleQueue
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.runtime.bufferplan import BufferPlan, plan_buffers
from repro.runtime.gemmpar import (
    DEFAULT_SHARD_MIN_BATCH,
    ShardPolicy,
    conv_row_segments,
    plan_row_panels,
    shard_ranges as _shard_ranges,
)
from repro.runtime.hostpool import (
    DEFAULT_MAX_STATES,
    StatePool,
    host_executor,
    resolve_host_workers,
)
from repro.runtime.numerical import (
    IM2COL_MAX_ELEMENTS,
    KERNELS,
    _node_results,
    compile_elementwise,
    conv_window_view,
    graph_initializers_f32,
    reshape_as_view,
    stable_sigmoid,
    stable_silu,
)

#: Backwards-compatible alias: the batch-shard floor now lives on
#: :class:`~repro.runtime.gemmpar.ShardPolicy` (``shard_min_batch``),
#: the single knob surface for every intra-run sharding decision.
SHARD_MIN_BATCH = DEFAULT_SHARD_MIN_BATCH

#: Float32 elements per fused-expression scratch tile (256 KB): small
#: enough that a handful of live tiles sit in L2 while the fused sweep
#: streams over the output, large enough that per-tile Python dispatch
#: is noise.  Per-element ufuncs are tiling-invariant, so the tile size
#: never affects the bytes produced.
TILE_ELEMENTS = 64 * 1024

#: Operand positions of a fused elementwise kernel that may exactly
#: alias its ``out=`` buffer: the kernel never re-reads the operand
#: after its first write of ``out``.  Binary ufuncs tolerate either
#: operand; everything else (single-input maps, and notably
#: BatchNormalization, whose param operands are read *after* ``out``
#: is first written) only the data input.
_FUSED_ALIAS_SAFE = {
    "Add": (0, 1), "Mul": (0, 1), "Sub": (0, 1), "Div": (0, 1),
}


class _Scratch:
    """Per-thread scratch pools, sized during bind, allocated lazily.

    Closures capture this holder and request shaped views at call time
    (``a``: im2col columns / contiguous input staging, ``b``: conv
    output staging / depthwise tap products).  Buffers are
    thread-local: under the operator-parallel scheduler several steps
    (or batch shards of one step) run concurrently on pool threads and
    each must stage into private memory.  Sizes are frozen once
    binding completes; each thread then allocates its buffers once, on
    first use.
    """

    __slots__ = ("need_a", "need_b", "need_slot", "num_slots", "_tls")

    def __init__(self) -> None:
        self.need_a = 0
        self.need_b = 0
        #: Fused-expression tile slots: one ``need_slot``-element slot
        #: per expression entry, allocated as a single block so a whole
        #: fused group's intermediates stay hot in cache.
        self.need_slot = 0
        self.num_slots = 0
        self._tls = threading.local()

    def _pool_a(self) -> np.ndarray:
        # The ``a`` pool doubles as the fused-slot block: a thread runs
        # one step at a time, and no single step stages im2col columns
        # *and* fused-tile intermediates, so the two uses never overlap
        # within a thread.
        need = max(self.need_a, self.need_slot * self.num_slots)
        buf = getattr(self._tls, "a", None)
        if buf is None or buf.size < need:
            buf = self._tls.a = np.empty(need, dtype=np.float32)
        return buf

    def view_a(self, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._pool_a()
        n = 1
        for d in shape:
            n *= d
        return buf[:n].reshape(shape)

    def view_b(self, shape: Tuple[int, ...]) -> np.ndarray:
        buf = getattr(self._tls, "b", None)
        if buf is None or buf.size < self.need_b:
            buf = self._tls.b = np.empty(self.need_b, dtype=np.float32)
        n = 1
        for d in shape:
            n *= d
        return buf[:n].reshape(shape)

    def view_slot(self, slot: int, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._pool_a()
        n = 1
        for d in shape:
            n *= d
        start = slot * self.need_slot
        return buf[start:start + n].reshape(shape)


def _capture_shapes(graph: Graph,
                    feeds: Mapping[str, np.ndarray]) -> Dict[str, tuple]:
    """Exact per-tensor run shapes for feeds that differ from declared.

    Runs the interpreted kernels once (freeing tensors as their last
    consumer passes, like ``execute``), recording every shape.  Only
    needed for batch-polymorphic execution; when feeds match the
    declared shapes the graph's own tensor table is used instead.
    """
    inits = graph_initializers_f32(graph)
    shapes: Dict[str, tuple] = {
        name: tuple(info.shape) for name, info in graph.tensors.items()}
    env: Dict[str, np.ndarray] = {
        name: np.asarray(feeds[name], dtype=np.float32)
        for name in graph.inputs}
    for name, arr in env.items():
        shapes[name] = arr.shape
    order = graph.toposort()
    remaining: Dict[str, int] = {}
    for n in order:
        for t in n.inputs:
            remaining[t] = remaining.get(t, 0) + 1
    keep = set(graph.outputs) | set(graph.inputs)
    for n in order:
        fn = KERNELS.get(n.op_type)
        if fn is None:
            raise NotImplementedError(f"no numpy kernel for op {n.op_type!r}")
        result = fn(n, [env[t] if t in env else inits[t] for t in n.inputs])
        for t, value in zip(n.outputs, _node_results(n, result)):
            env[t] = value
            shapes[t] = value.shape
        for t in n.inputs:
            remaining[t] -= 1
            if remaining[t] == 0 and t not in keep and t in env:
                del env[t]
    return shapes


def _activation_inplace(node: Node) -> Optional[Callable[[np.ndarray], None]]:
    """In-place variant of ``apply_fused_activation`` for arena views."""
    kind = node.attr("activation")
    if not kind:
        return None
    if kind == "relu":
        def act(out: np.ndarray) -> None:
            np.maximum(out, 0.0, out=out)
        return act
    if kind == "clip":
        lo = node.attr("activation_min", 0.0)
        hi = node.attr("activation_max", 6.0)

        def act(out: np.ndarray) -> None:
            np.clip(out, lo, hi, out=out)
        return act
    if kind == "silu":
        def act(out: np.ndarray) -> None:
            stable_silu(out, out=out)
        return act
    if kind == "sigmoid":
        def act(out: np.ndarray) -> None:
            stable_sigmoid(out, out=out)
        return act
    if kind == "gelu":
        def act(out: np.ndarray) -> None:
            np.copyto(out, 0.5 * out * (1.0 + np.tanh(
                0.7978845608 * (out + 0.044715 * out ** 3))))
        return act
    raise ValueError(f"unknown fused activation {kind!r}")


#: Minimum contiguous run (elements, ~8 KB of f32) a fused-sweep tile
#: must keep.  Slicing an inner axis of a batch-N NHWC tensor can
#: shatter a tile into byte-scale strided runs whose traffic costs far
#: more than an oversized-but-contiguous tile costs in cache misses.
_TILE_MIN_RUN = 2048


def _tile_plan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(axis, chunk) tiling a fused sweep to ~:data:`TILE_ELEMENTS`.

    A tile slices one axis and keeps every other axis whole.  The axis
    is chosen for memory locality, not just tile size: slicing axis
    ``a`` of a C-order array yields contiguous runs of
    ``chunk * prod(shape[a+1:])`` elements, and once a run drops below
    :data:`_TILE_MIN_RUN` (batch-8 NHWC sliced along channels, say) the
    strided traffic dwarfs any cache win from staying under budget.  So
    walk axes outermost-first, require the chunk=1 tile to be within 4x
    budget and the run to reach the floor (growing the chunk if
    needed), and take the first axis that qualifies.  Per-element
    ufuncs are tiling-invariant, so the choice never affects bytes.
    """
    if not shape:
        return 0, 1
    total = 1
    for d in shape:
        total *= d
    if total <= TILE_ELEMENTS:
        return 0, shape[0]
    inner = total
    for axis, d in enumerate(shape):
        inner //= d
        if d == 1:
            continue
        if total // d > 4 * TILE_ELEMENTS:
            continue  # even a chunk=1 tile dwarfs the budget
        chunk = max(1, TILE_ELEMENTS * d // total)
        if chunk * inner < _TILE_MIN_RUN:
            chunk = -(-_TILE_MIN_RUN // inner)
        if chunk > d:
            continue  # axis too short to reach a decent run
        return axis, chunk
    # Nothing qualifies (oversized inner block below every axis): whole
    # outermost-index slices keep each tile one maximal contiguous run.
    return 0, 1


def _graph_width(dep_counts: List[int],
                 dependents: List[List[int]]) -> int:
    """Max antichain size of the BFS layering of the step graph.

    A cheap proxy for how much operator parallelism the hazard graph
    actually exposes: chain-shaped programs measure 1, and dispatching
    them through the parallel scheduler is pure overhead.
    """
    counts = list(dep_counts)
    level = [i for i, c in enumerate(counts) if c == 0]
    width = 1 if level else 0
    while level:
        width = max(width, len(level))
        nxt: List[int] = []
        for i in level:
            for j in dependents[i]:
                counts[j] -= 1
                if counts[j] == 0:
                    nxt.append(j)
        level = nxt
    return width


# ----------------------------------------------------------------------
# Step access regions and the hazard-edged dependency graph
# ----------------------------------------------------------------------
# A region is (kind, key, box): kind "arena" keys a buffer-plan root
# (key None = unknown storage, conservatively conflicting with every
# arena region), kind "priv" keys a state-private buffer by tensor
# name.  box is a per-dimension (start, stop) rectangle inside the
# keyed buffer, or None for the whole buffer.
_Region = Tuple[str, Optional[str], Optional[Tuple[Tuple[int, int], ...]]]


def _boxes_overlap(a, b) -> bool:
    if a is None or b is None:
        return True
    if len(a) != len(b):
        return True  # rank mismatch: be conservative
    return all(s1 < e2 and s2 < e1 for (s1, e1), (s2, e2) in zip(a, b))


def _build_step_graph(accesses, plan: BufferPlan):
    """Dependency counts + dependents for the operator-parallel run.

    For steps i < j (their serial/topological order), an edge i -> j is
    added whenever the two touch overlapping memory and at least one
    writes — RAW, WAR, and WAW all collapse to "conflicting accesses
    keep serial order", which is exactly the condition under which any
    dependency-respecting parallel order is byte-identical to serial.
    Same-root accesses compare exact rectangles (so concat siblings
    co-allocated into one root stay parallel); different roots conflict
    iff the first-fit packer overlapped their arena extents (lifetime
    reuse), in which case all their accesses serialize.
    """
    per_key: Dict[Tuple[str, Optional[str]], List[tuple]] = {}
    for idx, (reads, writes) in enumerate(accesses):
        for kind, key, box in reads:
            per_key.setdefault((kind, key), []).append((idx, box, False))
        for kind, key, box in writes:
            per_key.setdefault((kind, key), []).append((idx, box, True))

    edges = set()
    for entries in per_key.values():
        for x in range(len(entries)):
            i, bi, wi = entries[x]
            for y in range(x + 1, len(entries)):
                j, bj, wj = entries[y]
                if i == j or not (wi or wj):
                    continue
                if _boxes_overlap(bi, bj):
                    edges.add((i, j) if i < j else (j, i))

    # Cross-root hazards: arena extents that the packer overlapped.
    spans: List[Tuple[Tuple[int, int], Tuple[str, Optional[str]]]] = []
    for kind_key in per_key:
        kind, key = kind_key
        if kind != "arena":
            continue
        if key is None:
            spans.append(((0, max(1, plan.arena_elements)), kind_key))
            continue
        alloc = plan.roots.get(key)
        if alloc is not None and alloc.arena_offset >= 0:
            spans.append(((alloc.arena_offset,
                           alloc.arena_offset + alloc.elements), kind_key))
    spans.sort(key=lambda item: item[0])
    for a in range(len(spans)):
        (s1, e1), ka = spans[a]
        for b in range(a + 1, len(spans)):
            (s2, e2), kb = spans[b]
            if s2 >= e1:
                break
            for i, _, wi in per_key[ka]:
                for j, _, wj in per_key[kb]:
                    if i == j or not (wi or wj):
                        continue
                    edges.add((i, j) if i < j else (j, i))

    dep_counts = [0] * len(accesses)
    dependents: List[List[int]] = [[] for _ in accesses]
    for i, j in sorted(edges):
        dependents[i].append(j)
        dep_counts[j] += 1
    return dep_counts, dependents


class _ProgramSpec:
    """The immutable compiled program for one set of feed shapes.

    Holds everything concurrent states share read-only: the graph, the
    resolved run shapes, the buffer plan, float32 weights, prepared
    kernel operands, and (once the first parallel state binds) the
    hazard-edged step dependency graph.  Specs never touch an arena —
    that is the state's job.
    """

    def __init__(self, graph: Graph, shapes: Dict[str, tuple],
                 *, elide: bool) -> None:
        self.graph = graph
        self.shapes = shapes
        self.elide = elide
        self.plan: BufferPlan = plan_buffers(graph, shapes, elide=elide)
        self.inits = graph_initializers_f32(graph)
        self._lock = threading.Lock()
        self._prepared: Dict[tuple, np.ndarray] = {}
        self._step_graphs: Dict[int, tuple] = {}
        #: Step count per kind ("gemm", "dwconv", "elementwise",
        #: "fused", "copy", "other"), recorded by the first state to
        #: bind; binding is deterministic, so every state agrees.
        self.step_kind_counts: Optional[Dict[str, int]] = None
        #: Node name -> sub-step count for intra-op sharded steps
        #: (GEMM row panels), recorded by the first state to bind.
        self.shard_fanout: Optional[Dict[str, int]] = None
        #: Node name -> toposort position, matching the order the
        #: buffer plan's root lifetimes are expressed in.
        self.node_pos: Dict[str, int] = {
            n.name: i for i, n in enumerate(graph.toposort())}

    def prepared(self, key: tuple,
                 build: Callable[[], np.ndarray]) -> np.ndarray:
        """Memoized read-only operand (contiguous weight reshape, BN
        denominator, ...) shared across all states of this program."""
        with self._lock:
            arr = self._prepared.get(key)
        if arr is None:
            built = build()
            with self._lock:
                arr = self._prepared.setdefault(key, built)
        return arr

    def packed_weight(self, arr: np.ndarray,
                      shape: Tuple[int, ...]) -> np.ndarray:
        """Contiguous ``arr.reshape(shape)``, cached per (array, shape,
        dtype) so nodes sharing one initializer — and repeat binds of
        the same node — share a single re-layout."""
        key = ("packed", id(arr), arr.shape, tuple(shape), arr.dtype.str)
        return self.prepared(
            key, lambda: np.ascontiguousarray(arr.reshape(shape)))

    def step_graph(self, key, accesses):
        """The (dep_counts, dependents, width) triple for ``accesses``.

        Binding is deterministic given the sharding configuration —
        ``key`` is the (batch shards, gemm panel width) pair — so every
        state bound at the same key records an identical access list;
        the graph is computed once per key and shared.
        """
        with self._lock:
            graph = self._step_graphs.get(key)
        if graph is None:
            counts, deps = _build_step_graph(accesses, self.plan)
            graph = (counts, deps, _graph_width(counts, deps))
            with self._lock:
                graph = self._step_graphs.setdefault(key, graph)
        return graph

    def max_width(self) -> int:
        """Widest hazard graph computed so far (1 if none were)."""
        with self._lock:
            widths = [g[2] for g in self._step_graphs.values()]
        return max(widths, default=1)


class ExecutionState:
    """One graph bound to one private arena for one run at a time.

    The cheap, per-run half of the program/state split: acquiring a
    state from the pool and running it touches no shared mutable
    memory, so concurrent states proceed with zero lock contention.
    ``shards > 1`` splits batch-shardable steps into per-slice
    sub-steps; ``parallel=True`` additionally materializes the step
    dependency graph so :meth:`run` can dispatch ready steps onto the
    shared host executor.  ``policy`` governs both batch-sharding
    floors and row-panel GEMM sharding (see
    :class:`~repro.runtime.gemmpar.ShardPolicy`).
    """

    def __init__(self, spec: _ProgramSpec, *, shards: int = 1,
                 parallel: bool = False,
                 policy: Optional[ShardPolicy] = None) -> None:
        self.spec = spec
        self.shards = max(1, int(shards))
        self.policy = policy if policy is not None else ShardPolicy()
        #: Max row panels a GEMM-backed step may split into.
        self._gemm_width = self.policy.resolve_gemm_width(self.shards)
        graph = spec.graph
        self._scratch = _Scratch()
        self._steps: List[Callable[[], None]] = []
        self._step_kinds: List[str] = []
        #: Per step: (node name or None, shard index, shard count).
        #: Shard count > 1 marks intra-op sub-steps (GEMM row panels,
        #: batch shards) for the profiling and stats surfaces.
        self._step_meta: List[Tuple[Optional[str], int, int]] = []
        self._accesses: List[Tuple[List[_Region], List[_Region]]] = []
        #: Tensors whose bytes live in a state-private buffer instead
        #: of the arena, mapped to the buffer's owning tensor name.
        #: View ops over a private buffer propagate the owner, so
        #: hazard regions keep pointing at the memory actually read —
        #: not at the (unused) planned arena slot.
        self._priv: Dict[str, str] = {}
        # Arena zeroed exactly once: pinned roots keep margins and
        # elided-Pad borders zero across runs, everything else is fully
        # rewritten every run.
        self.arena = np.zeros(spec.plan.arena_elements, dtype=np.float32)
        self._views: Dict[str, np.ndarray] = {}
        self._root_arrays: Dict[str, np.ndarray] = {}
        self._bind()
        self._input_views = [(name, self._views[name])
                             for name in graph.inputs]
        self._output_views = {t: self._views.get(t) for t in graph.outputs}
        if spec.step_kind_counts is None:
            counts: Dict[str, int] = {}
            for kind in self._step_kinds:
                counts[kind] = counts.get(kind, 0) + 1
            spec.step_kind_counts = counts
        if spec.shard_fanout is None:
            fanout: Dict[str, int] = {}
            for name, _idx, total in self._step_meta:
                if name is not None and total > 1:
                    fanout[name] = total
            spec.shard_fanout = fanout
        self._dep_counts: Optional[List[int]] = None
        self._dependents: Optional[List[List[int]]] = None
        #: Max antichain width of the hazard graph; 1 until a parallel
        #: state computes it.  Chain-shaped programs keep width 1 and
        #: take the serial fast path in :meth:`run` no matter how many
        #: workers the caller configured.
        self.width = 1
        if parallel:
            self._dep_counts, self._dependents, self.width = \
                spec.step_graph((self.shards, self._gemm_width),
                                self._accesses)

    # ------------------------------------------------------------------
    # View resolution
    # ------------------------------------------------------------------
    def _root_interior(self, root: str) -> np.ndarray:
        if root in self._root_arrays:
            return self._root_arrays[root]
        alloc = self.spec.plan.roots[root]
        start = alloc.arena_offset
        arr = self.arena[start:start + alloc.elements].reshape(
            alloc.padded_shape)
        interior = arr[tuple(
            slice(b, b + d) for d, (b, _) in zip(alloc.shape, alloc.margins))]
        self._root_arrays[root] = interior
        return interior

    def _rect_view(self, tensor: str) -> np.ndarray:
        st = self.spec.plan.storage[tensor]
        if st.root in self.spec.inits:
            base = self.spec.inits[st.root]
        else:
            base = self._root_interior(st.root)
        if st.root == tensor:
            return base
        return base[tuple(slice(o, o + d)
                          for o, d in zip(st.offset, st.shape))]

    def _view(self, tensor: str) -> np.ndarray:
        v = self._views.get(tensor)
        if v is None:
            if tensor in self.spec.inits:
                # Weights are never laid into the arena; they are
                # shared read-only across runs and graphs.
                v = self.spec.inits[tensor]
            else:
                v = self._rect_view(tensor)
            self._views[tensor] = v
        return v

    def _padded_conv_view(self, tensor: str,
                          pads: Tuple[int, int, int, int]) -> np.ndarray:
        """The pre-padded read window for a served convolution input."""
        st = self.spec.plan.storage[tensor]
        alloc = self.spec.plan.roots[st.root]
        arr = self.arena[alloc.arena_offset:
                         alloc.arena_offset + alloc.elements].reshape(
            alloc.padded_shape)
        pt, pl, pb, pr = pads
        extra = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        index = []
        for d in range(4):
            before, _ = alloc.margins[d]
            off = st.offset[d]
            lo, hi = extra[d]
            index.append(slice(before + off - lo,
                               before + off + st.shape[d] + hi))
        return arr[tuple(index)]

    # ------------------------------------------------------------------
    # Access-region bookkeeping
    # ------------------------------------------------------------------
    def _region(self, tensor: str,
                batch: Optional[Tuple[int, int]] = None) -> Optional[_Region]:
        """Memory region an access of ``tensor`` touches (None for
        read-only weights).  ``batch`` narrows dimension 0 to one
        shard's [start, stop) slice."""
        spec = self.spec
        owner = self._priv.get(tensor)
        if owner is not None:
            box = None
            if owner == tensor and batch is not None:
                # Aliases of the buffer (slices/transposes of it) stay
                # whole-buffer conservative; only the owner itself maps
                # batch slices onto dimension 0.
                shape = spec.shapes[tensor]
                box = ((batch[0], batch[1]),) + tuple(
                    (0, d) for d in shape[1:])
            return ("priv", owner, box)
        if tensor in spec.inits:
            return None
        st = spec.plan.storage.get(tensor)
        if st is None:
            return ("arena", None, None)
        if st.root in spec.inits:
            return None
        if not st.is_rect:
            return ("arena", st.root, None)
        box = tuple((o, o + d) for o, d in zip(st.offset, st.shape))
        if batch is not None:
            o0 = st.offset[0]
            box = ((o0 + batch[0], o0 + batch[1]),) + box[1:]
        return ("arena", st.root, box)

    def _subregion(self, tensor: str, axis: int, start: int,
                   extent: int) -> Optional[_Region]:
        reg = self._region(tensor)
        if reg is None or reg[2] is None:
            return reg
        kind, key, box = reg
        lo = box[axis][0] + start
        return (kind, key,
                box[:axis] + ((lo, lo + extent),) + box[axis + 1:])

    def _add_step(self, fn: Callable[[], None],
                  reads: List[Optional[_Region]],
                  writes: List[Optional[_Region]],
                  kind: str = "other",
                  node: Optional[str] = None,
                  shard: Tuple[int, int] = (0, 1)) -> None:
        self._steps.append(fn)
        self._step_kinds.append(kind)
        self._step_meta.append((node, shard[0], shard[1]))
        self._accesses.append((
            [r for r in reads if r is not None],
            [w for w in writes if w is not None]))

    def _shard_count(self, n: int) -> int:
        if self.shards <= 1 or n < self.policy.shard_min_batch:
            return 1
        return min(self.shards, n)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _bind(self) -> None:
        graph = self.spec.graph
        for name in graph.inputs:
            self._view(name)
        for node in graph.toposort():
            op = node.op_type
            if op in ("Identity", "Slice", "Reshape", "Flatten", "Transpose"):
                self._bind_view_op(node)
            elif op == "Concat":
                self._bind_concat(node)
            elif op == "Pad":
                self._bind_pad(node)
            elif op == "Conv":
                self._bind_conv(node)
            elif op in ("Gemm", "MatMul"):
                self._bind_gemm(node)
            elif op == "BatchNormalization":
                self._bind_bn(node)
            elif op == "FusedElementwise":
                self._bind_fused(node)
            elif op in _UNARY_OUT or op in _BINARY_OUT or op == "Clip":
                self._bind_elementwise(node)
            else:
                self._bind_generic(node)
        for t in graph.outputs:
            if t not in self.spec.inits:
                self._view(t)

    def _bind_view_op(self, node: Node) -> None:
        src = self._view(node.inputs[0])
        out = node.outputs[0]
        op = node.op_type
        src_owner = self._priv.get(node.inputs[0])
        if op == "Identity":
            self._views[out] = src
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        if op == "Slice":
            axis = int(node.attr("axis")) % src.ndim
            index = [slice(None)] * src.ndim
            index[axis] = slice(int(node.attr("start")),
                                int(node.attr("end")))
            self._views[out] = src[tuple(index)]
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        if op == "Transpose":
            perm = node.attr("perm", tuple(reversed(range(src.ndim))))
            self._views[out] = np.transpose(src, perm)
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        # Reshape / Flatten: a view when numpy can express the
        # reinterpretation without a copy; otherwise the tensor gets a
        # private buffer and a per-run copy — exactly the copy the
        # interpreter's ``x.reshape`` would make.
        shape = self.spec.shapes[out]
        try:
            candidate = src.reshape(shape)
        except ValueError:
            candidate = None
        if candidate is not None and np.shares_memory(candidate, src):
            self._views[out] = candidate
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        priv = np.empty(shape, dtype=np.float32)
        self._views[out] = priv
        self._priv[out] = out

        def step(src=src, priv=priv, shape=shape) -> None:
            np.copyto(priv, src.reshape(shape))
        self._add_step(step, [self._region(node.inputs[0])],
                       [self._region(out)], kind="copy")

    def _bind_concat(self, node: Node) -> None:
        out = node.outputs[0]
        out_st = self.spec.plan.storage[out]
        out_view = self._view(out)
        axis = int(node.attr("axis")) % out_view.ndim
        cursor = 0
        copies = []
        reads: List[Optional[_Region]] = []
        writes: List[Optional[_Region]] = []
        for t in node.inputs:
            extent = self.spec.shapes[t][axis]
            st = self.spec.plan.storage.get(t)
            aliased = (
                st is not None and out_st.is_rect and st.is_rect
                and st.root == out_st.root
                and st.offset == tuple(
                    o + (cursor if d == axis else 0)
                    for d, o in enumerate(out_st.offset)))
            if not aliased:
                index = [slice(None)] * out_view.ndim
                index[axis] = slice(cursor, cursor + extent)
                copies.append((out_view[tuple(index)], self._view(t)))
                reads.append(self._region(t))
                writes.append(self._subregion(out, axis, cursor, extent))
            cursor += extent
        if copies:
            def step(copies=copies) -> None:
                for dst, src in copies:
                    np.copyto(dst, src)
            self._add_step(step, reads, writes, kind="copy")

    def _bind_pad(self, node: Node) -> None:
        src_name, out = node.inputs[0], node.outputs[0]
        pads = tuple(tuple(p) for p in node.attr("pads"))
        out_st = self.spec.plan.storage[out]
        st = self.spec.plan.storage.get(src_name)
        aliased = (
            st is not None and st.is_rect and out_st.is_rect
            and st.root == out_st.root
            and st.offset == tuple(
                o + before for o, (before, _) in zip(out_st.offset, pads)))
        if aliased:
            self._view(out)  # border is arena zeros on a pinned root
            return
        self._bind_generic(node)

    # -- Convolution ----------------------------------------------------
    def _conv_input(self, node: Node,
                    pads: Tuple[int, int, int, int]):
        """(get_xp, static) — padded input window and whether it's free."""
        x_name = node.inputs[0]
        x = self._view(x_name)
        pt, pl, pb, pr = pads
        if self.spec.plan.padded_reads.get(node.name):
            xp = self._padded_conv_view(x_name, pads)
            return (lambda: xp), True
        if not (pt or pl or pb or pr):
            return (lambda: x), True
        pad_spec = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        return (lambda: np.pad(x, pad_spec)), False

    def _emit_conv_panels(self, node: Node, x_name: str, out_name: str,
                          panels: List[Tuple[int, int]], oh: int, ow: int,
                          dst2d: np.ndarray, w2d: np.ndarray,
                          bias: Optional[np.ndarray],
                          act: Optional[Callable[[np.ndarray], None]], *,
                          a2d: Optional[np.ndarray] = None,
                          gather_src: Optional[np.ndarray] = None,
                          gather_k: int = 0) -> bool:
        """Bind one conv GEMM as per-row-panel sub-steps.

        Each panel is ``dst2d[m0:m1] = a2d[m0:m1] @ w2d`` — the exact
        serial kernel restricted to a row slice, so the bytes cannot
        differ (see :mod:`repro.runtime.gemmpar` for the planner's
        bit-safety floors).  Panels are aligned to ``ow``, so each
        declares disjoint per-image output-row write boxes and the
        hazard builder leaves them unordered: they overlap on the pool,
        and downstream consumers of one panel's rows may start before
        the last panel lands.  ``a2d`` feeds panels straight off the
        bind-time im2col view; otherwise each panel gathers its rows of
        ``gather_src`` (an (n, oh, ow, ...) window view, ``gather_k``
        columns) into thread-local scratch first.  Returns False —
        caller falls back to the serial step — when the destination is
        not an arena rectangle (without disjoint boxes the scheduler
        would serialize the panels for nothing).
        """
        out_reg = self._region(out_name)
        if out_reg is None or out_reg[2] is None:
            return False
        reg_kind, reg_key, obox = out_reg
        o_img, o_y = obox[0][0], obox[1][0]
        scratch = self._scratch
        x_reg = self._region(x_name)
        total = len(panels)
        for idx, (m0, m1) in enumerate(panels):
            segs = conv_row_segments(m0, m1, oh, ow)
            writes: List[Optional[_Region]] = [
                (reg_kind, reg_key,
                 ((o_img + img, o_img + img + 1),
                  (o_y + y0, o_y + y1)) + obox[2:])
                for img, y0, y1 in segs]
            dpan = dst2d[m0:m1]
            if a2d is not None:
                apan = a2d[m0:m1]

                def step(apan=apan, dpan=dpan) -> None:
                    np.matmul(apan, w2d, out=dpan)
                    if bias is not None:
                        np.add(dpan, bias, out=dpan)
                    if act is not None:
                        act(dpan)
            else:
                rows = m1 - m0
                scratch.need_a = max(scratch.need_a, rows * gather_k)

                def step(dpan=dpan, segs=segs, rows=rows) -> None:
                    cols = scratch.view_a((rows, gather_k))
                    cur = 0
                    for img, y0, y1 in segs:
                        nrow = (y1 - y0) * ow
                        seg = gather_src[img, y0:y1]
                        np.copyto(cols[cur:cur + nrow].reshape(seg.shape),
                                  seg)
                        cur += nrow
                    np.matmul(cols, w2d, out=dpan)
                    if bias is not None:
                        np.add(dpan, bias, out=dpan)
                    if act is not None:
                        act(dpan)
            self._add_step(step, [x_reg], writes, kind="gemm",
                           node=node.name, shard=(idx, total))
        return True

    def _bind_conv(self, node: Node) -> None:
        spec = self.spec
        w_name = node.inputs[1]
        bias_name = node.inputs[2] if len(node.inputs) > 2 else None
        if w_name not in spec.inits or (
                bias_name is not None and bias_name not in spec.inits):
            self._bind_generic(node)
            return
        w = spec.inits[w_name]
        bias = spec.inits[bias_name] if bias_name else None
        strides = node.attr("strides", (1, 1))
        pads = tuple(node.attr("pads", (0, 0, 0, 0)))
        group = int(node.attr("group", 1))
        x_name, out_name = node.inputs[0], node.outputs[0]
        n, h, wdt, cin = spec.shapes[x_name]
        kh, kw, cin_g, cout = w.shape
        sh, sw = strides
        pt, pl, pb, pr = pads
        if group < 1 or cin % group or cout % group \
                or cin_g * group != cin:
            self._bind_generic(node)
            return
        oh = (h + pt + pb - kh) // sh + 1
        ow = (wdt + pl + pr - kw) // sw + 1
        dst = self._view(out_name)
        act = _activation_inplace(node)
        get_xp, static = self._conv_input(node, pads)
        scratch = self._scratch
        reads = [self._region(x_name)]
        writes = [self._region(out_name)]

        def epilogue() -> None:
            if bias is not None:
                np.add(dst, bias, out=dst)
            if act is not None:
                act(dst)

        if group == cin and cin_g == 1 and cout == group:
            taps = spec.packed_weight(w, (kh, kw, cout))
            scratch.need_b = max(scratch.need_b, n * oh * ow * cout)
            shards = self._shard_count(n) if static else 1
            if shards > 1:
                # Pure ufunc pipeline (multiply + add per tap): sharding
                # the batch dimension is byte-identical by construction.
                xp_full = get_xp()
                for n0, n1 in _shard_ranges(n, shards):
                    xp_s = xp_full[n0:n1]
                    dst_s = dst[n0:n1]

                    def step(xp_s=xp_s, dst_s=dst_s, ns=n1 - n0) -> None:
                        sb = scratch.view_b((ns, oh, ow, cout))
                        dst_s[...] = 0.0
                        for i in range(kh):
                            for j in range(kw):
                                np.multiply(
                                    xp_s[:, i:i + oh * sh:sh,
                                         j:j + ow * sw:sw, :],
                                    taps[i, j], out=sb)
                                np.add(dst_s, sb, out=dst_s)
                        if bias is not None:
                            np.add(dst_s, bias, out=dst_s)
                        if act is not None:
                            act(dst_s)
                    self._add_step(
                        step,
                        [self._region(x_name, batch=(n0, n1))],
                        [self._region(out_name, batch=(n0, n1))],
                        kind="dwconv")
                return

            def step() -> None:
                xp = get_xp()
                sb = scratch.view_b((n, oh, ow, cout))
                dst[...] = 0.0
                for i in range(kh):
                    for j in range(kw):
                        np.multiply(
                            xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :],
                            taps[i, j], out=sb)
                        np.add(dst, sb, out=dst)
                epilogue()
            self._add_step(step, reads, writes, kind="dwconv")
            return

        if group != 1:
            from repro.runtime.numerical import _conv_grouped

            def step() -> None:
                out = _conv_grouped(get_xp(), w, n, oh, ow, kh, kw,
                                    sh, sw, cin_g, cout, group)
                np.copyto(dst, out)
                epilogue()
            self._add_step(step, reads, writes, kind="gemm")
            return

        # Regular convolution: GEMM with the result written in place
        # when the destination is contiguous, staged otherwise.  With a
        # static input window and a contiguous destination the GEMM may
        # split into row panels (M-dimension only — each output row
        # keeps its serial full-K accumulation, and the planner's
        # floors keep every panel on BLAS's normal kernel path, so the
        # bytes never change; see gemmpar).
        npix = n * oh * ow
        dst_contig = dst.flags.c_contiguous
        dst2d = dst.reshape(npix, cout) if dst_contig else None
        if not dst_contig:
            scratch.need_b = max(scratch.need_b, npix * cout)
        can_shard = (self._gemm_width > 1 and dst2d is not None
                     and static)

        def gemm(a2d: np.ndarray, w2d: np.ndarray) -> None:
            if dst2d is not None:
                np.matmul(a2d, w2d, out=dst2d)
            else:
                sb = scratch.view_b((npix, cout))
                np.matmul(a2d, w2d, out=sb)
                np.copyto(dst, sb.reshape(n, oh, ow, cout))

        if kh == 1 and kw == 1:
            w2d = spec.packed_weight(w, (cin, cout))
            scratch.need_a = max(scratch.need_a, npix * cin)
            if can_shard:
                patch = get_xp()[:, :oh * sh:sh, :ow * sw:sw, :]
                patch2d = patch.reshape(npix, cin) \
                    if patch.flags.c_contiguous else None
                panels = plan_row_panels(npix, cin, cout,
                                         self._gemm_width, self.policy,
                                         align=ow)
                if len(panels) > 1 and self._emit_conv_panels(
                        node, x_name, out_name, panels, oh, ow,
                        dst2d, w2d, bias, act, a2d=patch2d,
                        gather_src=patch, gather_k=cin):
                    return

            def step() -> None:
                patch = get_xp()[:, :oh * sh:sh, :ow * sw:sw, :]
                if patch.flags.c_contiguous:
                    a2d = patch.reshape(npix, cin)
                else:
                    sa = scratch.view_a((n, oh, ow, cin))
                    np.copyto(sa, patch)
                    a2d = sa.reshape(npix, cin)
                gemm(a2d, w2d)
                epilogue()
            self._add_step(step, reads, writes, kind="gemm")
            return

        if npix * kh * kw * cin <= IM2COL_MAX_ELEMENTS:
            # Zero-materialization im2col: a read-only as_strided view
            # of every patch.  With a static input window (pre-padded
            # arena view or pad-free input) the view is built once at
            # bind time; if the (npix, K) flattening is expressible as
            # a view, the GEMM reads the input storage directly and no
            # column matrix ever exists.  Otherwise one vectorized
            # gather into scratch replaces the old per-tap copy loop —
            # the GEMM operand holds identical bytes in every path, so
            # the result is too.
            K = kh * kw * cin
            w2d = spec.packed_weight(w, (K, cout))
            if static:
                win = conv_window_view(get_xp(), oh, ow, kh, kw, sh, sw)
                a2d = reshape_as_view(win, (npix, K))
                if can_shard:
                    panels = plan_row_panels(npix, K, cout,
                                             self._gemm_width,
                                             self.policy, align=ow)
                    if len(panels) > 1 and self._emit_conv_panels(
                            node, x_name, out_name, panels, oh, ow,
                            dst2d, w2d, bias, act, a2d=a2d,
                            gather_src=win, gather_k=K):
                        return
                if a2d is not None:
                    def step(a2d=a2d) -> None:
                        gemm(a2d, w2d)
                        epilogue()
                    self._add_step(step, reads, writes, kind="gemm")
                    return
                scratch.need_a = max(scratch.need_a, npix * K)

                def step(win=win) -> None:
                    cols = scratch.view_a((n, oh, ow, kh, kw, cin))
                    np.copyto(cols, win)
                    gemm(cols.reshape(npix, K), w2d)
                    epilogue()
                self._add_step(step, reads, writes, kind="gemm")
                return
            scratch.need_a = max(scratch.need_a, npix * K)

            def step() -> None:
                cols = scratch.view_a((n, oh, ow, kh, kw, cin))
                np.copyto(cols,
                          conv_window_view(get_xp(), oh, ow, kh, kw, sh, sw))
                gemm(cols.reshape(npix, K), w2d)
                epilogue()
            self._add_step(step, reads, writes, kind="gemm")
            return

        def step() -> None:
            xp = get_xp()
            dst[...] = 0.0
            for i in range(kh):
                for j in range(kw):
                    patch = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                    np.add(dst, np.tensordot(patch, w[i, j], axes=([3], [0])),
                           out=dst)
            epilogue()
        self._add_step(step, reads, writes, kind="gemm")

    def _bind_gemm(self, node: Node) -> None:
        spec = self.spec
        a = self._view(node.inputs[0]) if node.inputs[0] not in spec.inits \
            else spec.inits[node.inputs[0]]
        b = spec.inits[node.inputs[1]] \
            if node.inputs[1] in spec.inits else self._view(node.inputs[1])
        bias = None
        bias_name = None
        if node.op_type == "Gemm" and len(node.inputs) > 2:
            bias_name = node.inputs[2]
            bias = spec.inits[bias_name] if bias_name in spec.inits \
                else self._view(bias_name)
        dst = self._view(node.outputs[0])
        act = _activation_inplace(node) if node.op_type == "Gemm" else None
        reads = [self._region(t) for t in node.inputs]
        writes = [self._region(node.outputs[0])]
        if dst.flags.c_contiguous:
            if self._gemm_width > 1 and a.ndim == 2 and b.ndim == 2 \
                    and dst.ndim == 2:
                m, k = a.shape
                panels = plan_row_panels(m, k, dst.shape[1],
                                         self._gemm_width, self.policy)
                out_reg = self._region(node.outputs[0])
                if len(panels) > 1 and out_reg is not None \
                        and out_reg[2] is not None:
                    # Row panels of the identical serial kernel: each
                    # output row keeps one full-K accumulation, panels
                    # write disjoint row boxes, so order is free and
                    # bytes are fixed.  A 2-D bias carrying the M axis
                    # is sliced with the panel; broadcast biases pass
                    # whole (per-element either way).
                    bias_rows = (bias is not None
                                 and getattr(bias, "ndim", 0) == 2
                                 and bias.shape[0] == m)
                    total = len(panels)
                    for idx, (m0, m1) in enumerate(panels):
                        apan = a[m0:m1]
                        dpan = dst[m0:m1]
                        bpan = bias[m0:m1] if bias_rows else bias

                        def step(apan=apan, dpan=dpan,
                                 bpan=bpan) -> None:
                            np.matmul(apan, b, out=dpan)
                            if bpan is not None:
                                np.add(dpan, bpan, out=dpan)
                            if act is not None:
                                act(dpan)
                        self._add_step(
                            step, reads,
                            [self._subregion(node.outputs[0], 0,
                                             m0, m1 - m0)],
                            kind="gemm", node=node.name,
                            shard=(idx, total))
                    return

            def step() -> None:
                np.matmul(a, b, out=dst)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._add_step(step, reads, writes, kind="gemm")
        else:
            self._scratch.need_b = max(self._scratch.need_b, dst.size)
            scratch, shape = self._scratch, dst.shape

            def step() -> None:
                sb = scratch.view_b(shape)
                np.matmul(a, b, out=sb)
                np.copyto(dst, sb)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._add_step(step, reads, writes, kind="gemm")

    def _bind_bn(self, node: Node) -> None:
        spec = self.spec
        params = node.inputs[1:5]
        if any(p not in spec.inits for p in params):
            self._bind_generic(node)
            return
        scale, bias, mean, var = (spec.inits[p] for p in params)
        eps = node.attr("epsilon", 1e-5)
        # Same op sequence as the kernel — (x - mean) / sqrt(var + eps)
        # * scale + bias — with the denominator precomputed (identical
        # float32 value) and every step writing in place.
        denom = spec.prepared(
            (node.name, "bn_denom"),
            lambda: np.sqrt(np.asarray(var + eps, dtype=np.float32)))
        x_name, out_name = node.inputs[0], node.outputs[0]
        x = self._view(x_name)
        dst = self._view(out_name)

        def emit(xv: np.ndarray, dv: np.ndarray,
                 batch: Optional[Tuple[int, int]]) -> None:
            def step(xv=xv, dv=dv) -> None:
                np.subtract(xv, mean, out=dv)
                np.divide(dv, denom, out=dv)
                np.multiply(dv, scale, out=dv)
                np.add(dv, bias, out=dv)
            self._add_step(step, [self._region(x_name, batch=batch)],
                           [self._region(out_name, batch=batch)],
                           kind="elementwise")

        shards = 1
        if x.shape == dst.shape and dst.ndim >= 2:
            shards = self._shard_count(dst.shape[0])
        if shards <= 1:
            emit(x, dst, None)
        else:
            for n0, n1 in _shard_ranges(dst.shape[0], shards):
                emit(x[n0:n1], dst[n0:n1], (n0, n1))

    def _bind_elementwise(self, node: Node) -> None:
        spec = self.spec
        op = node.op_type
        ins = [spec.inits[t] if t in spec.inits else self._view(t)
               for t in node.inputs]
        out_name = node.outputs[0]
        dst = self._view(out_name)
        n = dst.shape[0] if dst.ndim >= 2 else 0
        shards = self._shard_count(n) if dst.ndim >= 2 else 1
        ranges: List[Optional[Tuple[int, int]]]
        ranges = list(_shard_ranges(n, shards)) if shards > 1 else [None]
        for rng in ranges:
            if rng is None:
                ivs = list(ins)
                in_batches: List[Optional[Tuple[int, int]]] = \
                    [None] * len(ins)
                dv = dst
            else:
                n0, n1 = rng
                ivs, in_batches = [], []
                for arr in ins:
                    # Slice operands that carry the batch dimension;
                    # broadcast operands (per-channel biases, scalars)
                    # pass through whole — ufuncs broadcast per
                    # element, so the shard is byte-identical.
                    if arr.ndim == dst.ndim and arr.shape[0] == n:
                        ivs.append(arr[n0:n1])
                        in_batches.append(rng)
                    else:
                        ivs.append(arr)
                        in_batches.append(None)
                dv = dst[n0:n1]
            if op == "Clip":
                lo, hi = node.attr("min", 0.0), node.attr("max", 6.0)
                xv = ivs[0]

                def step(xv=xv, dv=dv, lo=lo, hi=hi) -> None:
                    np.clip(xv, lo, hi, out=dv)
            elif op in _UNARY_OUT:
                fn, xv = _UNARY_OUT[op], ivs[0]

                def step(fn=fn, xv=xv, dv=dv) -> None:
                    fn(xv, out=dv)
            else:
                fn, (av, bv) = _BINARY_OUT[op], ivs

                def step(fn=fn, av=av, bv=bv, dv=dv) -> None:
                    fn(av, bv, out=dv)
            self._add_step(
                step,
                [self._region(t, batch=b)
                 for t, b in zip(node.inputs, in_batches)],
                [self._region(out_name, batch=rng)],
                kind="elementwise")

    def _bind_fused(self, node: Node) -> None:
        """One step per FusedElementwise group.

        Bind-time alias analysis places every entry's result: output
        entries write their destination views directly when the write
        cannot clobber memory a later entry still reads; chain
        extension then walks backward through single-consumer
        interiors, keeping the whole chain in place on one buffer —
        the direct destination, or (when that is a strided
        margined-interior view) a dying input whose planned lifetime
        ends here, so only the final entry pays the strided write.
        Fully-placed groups run as one whole-array sweep over a
        pre-resolved kernel sequence; groups with leftover interiors
        evaluate per ~64K-element tile with staged entries in private
        scratch slots, flushing staged outputs at tile end (the
        flushed tile only overwrites the identical rectangle of an
        input the expression has already consumed this tile, which is
        what keeps the step safe under the planner's in-place
        aliasing).  Interior tensors never touch the arena.
        Per-element ufuncs are tiling-invariant, so every placement is
        byte-identical to whole-array evaluation.
        """
        spec = self.spec
        expr = node.attr("expr") or []
        out_ids = list(node.attr("out_ids") or [])
        S = spec.shapes.get(node.outputs[0])
        if (not expr or len(out_ids) != len(node.outputs) or not S
                or any(tuple(spec.shapes.get(t, ())) != tuple(S)
                       for t in node.outputs)):
            self._bind_generic(node)
            return
        S = tuple(S)
        ins = [spec.inits[t] if t in spec.inits else self._view(t)
               for t in node.inputs]
        dsts = [self._view(t) for t in node.outputs]
        if any(d.shape != S for d in dsts):
            self._bind_generic(node)
            return
        entries: List[tuple] = []
        for idx, entry in enumerate(expr):
            op = entry["op"]
            attrs = dict(entry.get("attrs") or {})
            refs = [(r[0], int(r[1])) for r in entry["inputs"]]
            if op == "BatchNormalization" and len(refs) == 5:
                kind4, j4 = refs[4]
                if kind4 == "in" and node.inputs[j4] in spec.inits:
                    # Precompute sqrt(var + eps) once — identical
                    # float32 values to the per-call evaluation — and
                    # splice it in as the fifth operand so the tiled
                    # sweep slices it like every other input.
                    var = spec.inits[node.inputs[j4]]
                    eps = attrs.get("epsilon", 1e-5)
                    denom = spec.prepared(
                        (node.name, "fused_denom", idx),
                        lambda var=var, eps=eps: np.sqrt(
                            np.asarray(var + eps, dtype=np.float32)))
                    refs[4] = ("in", len(ins))
                    ins.append(denom)
                    attrs["_denom_input"] = True
            entries.append((op, attrs, refs))
        kerns = [compile_elementwise(op, attrs) for op, attrs, _ in entries]
        scratch = self._scratch
        out_ids_t = tuple(out_ids)

        # Operand indices whose arena buffer dies at this node (the
        # plan's root lifetime ends here, so no later step reads it)
        # and is referenced by exactly one entry: the tiled sweep may
        # reuse such a buffer as in-place scratch for chain interiors.
        in_ref_count: Dict[int, int] = {}
        for _eop, _eat, erefs in entries:
            for kind, r in erefs:
                if kind == "in":
                    in_ref_count[r] = in_ref_count.get(r, 0) + 1
        graph_outs = set(spec.graph.outputs)
        node_pos = spec.node_pos.get(node.name)
        dying_ops = set()
        for i, t in enumerate(node.inputs):
            if (t in spec.inits or t in graph_outs
                    or in_ref_count.get(i) != 1):
                continue
            st = spec.plan.storage.get(t)
            alloc = st and spec.plan.roots.get(st.root)
            if alloc is not None and alloc.death == node_pos:
                dying_ops.add(i)

        def _exact_alias(a: np.ndarray, b: np.ndarray) -> bool:
            return (a.shape == b.shape and a.strides == b.strides
                    and a.__array_interface__["data"][0]
                    == b.__array_interface__["data"][0])

        def emit(ivs: List[np.ndarray], dvs: List[np.ndarray],
                 shape: Tuple[int, ...], reads, writes) -> None:
            axis, chunk = _tile_plan(shape)
            ndim = len(shape)
            n_t = shape[axis]
            # Operand axis carrying the tiled dimension under
            # right-aligned broadcasting; None = the operand broadcasts
            # along it and passes through whole.
            ext_axes: List[Optional[int]] = []
            for iv in ivs:
                k = axis - (ndim - iv.ndim)
                ext_axes.append(
                    k if 0 <= k < iv.ndim and iv.shape[k] == n_t else None)
            head, tail = shape[:axis], shape[axis + 1:]

            # Alias analysis: an output entry may evaluate straight
            # into its destination view (no staging copy) iff nothing
            # evaluated at-or-after it reads memory the write clobbers.
            # The planner's in-place aliasing gives dst the exact view
            # of one dead input; a ufunc whose out= exactly aliases one
            # of its own inputs is well-defined, and an exact alias is
            # tile-sliced identically, so tile k of the input is always
            # consumed in the same iteration that overwrites it.
            dv_of = dict(zip(out_ids_t, dvs))
            dvs_overlap = any(
                np.shares_memory(a, b)
                for i, a in enumerate(dvs) for b in dvs[i + 1:])

            def safe_from(j: int, dv: np.ndarray) -> bool:
                for p in range(j, len(entries)):
                    for kind, r in entries[p][2]:
                        if kind != "in":
                            continue
                        iv = ivs[r]
                        if not np.shares_memory(iv, dv):
                            continue
                        if p == j and _exact_alias(iv, dv):
                            continue
                        return False
                return True

            direct: Dict[int, np.ndarray] = {}
            for j, dv in dv_of.items():
                if dvs_overlap:
                    break
                if safe_from(j, dv):
                    direct[j] = dv

            # Chain extension: an interior entry whose value is consumed
            # exactly once — through an alias-tolerant operand of an
            # entry already writing ``dv`` — may evaluate into that same
            # destination tile.  The whole chain then runs in place on
            # one hot buffer instead of round-tripping a scratch slot,
            # which is where the fused sweep's bandwidth win lives on
            # cache-resident activations.  The bytes are unchanged: the
            # consumer reads the identical values from ``dv`` that it
            # would have read from the slot.
            tuse: Dict[int, int] = {}
            for _eop, _eat, erefs in entries:
                for kind, r in erefs:
                    if kind == "t":
                        tuse[r] = tuse.get(r, 0) + 1
            out_set = set(out_ids_t)

            # Dying inputs usable as in-place chain scratch in THIS
            # emit call: full-shape, writable, contiguous, and not
            # overlapping any other operand view.
            avail = {
                i for i in dying_ops
                if i < len(ivs)
                and ivs[i].shape == shape
                and ivs[i].flags.writeable
                and ivs[i].flags.c_contiguous
                and not any(np.shares_memory(ivs[i], ivs[k])
                            for k in range(len(ivs)) if k != i)}
            scratch_ops: set = set()

            dst_for = dict(direct)
            for jo in direct:
                c = jo
                while True:
                    op_c = entries[c][0]
                    safe_pos = _FUSED_ALIAS_SAFE.get(op_c, (0,))
                    nxt = None
                    for k, (kind, r) in enumerate(entries[c][2]):
                        if (kind == "t" and k in safe_pos
                                and tuse.get(r) == 1
                                and r not in out_set
                                and r not in dst_for):
                            nxt = r
                            break
                    if nxt is None:
                        break
                    # Pick the chain's buffer.  Default: keep running
                    # in the consumer's target.  But when that target
                    # is a strided margined-interior view and this
                    # entry's own data input is a dying contiguous
                    # arena buffer, run the chain interior in place on
                    # that input instead — only the final entry then
                    # pays the strided write, exactly like the unfused
                    # schedule, and intermediates stay in one hot
                    # contiguous buffer.
                    tgt = dst_for[c]
                    if not tgt.flags.c_contiguous:
                        for k, (kind, r2) in enumerate(entries[nxt][2]):
                            if (kind == "in" and r2 in avail
                                    and k in _FUSED_ALIAS_SAFE.get(
                                        entries[nxt][0], (0,))
                                    and safe_from(nxt, ivs[r2])):
                                tgt = ivs[r2]
                                avail.discard(r2)
                                scratch_ops.add(r2)
                                break
                    if tgt is dst_for[c] and not safe_from(nxt, tgt):
                        break
                    dst_for[nxt] = tgt
                    c = nxt
            staged = [j for j in range(len(entries)) if j not in dst_for]
            slot_of = {j: i for i, j in enumerate(staged)}
            if not staged:
                # Every entry writes its final buffer in place, so
                # there is no scratch slot to keep cache-hot; tiling
                # would only add slicing overhead.  Sweep the whole
                # array in one tile — bit-identical either way.
                chunk = n_t
            if staged:
                inner = 1
                for d in shape[axis + 1:]:
                    inner *= d
                outer = 1
                for d in shape[:axis]:
                    outer *= d
                scratch.need_slot = max(scratch.need_slot,
                                        outer * chunk * inner)
                scratch.num_slots = max(scratch.num_slots, len(staged))

            # Precompute every tile's input/destination views once at
            # bind time; the run-time loop only resolves scratch slots
            # (thread-local) and calls pre-compiled kernels.  The
            # per-entry table (kernel closure, operand refs, slot) is
            # static across tiles, so a tile stores just one view per
            # *operand* — entries sharing an input share its slice —
            # plus the direct-write and flush targets.
            static_ents = tuple(
                (kerns[j],
                 tuple((0, r) if kind == "t" else (1, r)
                       for kind, r in refs),
                 slot_of.get(j))
                for j, (op, attrs, refs) in enumerate(entries))
            tiles = []
            full_shape = None
            for lo in range(0, n_t, chunk):
                hi = min(n_t, lo + chunk)
                if hi - lo == chunk and full_shape is not None:
                    tshape = full_shape
                else:
                    tshape = head + (hi - lo,) + tail
                    if hi - lo == chunk:
                        full_shape = tshape
                dtile = (slice(None),) * axis + (slice(lo, hi),)
                tviews = tuple(
                    iv if k is None else
                    iv[(slice(None),) * k + (slice(lo, hi),)]
                    for iv, k in zip(ivs, ext_axes))
                dtgts = tuple(dst_for[j][dtile] if j in dst_for else None
                              for j in range(len(entries)))
                flushes = tuple((dv[dtile], j) for j, dv in dv_of.items()
                                if j not in direct)
                tiles.append((tviews, dtgts, flushes, tshape))

            if not staged:
                # Fully extended group: one whole-array tile, every
                # value a static view, nothing flushed.  The entire
                # sweep is a fixed sequence of kernel calls resolvable
                # now — the run-time step does no indexing at all.
                tviews, dtgts, _fl, _ts = tiles[0]
                calls = tuple(
                    (kerns[j],
                     [tviews[p] if kind == "in" else dtgts[p]
                      for kind, p in refs],
                     dtgts[j])
                    for j, (op, attrs, refs) in enumerate(entries))

                def step(calls=calls) -> None:
                    for kern, tins, tgt in calls:
                        kern(tins, tgt)

                self._add_step(step, reads,
                               list(writes) + [reads[i]
                                               for i in sorted(scratch_ops)
                                               if i < len(reads)],
                               kind="fused")
                return

            def step(tiles=tuple(tiles), ents=static_ents) -> None:
                vals: List[Optional[np.ndarray]] = [None] * len(ents)
                for tviews, dtgts, flushes, tshape in tiles:
                    for j, (kern, refs, slot) in enumerate(ents):
                        tins = [tviews[p] if c else vals[p]
                                for c, p in refs]
                        tgt = dtgts[j]
                        if tgt is None:
                            tgt = scratch.view_slot(slot, tshape)
                        kern(tins, tgt)
                        vals[j] = tgt
                    for fv, j in flushes:
                        np.copyto(fv, vals[j])
            if scratch_ops:
                # Chain interiors clobber dying input buffers; the
                # hazard graph must see those as writes so parallel
                # dispatch cannot overlap another reader.
                writes = list(writes) + [reads[i]
                                         for i in sorted(scratch_ops)
                                         if i < len(reads)]
            self._add_step(step, reads, writes, kind="fused")

        shards = self._shard_count(S[0]) if len(S) >= 2 else 1
        if shards > 1:
            for n0, n1 in _shard_ranges(S[0], shards):
                sub_ivs: List[np.ndarray] = []
                in_batches: List[Optional[Tuple[int, int]]] = []
                for iv in ins:
                    if iv.ndim == len(S) and iv.shape[0] == S[0]:
                        sub_ivs.append(iv[n0:n1])
                        in_batches.append((n0, n1))
                    else:
                        sub_ivs.append(iv)
                        in_batches.append(None)
                emit(sub_ivs, [d[n0:n1] for d in dsts],
                     (n1 - n0,) + S[1:],
                     [self._region(t, batch=b)
                      for t, b in zip(node.inputs, in_batches)],
                     [self._region(t, batch=(n0, n1))
                      for t in node.outputs])
        else:
            emit(ins, dsts, S,
                 [self._region(t) for t in node.inputs],
                 [self._region(t) for t in node.outputs])

    def _bind_generic(self, node: Node) -> None:
        fn = KERNELS.get(node.op_type)
        if fn is None:
            raise NotImplementedError(
                f"no numpy kernel for op {node.op_type!r}")
        spec = self.spec
        ins = [spec.inits[t] if t in spec.inits else self._view(t)
               for t in node.inputs]
        outs = [self._view(t) for t in node.outputs]

        def step(node=node, fn=fn, ins=ins, outs=outs) -> None:
            for dst, res in zip(outs, _node_results(node, fn(node, ins))):
                np.copyto(dst, res)
        self._add_step(step, [self._region(t) for t in node.inputs],
                       [self._region(t) for t in node.outputs])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, feeds: Mapping[str, np.ndarray],
            max_inflight: int = 1) -> Dict[str, np.ndarray]:
        for name, view in self._input_views:
            np.copyto(view, feeds[name])
        # width 1 = the hazard graph is a chain: parallel dispatch can
        # never overlap two steps, so skip its queue/submit overhead
        # entirely even when workers were requested.
        if max_inflight > 1 and self._dep_counts is not None \
                and len(self._steps) > 1 and self.width > 1:
            self._run_parallel(max_inflight)
        else:
            for step in self._steps:
                step()
        return self._collect_outputs()

    def run_profiled(self, feeds: Mapping[str, np.ndarray]
                     ) -> Tuple[Dict[str, np.ndarray], Dict[str, dict],
                                List[dict]]:
        """Serial run with per-step timing grouped by step kind.

        Returns ``(outputs, {kind: {"steps": n, "ms": total}},
        shard_rows)`` — the attribution behind ``repro stat --plan``
        and :meth:`CompiledExecutable.step_profile`.  ``shard_rows``
        aggregates intra-op sharded steps per node:
        ``{"node", "kind", "shards", "ms", "shard_ms": [per-shard]}``.
        """
        for name, view in self._input_views:
            np.copyto(view, feeds[name])
        prof: Dict[str, List[float]] = {}
        sharded: Dict[str, dict] = {}
        for step, kind, (nname, sidx, stotal) in zip(
                self._steps, self._step_kinds, self._step_meta):
            t0 = time.perf_counter()
            step()
            dt = time.perf_counter() - t0
            entry = prof.setdefault(kind, [0, 0.0])
            entry[0] += 1
            entry[1] += dt
            if nname is not None and stotal > 1:
                row = sharded.setdefault(nname, {
                    "node": nname, "kind": kind, "shards": stotal,
                    "ms": 0.0, "shard_ms": [0.0] * stotal})
                row["ms"] += dt * 1e3
                row["shard_ms"][sidx] += dt * 1e3
        profile = {kind: {"steps": int(n), "ms": total * 1e3}
                   for kind, (n, total) in prof.items()}
        return self._collect_outputs(), profile, list(sharded.values())

    def _collect_outputs(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for t, view in self._output_views.items():
            if view is None:
                out[t] = self.spec.inits[t]
            else:
                out[t] = view.copy()
        return out

    def _run_parallel(self, max_inflight: int) -> None:
        """Dependency-counted dispatch onto the shared host executor.

        One step always runs inline on the calling thread (the serial
        fallback when the ready set is 1-wide costs nothing); the rest
        of the ready set — up to ``max_inflight - 1`` — is submitted to
        the pool, whose workers spend their time in GIL-releasing
        NumPy/BLAS kernels.
        """
        steps = self._steps
        counts = list(self._dep_counts)
        dependents = self._dependents
        ready = deque(i for i, c in enumerate(counts) if c == 0)
        remaining = len(steps)
        done: SimpleQueue = SimpleQueue()
        inflight = 0
        error: Optional[BaseException] = None
        pool = host_executor()

        def work(i: int) -> None:
            try:
                steps[i]()
                done.put((i, None))
            except BaseException as exc:  # surfaced on the caller
                done.put((i, exc))

        def finish(i: int) -> None:
            nonlocal remaining
            remaining -= 1
            for j in dependents[i]:
                counts[j] -= 1
                if counts[j] == 0:
                    ready.append(j)

        while remaining and error is None:
            while len(ready) > 1 and inflight < max_inflight - 1:
                pool.submit(work, ready.popleft())
                inflight += 1
            if ready:
                i = ready.popleft()
                try:
                    steps[i]()
                except BaseException as exc:
                    error = exc
                    break
                finish(i)
                while True:  # collect whatever finished meanwhile
                    try:
                        j, exc = done.get_nowait()
                    except Empty:
                        break
                    inflight -= 1
                    if exc is not None:
                        error = error or exc
                    else:
                        finish(j)
            else:
                if not inflight:  # pragma: no cover - DAG by construction
                    raise RuntimeError(
                        "operator scheduler stalled: cyclic step graph")
                j, exc = done.get()
                inflight -= 1
                if exc is not None:
                    error = exc
                else:
                    finish(j)
        while inflight:  # drain before surfacing any error
            _, exc = done.get()
            inflight -= 1
            if exc is not None and error is None:
                error = exc
        if error is not None:
            raise error


class CompiledExecutable:
    """A graph bound once for repeat, concurrency-safe inference.

    Programs are cached per feed-shape signature (and invalidated when
    the graph's mutation :attr:`~repro.graph.graph.Graph.version`
    changes).  Each program owns a bounded :class:`StatePool` of
    :class:`ExecutionState` instances; :meth:`run` checks one out,
    executes on its private arena, and returns it — concurrent callers
    proceed on distinct states with no shared lock on the hot path
    (the old global ``_run_lock`` is gone).

    ``workers > 1`` turns on the operator-parallel scheduler inside
    each run; ``max_states`` caps how many arenas may exist at once
    (acquires beyond it wait for a release).  ``elide=False`` disables
    the zero-copy treatment of memopt-``elided`` nodes and pre-padded
    conv reads; it is the ablation the benchmarks use to show what the
    paper's memory-layout optimization buys at runtime.  ``fuse=False``
    likewise disables the internal ``fuse_elementwise`` rewrite, the
    ablation behind the ``compiled_ms`` vs ``fused_ms`` benchmark pair.
    """

    def __init__(self, graph: Graph, *, elide: bool = True,
                 workers: Optional[int] = None,
                 max_states: Optional[int] = None,
                 fuse: bool = True,
                 policy: Optional[ShardPolicy] = None) -> None:
        self.graph = graph
        self.elide = elide
        self.fuse = bool(fuse)
        self.workers = resolve_host_workers(workers)
        #: Sharding knobs for every state this executable binds; the
        #: default honors ``REPRO_GEMM_SHARDS``.
        self.policy = policy if policy is not None \
            else ShardPolicy.from_env()
        self.max_states = int(max_states) if max_states is not None \
            else DEFAULT_MAX_STATES
        if self.max_states < 1:
            raise ValueError(
                f"max_states must be >= 1, got {self.max_states}")
        self._version = graph.version
        #: Guards the program map only — never held while running.
        self._bind_lock = threading.Lock()
        self._pools: Dict[tuple, Tuple[_ProgramSpec, StatePool]] = {}
        self._fused_graph: Optional[Graph] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pools"] = {}  # closures and arenas never travel
        state["_fused_graph"] = None
        del state["_bind_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._bind_lock = threading.Lock()
        self._pools = {}

    def _run_graph(self) -> Graph:
        """The graph states actually bind: elementwise-fused when
        ``fuse`` is on and the rewrite found something to fuse.

        Called with ``_bind_lock`` held; the fused clone is cached and
        invalidated alongside the program map on version changes.
        Shapes and feeds keep using :attr:`graph` — the fused graph's
        tensors are a subset (interiors removed), and graph inputs and
        outputs are preserved by the pass.
        """
        if not self.fuse:
            return self.graph
        fused = self._fused_graph
        if fused is None:
            # Deliberately lazy: the serving path must work without the
            # transform package in the process (see
            # test_executor_process_never_imports_search).
            from repro.transform.elemfuse import _fuse_elementwise

            fused = _fuse_elementwise(self.graph)
            if not any(n.op_type == "FusedElementwise"
                       for n in fused.nodes):
                fused = self.graph
            self._fused_graph = fused
        return fused

    def _pool_for(self, feeds: Mapping[str, np.ndarray]
                  ) -> Tuple[_ProgramSpec, StatePool]:
        with self._bind_lock:
            if self.graph.version != self._version:
                self._pools.clear()
                self._fused_graph = None
                self._version = self.graph.version
            key = tuple(
                (name, tuple(np.shape(feeds[name])))
                for name in self.graph.inputs)
            entry = self._pools.get(key)
            if entry is None:
                declared = all(
                    tuple(np.shape(feeds[name]))
                    == tuple(self.graph.tensors[name].shape)
                    for name in self.graph.inputs)
                if declared:
                    shapes = {name: tuple(info.shape)
                              for name, info in self.graph.tensors.items()}
                else:
                    shapes = _capture_shapes(self.graph, feeds)
                spec = _ProgramSpec(self._run_graph(), shapes,
                                    elide=self.elide)
                shards = self.workers
                parallel = self.workers > 1
                policy = self.policy

                def factory(spec=spec, shards=shards, parallel=parallel,
                            policy=policy):
                    return ExecutionState(spec, shards=shards,
                                          parallel=parallel,
                                          policy=policy)
                # Request-level analog of the hazard-width gate: states
                # beyond the physical core count cannot overlap on CPU
                # — they only multiply arena footprint and cache
                # pressure (each checkout lands on a cold arena), so a
                # single-core host serializes on one hot state exactly
                # like the pre-pool runtime did.
                cap = max(1, min(self.max_states, os.cpu_count() or 1))
                entry = (spec, StatePool(factory, cap))
                self._pools[key] = entry
        return entry

    def __call__(self, feeds: Mapping[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
        return self.run(feeds)

    def run(self, feeds: Mapping[str, np.ndarray], *,
            workers: Optional[int] = None,
            state_timeout_s: Optional[float] = None
            ) -> Dict[str, np.ndarray]:
        """One inference; byte-identical to interpreted ``execute``.

        Thread-safe without serializing: each call executes on a
        pooled private state.  ``workers`` may lower (never raise) the
        dispatch width this call uses; ``state_timeout_s`` bounds the
        wait for a free state when the pool is exhausted
        (:class:`~repro.runtime.hostpool.StatePoolTimeout`).
        """
        feeds32 = {}
        for name in self.graph.inputs:
            if name not in feeds:
                raise KeyError(f"missing feed for graph input {name!r}")
            feeds32[name] = np.asarray(feeds[name], dtype=np.float32)
        _, pool = self._pool_for(feeds32)
        state = pool.acquire(timeout_s=state_timeout_s)
        try:
            width = self.workers if workers is None \
                else max(1, min(int(workers), self.workers))
            return state.run(feeds32, max_inflight=width)
        finally:
            pool.release(state)

    def buffer_plan(self, feeds: Optional[Mapping[str, np.ndarray]] = None
                    ) -> BufferPlan:
        """The buffer plan bound for ``feeds`` (declared shapes if None).

        Resolves the program spec only — no execution state (arena) is
        bound.
        """
        if feeds is None:
            feeds = {name: np.zeros(self.graph.tensors[name].shape,
                                    dtype=np.float32)
                     for name in self.graph.inputs}
        spec, _ = self._pool_for(
            {n: np.asarray(f, dtype=np.float32) for n, f in feeds.items()})
        return spec.plan

    def stats(self) -> Dict[str, object]:
        """Buffer-plan stats at the graph's declared shapes."""
        return self.buffer_plan().stats()

    def pool_stats(self) -> Dict[str, object]:
        """Aggregate state-pool gauges across all bound programs."""
        with self._bind_lock:
            entries = list(self._pools.values())
        agg: Dict[str, object] = {
            "programs": len(entries),
            "workers": self.workers,
            "max_states": self.max_states,
            "states_bound": 0,
            "in_use": 0,
            "peak_in_use": 0,
            "acquires": 0,
            "waits": 0,
            "width": 1,
            "fused_groups": 0,
            "step_kinds": {},
            "gemm_shards": self.policy.resolve_gemm_width(self.workers),
            "gemm_sharded_steps": 0,
            "gemm_shard_max": 1,
        }
        kinds: Dict[str, int] = agg["step_kinds"]
        for spec, pool in entries:
            s = pool.stats()
            agg["states_bound"] += s["states_bound"]
            agg["in_use"] += s["in_use"]
            agg["peak_in_use"] = max(agg["peak_in_use"], s["peak_in_use"])
            agg["acquires"] += s["acquires"]
            agg["waits"] += s["waits"]
            agg["width"] = max(agg["width"], spec.max_width())
            agg["fused_groups"] = max(
                agg["fused_groups"],
                sum(1 for n in spec.graph.nodes
                    if n.op_type == "FusedElementwise"))
            for kind, count in (spec.step_kind_counts or {}).items():
                kinds[kind] = max(kinds.get(kind, 0), count)
            fanout = spec.shard_fanout or {}
            agg["gemm_sharded_steps"] = max(
                agg["gemm_sharded_steps"], len(fanout))
            agg["gemm_shard_max"] = max(
                agg["gemm_shard_max"], *fanout.values(), 1)
        return agg

    def step_profile(self, feeds: Optional[Mapping[str, np.ndarray]] = None,
                     rounds: int = 2, detail: bool = False):
        """Per-op-kind serial step timing for one inference.

        Runs ``rounds`` serial profiled inferences (declared-shape zero
        feeds if none given) and keeps each kind's best total, so
        first-run binding noise doesn't pollute the attribution.
        Returns ``{kind: {"steps": n, "ms": total}}``; with
        ``detail=True`` returns ``(kinds, shard_rows)`` where
        ``shard_rows`` lists each intra-op sharded node's per-shard
        timing (best round by node total), sorted slowest-first.
        """
        if feeds is None:
            feeds = {name: np.zeros(self.graph.tensors[name].shape,
                                    dtype=np.float32)
                     for name in self.graph.inputs}
        feeds32 = {name: np.asarray(arr, dtype=np.float32)
                   for name, arr in feeds.items()}
        _, pool = self._pool_for(feeds32)
        state = pool.acquire()
        try:
            best: Dict[str, dict] = {}
            best_rows: Dict[str, dict] = {}
            for _ in range(max(1, int(rounds))):
                _, profile, shard_rows = state.run_profiled(feeds32)
                for kind, entry in profile.items():
                    cur = best.get(kind)
                    if cur is None or entry["ms"] < cur["ms"]:
                        best[kind] = entry
                for row in shard_rows:
                    cur = best_rows.get(row["node"])
                    if cur is None or row["ms"] < cur["ms"]:
                        best_rows[row["node"]] = row
            if not detail:
                return best
            rows = sorted(best_rows.values(),
                          key=lambda r: r["ms"], reverse=True)
            return best, rows
        finally:
            pool.release(state)


_UNARY_OUT: Dict[str, Callable] = {
    "Relu": lambda x, out: np.maximum(x, 0.0, out=out),
    "Tanh": np.tanh,
    "Sigmoid": stable_sigmoid,
    "Silu": stable_silu,
}

_BINARY_OUT: Dict[str, Callable] = {
    "Add": np.add,
    "Mul": np.multiply,
    "Sub": np.subtract,
    "Div": np.divide,
}
