"""Compile-once executor over a planned arena.

:class:`CompiledExecutable` binds a graph once — buffer plan, numpy
views, parsed attributes, kernel dispatch — and then serves repeat
inference as a flat list of zero-argument closures.  Per run there is
no toposort, no dict lookup, no attribute parsing, no refcounting, and
(for planned tensors) no allocation: every tensor's bytes live at a
fixed offset of one shared arena, elided Slice/Concat/Pad nodes from
:mod:`repro.transform.memopt` cost nothing, and convolutions read
pre-padded arena views instead of calling ``np.pad`` per invocation.

Semantics contract: outputs are **byte-identical** to the interpreted
:func:`repro.runtime.numerical.execute` oracle.  Every specialized
closure therefore re-expresses the interpreter's exact floating-point
op sequence (same ufuncs, same operand order, same GEMM operands) with
the destination redirected into the arena; anything without a proven
bit-identical specialization falls back to calling the registered
kernel and copying the result into place.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.runtime.bufferplan import BufferPlan, plan_buffers
from repro.runtime.numerical import (
    IM2COL_MAX_ELEMENTS,
    KERNELS,
    _node_results,
    graph_initializers_f32,
    stable_sigmoid,
    stable_silu,
)


class _Scratch:
    """Two shared scratch pools, sized during bind, allocated after.

    Closures capture this holder and index it at call time; execution
    is single-threaded one node at a time, so one pool of each kind
    (``a``: im2col columns / contiguous input staging, ``b``: conv
    output staging / depthwise tap products) serves the whole graph.
    """

    __slots__ = ("need_a", "need_b", "a", "b")

    def __init__(self) -> None:
        self.need_a = 0
        self.need_b = 0
        self.a: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None

    def allocate(self) -> None:
        self.a = np.empty(self.need_a, dtype=np.float32)
        self.b = np.empty(self.need_b, dtype=np.float32)

    def view_a(self, shape: Tuple[int, ...]) -> np.ndarray:
        n = 1
        for d in shape:
            n *= d
        return self.a[:n].reshape(shape)

    def view_b(self, shape: Tuple[int, ...]) -> np.ndarray:
        n = 1
        for d in shape:
            n *= d
        return self.b[:n].reshape(shape)


def _capture_shapes(graph: Graph,
                    feeds: Mapping[str, np.ndarray]) -> Dict[str, tuple]:
    """Exact per-tensor run shapes for feeds that differ from declared.

    Runs the interpreted kernels once (freeing tensors as their last
    consumer passes, like ``execute``), recording every shape.  Only
    needed for batch-polymorphic execution; when feeds match the
    declared shapes the graph's own tensor table is used instead.
    """
    inits = graph_initializers_f32(graph)
    shapes: Dict[str, tuple] = {
        name: tuple(info.shape) for name, info in graph.tensors.items()}
    env: Dict[str, np.ndarray] = {
        name: np.asarray(feeds[name], dtype=np.float32)
        for name in graph.inputs}
    for name, arr in env.items():
        shapes[name] = arr.shape
    order = graph.toposort()
    remaining: Dict[str, int] = {}
    for n in order:
        for t in n.inputs:
            remaining[t] = remaining.get(t, 0) + 1
    keep = set(graph.outputs) | set(graph.inputs)
    for n in order:
        fn = KERNELS.get(n.op_type)
        if fn is None:
            raise NotImplementedError(f"no numpy kernel for op {n.op_type!r}")
        result = fn(n, [env[t] if t in env else inits[t] for t in n.inputs])
        for t, value in zip(n.outputs, _node_results(n, result)):
            env[t] = value
            shapes[t] = value.shape
        for t in n.inputs:
            remaining[t] -= 1
            if remaining[t] == 0 and t not in keep and t in env:
                del env[t]
    return shapes


def _activation_inplace(node: Node) -> Optional[Callable[[np.ndarray], None]]:
    """In-place variant of ``apply_fused_activation`` for arena views."""
    kind = node.attr("activation")
    if not kind:
        return None
    if kind == "relu":
        def act(out: np.ndarray) -> None:
            np.maximum(out, 0.0, out=out)
        return act
    if kind == "clip":
        lo = node.attr("activation_min", 0.0)
        hi = node.attr("activation_max", 6.0)

        def act(out: np.ndarray) -> None:
            np.clip(out, lo, hi, out=out)
        return act
    if kind == "silu":
        def act(out: np.ndarray) -> None:
            stable_silu(out, out=out)
        return act
    if kind == "sigmoid":
        def act(out: np.ndarray) -> None:
            stable_sigmoid(out, out=out)
        return act
    if kind == "gelu":
        def act(out: np.ndarray) -> None:
            np.copyto(out, 0.5 * out * (1.0 + np.tanh(
                0.7978845608 * (out + 0.044715 * out ** 3))))
        return act
    raise ValueError(f"unknown fused activation {kind!r}")


class _Program:
    """One graph bound for one set of feed shapes."""

    def __init__(self, graph: Graph, shapes: Dict[str, tuple],
                 *, elide: bool) -> None:
        self.graph = graph
        self.plan: BufferPlan = plan_buffers(graph, shapes, elide=elide)
        self.shapes = shapes
        self._inits = graph_initializers_f32(graph)
        self._scratch = _Scratch()
        self._steps: List[Callable[[], None]] = []
        # Arena zeroed exactly once: pinned roots keep margins and
        # elided-Pad borders zero across runs, everything else is fully
        # rewritten every run.
        self.arena = np.zeros(self.plan.arena_elements, dtype=np.float32)
        self._views: Dict[str, np.ndarray] = {}
        self._root_arrays: Dict[str, np.ndarray] = {}
        self._bind()
        self._scratch.allocate()
        self._input_views = [(name, self._views[name])
                             for name in graph.inputs]
        self._output_views = {t: self._views.get(t) for t in graph.outputs}

    # ------------------------------------------------------------------
    # View resolution
    # ------------------------------------------------------------------
    def _root_interior(self, root: str) -> np.ndarray:
        if root in self._root_arrays:
            return self._root_arrays[root]
        alloc = self.plan.roots[root]
        start = alloc.arena_offset
        arr = self.arena[start:start + alloc.elements].reshape(
            alloc.padded_shape)
        interior = arr[tuple(
            slice(b, b + d) for d, (b, _) in zip(alloc.shape, alloc.margins))]
        self._root_arrays[root] = interior
        return interior

    def _rect_view(self, tensor: str) -> np.ndarray:
        st = self.plan.storage[tensor]
        if st.root in self._inits:
            base = self._inits[st.root]
        else:
            base = self._root_interior(st.root)
        if st.root == tensor:
            return base
        return base[tuple(slice(o, o + d)
                          for o, d in zip(st.offset, st.shape))]

    def _view(self, tensor: str) -> np.ndarray:
        v = self._views.get(tensor)
        if v is None:
            if tensor in self._inits:
                # Weights are never laid into the arena; they are
                # shared read-only across runs and graphs.
                v = self._inits[tensor]
            else:
                v = self._rect_view(tensor)
            self._views[tensor] = v
        return v

    def _padded_conv_view(self, tensor: str,
                          pads: Tuple[int, int, int, int]) -> np.ndarray:
        """The pre-padded read window for a served convolution input."""
        st = self.plan.storage[tensor]
        alloc = self.plan.roots[st.root]
        arr = self.arena[alloc.arena_offset:
                         alloc.arena_offset + alloc.elements].reshape(
            alloc.padded_shape)
        pt, pl, pb, pr = pads
        extra = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        index = []
        for d in range(4):
            before, _ = alloc.margins[d]
            off = st.offset[d]
            lo, hi = extra[d]
            index.append(slice(before + off - lo,
                               before + off + st.shape[d] + hi))
        return arr[tuple(index)]

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _bind(self) -> None:
        for name in self.graph.inputs:
            self._view(name)
        for node in self.graph.toposort():
            op = node.op_type
            if op in ("Identity", "Slice", "Reshape", "Flatten", "Transpose"):
                self._bind_view_op(node)
            elif op == "Concat":
                self._bind_concat(node)
            elif op == "Pad":
                self._bind_pad(node)
            elif op == "Conv":
                self._bind_conv(node)
            elif op in ("Gemm", "MatMul"):
                self._bind_gemm(node)
            elif op == "BatchNormalization":
                self._bind_bn(node)
            elif op in _UNARY_OUT or op in _BINARY_OUT or op == "Clip":
                self._bind_elementwise(node)
            else:
                self._bind_generic(node)
        for t in self.graph.outputs:
            if t not in self._inits:
                self._view(t)

    def _bind_view_op(self, node: Node) -> None:
        src = self._view(node.inputs[0])
        out = node.outputs[0]
        op = node.op_type
        if op == "Identity":
            self._views[out] = src
            return
        if op == "Slice":
            axis = int(node.attr("axis")) % src.ndim
            index = [slice(None)] * src.ndim
            index[axis] = slice(int(node.attr("start")),
                                int(node.attr("end")))
            self._views[out] = src[tuple(index)]
            return
        if op == "Transpose":
            perm = node.attr("perm", tuple(reversed(range(src.ndim))))
            self._views[out] = np.transpose(src, perm)
            return
        # Reshape / Flatten: a view when numpy can express the
        # reinterpretation without a copy; otherwise the tensor gets a
        # private buffer and a per-run copy — exactly the copy the
        # interpreter's ``x.reshape`` would make.
        shape = self.shapes[out]
        try:
            candidate = src.reshape(shape)
        except ValueError:
            candidate = None
        if candidate is not None and np.shares_memory(candidate, src):
            self._views[out] = candidate
            return
        priv = np.empty(shape, dtype=np.float32)
        self._views[out] = priv

        def step(src=src, priv=priv, shape=shape) -> None:
            np.copyto(priv, src.reshape(shape))
        self._steps.append(step)

    def _bind_concat(self, node: Node) -> None:
        out = node.outputs[0]
        out_st = self.plan.storage[out]
        out_view = self._view(out)
        axis = int(node.attr("axis")) % out_view.ndim
        cursor = 0
        copies = []
        for t in node.inputs:
            extent = self.shapes[t][axis]
            st = self.plan.storage.get(t)
            aliased = (
                st is not None and out_st.is_rect and st.is_rect
                and st.root == out_st.root
                and st.offset == tuple(
                    o + (cursor if d == axis else 0)
                    for d, o in enumerate(out_st.offset)))
            if not aliased:
                index = [slice(None)] * out_view.ndim
                index[axis] = slice(cursor, cursor + extent)
                copies.append((out_view[tuple(index)], self._view(t)))
            cursor += extent
        if copies:
            def step(copies=copies) -> None:
                for dst, src in copies:
                    np.copyto(dst, src)
            self._steps.append(step)

    def _bind_pad(self, node: Node) -> None:
        src_name, out = node.inputs[0], node.outputs[0]
        pads = tuple(tuple(p) for p in node.attr("pads"))
        out_st = self.plan.storage[out]
        st = self.plan.storage.get(src_name)
        aliased = (
            st is not None and st.is_rect and out_st.is_rect
            and st.root == out_st.root
            and st.offset == tuple(
                o + before for o, (before, _) in zip(out_st.offset, pads)))
        if aliased:
            self._view(out)  # border is arena zeros on a pinned root
            return
        self._bind_generic(node)

    # -- Convolution ----------------------------------------------------
    def _conv_input(self, node: Node,
                    pads: Tuple[int, int, int, int]):
        """(get_xp, static) — padded input window and whether it's free."""
        x_name = node.inputs[0]
        x = self._view(x_name)
        pt, pl, pb, pr = pads
        if self.plan.padded_reads.get(node.name):
            xp = self._padded_conv_view(x_name, pads)
            return (lambda: xp), True
        if not (pt or pl or pb or pr):
            return (lambda: x), True
        pad_spec = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        return (lambda: np.pad(x, pad_spec)), False

    def _bind_conv(self, node: Node) -> None:
        w_name = node.inputs[1]
        bias_name = node.inputs[2] if len(node.inputs) > 2 else None
        if w_name not in self._inits or (
                bias_name is not None and bias_name not in self._inits):
            self._bind_generic(node)
            return
        w = self._inits[w_name]
        bias = self._inits[bias_name] if bias_name else None
        strides = node.attr("strides", (1, 1))
        pads = tuple(node.attr("pads", (0, 0, 0, 0)))
        group = int(node.attr("group", 1))
        n, h, wdt, cin = self.shapes[node.inputs[0]]
        kh, kw, cin_g, cout = w.shape
        sh, sw = strides
        pt, pl, pb, pr = pads
        if group < 1 or cin % group or cout % group \
                or cin_g * group != cin:
            self._bind_generic(node)
            return
        oh = (h + pt + pb - kh) // sh + 1
        ow = (wdt + pl + pr - kw) // sw + 1
        dst = self._view(node.outputs[0])
        act = _activation_inplace(node)
        get_xp, _ = self._conv_input(node, pads)
        scratch = self._scratch

        def epilogue() -> None:
            if bias is not None:
                np.add(dst, bias, out=dst)
            if act is not None:
                act(dst)

        if group == cin and cin_g == 1 and cout == group:
            taps = np.ascontiguousarray(w.reshape(kh, kw, cout))
            scratch.need_b = max(scratch.need_b, n * oh * ow * cout)

            def step() -> None:
                xp = get_xp()
                sb = scratch.view_b((n, oh, ow, cout))
                dst[...] = 0.0
                for i in range(kh):
                    for j in range(kw):
                        np.multiply(
                            xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :],
                            taps[i, j], out=sb)
                        np.add(dst, sb, out=dst)
                epilogue()
            self._steps.append(step)
            return

        if group != 1:
            from repro.runtime.numerical import _conv_grouped

            def step() -> None:
                out = _conv_grouped(get_xp(), w, n, oh, ow, kh, kw,
                                    sh, sw, cin_g, cout, group)
                np.copyto(dst, out)
                epilogue()
            self._steps.append(step)
            return

        # Regular convolution: GEMM with the result written in place
        # when the destination is contiguous, staged otherwise.
        npix = n * oh * ow
        dst_contig = dst.flags.c_contiguous
        dst2d = dst.reshape(npix, cout) if dst_contig else None
        if not dst_contig:
            scratch.need_b = max(scratch.need_b, npix * cout)

        def gemm(a2d: np.ndarray, w2d: np.ndarray) -> None:
            if dst2d is not None:
                np.matmul(a2d, w2d, out=dst2d)
            else:
                sb = scratch.view_b((npix, cout))
                np.matmul(a2d, w2d, out=sb)
                np.copyto(dst, sb.reshape(n, oh, ow, cout))

        if kh == 1 and kw == 1:
            w2d = np.ascontiguousarray(w.reshape(cin, cout))
            scratch.need_a = max(scratch.need_a, npix * cin)

            def step() -> None:
                patch = get_xp()[:, :oh * sh:sh, :ow * sw:sw, :]
                if patch.flags.c_contiguous:
                    a2d = patch.reshape(npix, cin)
                else:
                    sa = scratch.view_a((n, oh, ow, cin))
                    np.copyto(sa, patch)
                    a2d = sa.reshape(npix, cin)
                gemm(a2d, w2d)
                epilogue()
            self._steps.append(step)
            return

        if npix * kh * kw * cin <= IM2COL_MAX_ELEMENTS:
            w2d = np.ascontiguousarray(w.reshape(kh * kw * cin, cout))
            scratch.need_a = max(scratch.need_a, npix * kh * kw * cin)

            def step() -> None:
                xp = get_xp()
                cols = scratch.view_a((n, oh, ow, kh, kw, cin))
                for i in range(kh):
                    for j in range(kw):
                        cols[:, :, :, i, j, :] = \
                            xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                gemm(cols.reshape(npix, kh * kw * cin), w2d)
                epilogue()
            self._steps.append(step)
            return

        def step() -> None:
            xp = get_xp()
            dst[...] = 0.0
            for i in range(kh):
                for j in range(kw):
                    patch = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                    np.add(dst, np.tensordot(patch, w[i, j], axes=([3], [0])),
                           out=dst)
            epilogue()
        self._steps.append(step)

    def _bind_gemm(self, node: Node) -> None:
        a = self._view(node.inputs[0]) if node.inputs[0] not in self._inits \
            else self._inits[node.inputs[0]]
        b = self._inits[node.inputs[1]] \
            if node.inputs[1] in self._inits else self._view(node.inputs[1])
        bias = None
        if node.op_type == "Gemm" and len(node.inputs) > 2:
            bn = node.inputs[2]
            bias = self._inits[bn] if bn in self._inits else self._view(bn)
        dst = self._view(node.outputs[0])
        act = _activation_inplace(node) if node.op_type == "Gemm" else None
        if dst.flags.c_contiguous:
            def step() -> None:
                np.matmul(a, b, out=dst)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._steps.append(step)
        else:
            self._scratch.need_b = max(self._scratch.need_b, dst.size)
            scratch, shape = self._scratch, dst.shape

            def step() -> None:
                sb = scratch.view_b(shape)
                np.matmul(a, b, out=sb)
                np.copyto(dst, sb)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._steps.append(step)

    def _bind_bn(self, node: Node) -> None:
        params = node.inputs[1:5]
        if any(p not in self._inits for p in params):
            self._bind_generic(node)
            return
        scale, bias, mean, var = (self._inits[p] for p in params)
        eps = node.attr("epsilon", 1e-5)
        # Same op sequence as the kernel — (x - mean) / sqrt(var + eps)
        # * scale + bias — with the denominator precomputed (identical
        # float32 value) and every step writing in place.
        denom = np.sqrt(np.asarray(var + eps, dtype=np.float32))
        x = self._view(node.inputs[0])
        dst = self._view(node.outputs[0])

        def step() -> None:
            np.subtract(x, mean, out=dst)
            np.divide(dst, denom, out=dst)
            np.multiply(dst, scale, out=dst)
            np.add(dst, bias, out=dst)
        self._steps.append(step)

    def _bind_elementwise(self, node: Node) -> None:
        op = node.op_type
        ins = [self._inits[t] if t in self._inits else self._view(t)
               for t in node.inputs]
        dst = self._view(node.outputs[0])
        if op == "Clip":
            lo, hi = node.attr("min", 0.0), node.attr("max", 6.0)
            x = ins[0]

            def step() -> None:
                np.clip(x, lo, hi, out=dst)
        elif op in _UNARY_OUT:
            fn, x = _UNARY_OUT[op], ins[0]

            def step() -> None:
                fn(x, out=dst)
        else:
            fn, (a, b) = _BINARY_OUT[op], ins

            def step() -> None:
                fn(a, b, out=dst)
        self._steps.append(step)

    def _bind_generic(self, node: Node) -> None:
        fn = KERNELS.get(node.op_type)
        if fn is None:
            raise NotImplementedError(
                f"no numpy kernel for op {node.op_type!r}")
        ins = [self._inits[t] if t in self._inits else self._view(t)
               for t in node.inputs]
        outs = [self._view(t) for t in node.outputs]

        def step(node=node, fn=fn, ins=ins, outs=outs) -> None:
            for dst, res in zip(outs, _node_results(node, fn(node, ins))):
                np.copyto(dst, res)
        self._steps.append(step)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        for name, view in self._input_views:
            np.copyto(view, feeds[name])
        for step in self._steps:
            step()
        out: Dict[str, np.ndarray] = {}
        for t, view in self._output_views.items():
            if view is None:
                out[t] = self._inits[t]
            else:
                out[t] = view.copy()
        return out


_UNARY_OUT: Dict[str, Callable] = {
    "Relu": lambda x, out: np.maximum(x, 0.0, out=out),
    "Tanh": np.tanh,
    "Sigmoid": stable_sigmoid,
    "Silu": stable_silu,
}

_BINARY_OUT: Dict[str, Callable] = {
    "Add": np.add,
    "Mul": np.multiply,
    "Sub": np.subtract,
    "Div": np.divide,
}


class CompiledExecutable:
    """A graph bound once for repeat inference.

    Programs are cached per feed-shape signature (and invalidated when
    the graph's mutation :attr:`~repro.graph.graph.Graph.version`
    changes), so the common serve loop — same shapes every call — pays
    only the closure list.

    ``elide=False`` disables the zero-copy treatment of
    memopt-``elided`` nodes and pre-padded conv reads; it is the
    ablation the benchmarks use to show what the paper's memory-layout
    optimization buys at runtime.
    """

    def __init__(self, graph: Graph, *, elide: bool = True) -> None:
        self.graph = graph
        self.elide = elide
        self._version = graph.version
        self._programs: Dict[tuple, _Program] = {}
        #: Serializes :meth:`run`: programs write through one shared
        #: arena, so concurrent calls (e.g. two serve workers hitting
        #: one cached executable) must execute one at a time.  Distinct
        #: executables still run fully in parallel.
        self._run_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_run_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._run_lock = threading.Lock()

    def _program_for(self, feeds: Mapping[str, np.ndarray]) -> _Program:
        if self.graph.version != self._version:
            self._programs.clear()
            self._version = self.graph.version
        key = tuple(
            (name, tuple(np.shape(feeds[name]))) for name in self.graph.inputs)
        prog = self._programs.get(key)
        if prog is None:
            declared = all(
                tuple(np.shape(feeds[name]))
                == tuple(self.graph.tensors[name].shape)
                for name in self.graph.inputs)
            if declared:
                shapes = {name: tuple(info.shape)
                          for name, info in self.graph.tensors.items()}
            else:
                shapes = _capture_shapes(self.graph, feeds)
            prog = _Program(self.graph, shapes, elide=self.elide)
            self._programs[key] = prog
        return prog

    def __call__(self, feeds: Mapping[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
        return self.run(feeds)

    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """One inference; byte-identical to interpreted ``execute``.

        Thread-safe: calls serialize on an internal lock because every
        program of this executable shares one arena.
        """
        feeds32 = {}
        for name in self.graph.inputs:
            if name not in feeds:
                raise KeyError(f"missing feed for graph input {name!r}")
            feeds32[name] = np.asarray(feeds[name], dtype=np.float32)
        with self._run_lock:
            return self._program_for(feeds32).run(feeds32)

    def buffer_plan(self, feeds: Optional[Mapping[str, np.ndarray]] = None
                    ) -> BufferPlan:
        """The buffer plan bound for ``feeds`` (declared shapes if None)."""
        if feeds is None:
            feeds = {name: np.zeros(self.graph.tensors[name].shape,
                                    dtype=np.float32)
                     for name in self.graph.inputs}
        with self._run_lock:
            return self._program_for(
                {n: np.asarray(f, dtype=np.float32) for n, f in feeds.items()}
            ).plan

    def stats(self) -> Dict[str, object]:
        """Buffer-plan stats at the graph's declared shapes."""
        return self.buffer_plan().stats()
