"""Compile-once executor over a planned arena, concurrency-ready.

The module splits repeat inference into two halves:

* :class:`_ProgramSpec` — the immutable **program**: buffer plan, run
  shapes, read-only float32 weights, prepared kernel operands
  (contiguous weight reshapes, BatchNorm denominators), and the step
  dependency graph.  One spec is shared by every concurrent run.
* :class:`ExecutionState` — the cheap per-run half: one arena, one
  scratch holder, and the node closures bound against *this* state's
  arena views.  States are pooled (:class:`~repro.runtime.hostpool.
  StatePool`), so N server workers execute truly concurrently with no
  global run lock — the serialization the old single-arena design
  imposed is gone from the steady state.

Per run there is no toposort, no dict lookup, no attribute parsing,
and (for planned tensors) no allocation: every tensor's bytes live at
a fixed offset of the state's arena, elided Slice/Concat/Pad nodes
from :mod:`repro.transform.memopt` cost nothing, and convolutions read
pre-padded arena views instead of calling ``np.pad`` per invocation.

**Operator-parallel scheduling.**  With ``workers > 1`` a state also
carries a dependency-counted step graph and dispatches ready steps
onto the shared host thread pool.  Correctness needs more than
dataflow edges: the arena packs lifetime-disjoint buffers into the
same bytes, so the graph also carries WAR/WAW hazard edges computed
from the buffer plan (exact rectangle intersection within a root,
arena-extent intersection across roots).  Every pair of conflicting
accesses keeps its serial order, which is what makes the parallel
schedule *byte-identical* to serial execution.  Batch-shardable steps
(depthwise convolutions, BatchNormalization, fused/standalone
elementwise ops — all pure per-element ufunc pipelines) are split into
per-batch-slice sub-steps at batch >= 4 so a single wide node can
occupy several workers; GEMM-backed steps are never sharded, because
BLAS kernel selection depends on the operand shapes and splitting the
M dimension could change the floating-point reduction it runs.

Semantics contract: outputs are **byte-identical** to the interpreted
:func:`repro.runtime.numerical.execute` oracle, serial or parallel.
Every specialized closure re-expresses the interpreter's exact
floating-point op sequence (same ufuncs, same operand order, same GEMM
operands) with the destination redirected into the arena; anything
without a proven bit-identical specialization falls back to calling
the registered kernel and copying the result into place.
"""

from __future__ import annotations

import threading
from collections import deque
from queue import Empty, SimpleQueue
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.runtime.bufferplan import BufferPlan, plan_buffers
from repro.runtime.hostpool import (
    DEFAULT_MAX_STATES,
    StatePool,
    host_executor,
    resolve_host_workers,
)
from repro.runtime.numerical import (
    IM2COL_MAX_ELEMENTS,
    KERNELS,
    _node_results,
    graph_initializers_f32,
    stable_sigmoid,
    stable_silu,
)

#: Batch size below which batch-shardable steps stay whole: slicing a
#: tiny batch buys no parallelism and costs closure overhead.
SHARD_MIN_BATCH = 4


class _Scratch:
    """Per-thread scratch pools, sized during bind, allocated lazily.

    Closures capture this holder and request shaped views at call time
    (``a``: im2col columns / contiguous input staging, ``b``: conv
    output staging / depthwise tap products).  Buffers are
    thread-local: under the operator-parallel scheduler several steps
    (or batch shards of one step) run concurrently on pool threads and
    each must stage into private memory.  Sizes are frozen once
    binding completes; each thread then allocates its buffers once, on
    first use.
    """

    __slots__ = ("need_a", "need_b", "_tls")

    def __init__(self) -> None:
        self.need_a = 0
        self.need_b = 0
        self._tls = threading.local()

    def view_a(self, shape: Tuple[int, ...]) -> np.ndarray:
        buf = getattr(self._tls, "a", None)
        if buf is None or buf.size < self.need_a:
            buf = self._tls.a = np.empty(self.need_a, dtype=np.float32)
        n = 1
        for d in shape:
            n *= d
        return buf[:n].reshape(shape)

    def view_b(self, shape: Tuple[int, ...]) -> np.ndarray:
        buf = getattr(self._tls, "b", None)
        if buf is None or buf.size < self.need_b:
            buf = self._tls.b = np.empty(self.need_b, dtype=np.float32)
        n = 1
        for d in shape:
            n *= d
        return buf[:n].reshape(shape)


def _capture_shapes(graph: Graph,
                    feeds: Mapping[str, np.ndarray]) -> Dict[str, tuple]:
    """Exact per-tensor run shapes for feeds that differ from declared.

    Runs the interpreted kernels once (freeing tensors as their last
    consumer passes, like ``execute``), recording every shape.  Only
    needed for batch-polymorphic execution; when feeds match the
    declared shapes the graph's own tensor table is used instead.
    """
    inits = graph_initializers_f32(graph)
    shapes: Dict[str, tuple] = {
        name: tuple(info.shape) for name, info in graph.tensors.items()}
    env: Dict[str, np.ndarray] = {
        name: np.asarray(feeds[name], dtype=np.float32)
        for name in graph.inputs}
    for name, arr in env.items():
        shapes[name] = arr.shape
    order = graph.toposort()
    remaining: Dict[str, int] = {}
    for n in order:
        for t in n.inputs:
            remaining[t] = remaining.get(t, 0) + 1
    keep = set(graph.outputs) | set(graph.inputs)
    for n in order:
        fn = KERNELS.get(n.op_type)
        if fn is None:
            raise NotImplementedError(f"no numpy kernel for op {n.op_type!r}")
        result = fn(n, [env[t] if t in env else inits[t] for t in n.inputs])
        for t, value in zip(n.outputs, _node_results(n, result)):
            env[t] = value
            shapes[t] = value.shape
        for t in n.inputs:
            remaining[t] -= 1
            if remaining[t] == 0 and t not in keep and t in env:
                del env[t]
    return shapes


def _activation_inplace(node: Node) -> Optional[Callable[[np.ndarray], None]]:
    """In-place variant of ``apply_fused_activation`` for arena views."""
    kind = node.attr("activation")
    if not kind:
        return None
    if kind == "relu":
        def act(out: np.ndarray) -> None:
            np.maximum(out, 0.0, out=out)
        return act
    if kind == "clip":
        lo = node.attr("activation_min", 0.0)
        hi = node.attr("activation_max", 6.0)

        def act(out: np.ndarray) -> None:
            np.clip(out, lo, hi, out=out)
        return act
    if kind == "silu":
        def act(out: np.ndarray) -> None:
            stable_silu(out, out=out)
        return act
    if kind == "sigmoid":
        def act(out: np.ndarray) -> None:
            stable_sigmoid(out, out=out)
        return act
    if kind == "gelu":
        def act(out: np.ndarray) -> None:
            np.copyto(out, 0.5 * out * (1.0 + np.tanh(
                0.7978845608 * (out + 0.044715 * out ** 3))))
        return act
    raise ValueError(f"unknown fused activation {kind!r}")


def _shard_ranges(n: int, shards: int) -> List[Tuple[int, int]]:
    """``shards`` contiguous, non-empty [start, stop) slices of 0..n."""
    if shards <= 1:
        return [(0, n)]
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        if size:
            ranges.append((start, start + size))
        start += size
    return ranges


# ----------------------------------------------------------------------
# Step access regions and the hazard-edged dependency graph
# ----------------------------------------------------------------------
# A region is (kind, key, box): kind "arena" keys a buffer-plan root
# (key None = unknown storage, conservatively conflicting with every
# arena region), kind "priv" keys a state-private buffer by tensor
# name.  box is a per-dimension (start, stop) rectangle inside the
# keyed buffer, or None for the whole buffer.
_Region = Tuple[str, Optional[str], Optional[Tuple[Tuple[int, int], ...]]]


def _boxes_overlap(a, b) -> bool:
    if a is None or b is None:
        return True
    if len(a) != len(b):
        return True  # rank mismatch: be conservative
    return all(s1 < e2 and s2 < e1 for (s1, e1), (s2, e2) in zip(a, b))


def _build_step_graph(accesses, plan: BufferPlan):
    """Dependency counts + dependents for the operator-parallel run.

    For steps i < j (their serial/topological order), an edge i -> j is
    added whenever the two touch overlapping memory and at least one
    writes — RAW, WAR, and WAW all collapse to "conflicting accesses
    keep serial order", which is exactly the condition under which any
    dependency-respecting parallel order is byte-identical to serial.
    Same-root accesses compare exact rectangles (so concat siblings
    co-allocated into one root stay parallel); different roots conflict
    iff the first-fit packer overlapped their arena extents (lifetime
    reuse), in which case all their accesses serialize.
    """
    per_key: Dict[Tuple[str, Optional[str]], List[tuple]] = {}
    for idx, (reads, writes) in enumerate(accesses):
        for kind, key, box in reads:
            per_key.setdefault((kind, key), []).append((idx, box, False))
        for kind, key, box in writes:
            per_key.setdefault((kind, key), []).append((idx, box, True))

    edges = set()
    for entries in per_key.values():
        for x in range(len(entries)):
            i, bi, wi = entries[x]
            for y in range(x + 1, len(entries)):
                j, bj, wj = entries[y]
                if i == j or not (wi or wj):
                    continue
                if _boxes_overlap(bi, bj):
                    edges.add((i, j) if i < j else (j, i))

    # Cross-root hazards: arena extents that the packer overlapped.
    spans: List[Tuple[Tuple[int, int], Tuple[str, Optional[str]]]] = []
    for kind_key in per_key:
        kind, key = kind_key
        if kind != "arena":
            continue
        if key is None:
            spans.append(((0, max(1, plan.arena_elements)), kind_key))
            continue
        alloc = plan.roots.get(key)
        if alloc is not None and alloc.arena_offset >= 0:
            spans.append(((alloc.arena_offset,
                           alloc.arena_offset + alloc.elements), kind_key))
    spans.sort(key=lambda item: item[0])
    for a in range(len(spans)):
        (s1, e1), ka = spans[a]
        for b in range(a + 1, len(spans)):
            (s2, e2), kb = spans[b]
            if s2 >= e1:
                break
            for i, _, wi in per_key[ka]:
                for j, _, wj in per_key[kb]:
                    if i == j or not (wi or wj):
                        continue
                    edges.add((i, j) if i < j else (j, i))

    dep_counts = [0] * len(accesses)
    dependents: List[List[int]] = [[] for _ in accesses]
    for i, j in sorted(edges):
        dependents[i].append(j)
        dep_counts[j] += 1
    return dep_counts, dependents


class _ProgramSpec:
    """The immutable compiled program for one set of feed shapes.

    Holds everything concurrent states share read-only: the graph, the
    resolved run shapes, the buffer plan, float32 weights, prepared
    kernel operands, and (once the first parallel state binds) the
    hazard-edged step dependency graph.  Specs never touch an arena —
    that is the state's job.
    """

    def __init__(self, graph: Graph, shapes: Dict[str, tuple],
                 *, elide: bool) -> None:
        self.graph = graph
        self.shapes = shapes
        self.elide = elide
        self.plan: BufferPlan = plan_buffers(graph, shapes, elide=elide)
        self.inits = graph_initializers_f32(graph)
        self._lock = threading.Lock()
        self._prepared: Dict[tuple, np.ndarray] = {}
        self._step_graphs: Dict[int, tuple] = {}

    def prepared(self, key: tuple,
                 build: Callable[[], np.ndarray]) -> np.ndarray:
        """Memoized read-only operand (contiguous weight reshape, BN
        denominator, ...) shared across all states of this program."""
        with self._lock:
            arr = self._prepared.get(key)
        if arr is None:
            built = build()
            with self._lock:
                arr = self._prepared.setdefault(key, built)
        return arr

    def step_graph(self, shards: int, accesses):
        """The (dep_counts, dependents) pair for ``accesses``.

        Binding is deterministic given the shard count, so every state
        bound at the same ``shards`` records an identical access list;
        the graph is computed once per shard count and shared.
        """
        with self._lock:
            graph = self._step_graphs.get(shards)
            if graph is None:
                graph = _build_step_graph(accesses, self.plan)
                self._step_graphs[shards] = graph
            return graph


class ExecutionState:
    """One graph bound to one private arena for one run at a time.

    The cheap, per-run half of the program/state split: acquiring a
    state from the pool and running it touches no shared mutable
    memory, so concurrent states proceed with zero lock contention.
    ``shards > 1`` splits batch-shardable steps into per-slice
    sub-steps; ``parallel=True`` additionally materializes the step
    dependency graph so :meth:`run` can dispatch ready steps onto the
    shared host executor.
    """

    def __init__(self, spec: _ProgramSpec, *, shards: int = 1,
                 parallel: bool = False) -> None:
        self.spec = spec
        self.shards = max(1, int(shards))
        graph = spec.graph
        self._scratch = _Scratch()
        self._steps: List[Callable[[], None]] = []
        self._accesses: List[Tuple[List[_Region], List[_Region]]] = []
        #: Tensors whose bytes live in a state-private buffer instead
        #: of the arena, mapped to the buffer's owning tensor name.
        #: View ops over a private buffer propagate the owner, so
        #: hazard regions keep pointing at the memory actually read —
        #: not at the (unused) planned arena slot.
        self._priv: Dict[str, str] = {}
        # Arena zeroed exactly once: pinned roots keep margins and
        # elided-Pad borders zero across runs, everything else is fully
        # rewritten every run.
        self.arena = np.zeros(spec.plan.arena_elements, dtype=np.float32)
        self._views: Dict[str, np.ndarray] = {}
        self._root_arrays: Dict[str, np.ndarray] = {}
        self._bind()
        self._input_views = [(name, self._views[name])
                             for name in graph.inputs]
        self._output_views = {t: self._views.get(t) for t in graph.outputs}
        self._dep_counts: Optional[List[int]] = None
        self._dependents: Optional[List[List[int]]] = None
        if parallel:
            self._dep_counts, self._dependents = spec.step_graph(
                self.shards, self._accesses)

    # ------------------------------------------------------------------
    # View resolution
    # ------------------------------------------------------------------
    def _root_interior(self, root: str) -> np.ndarray:
        if root in self._root_arrays:
            return self._root_arrays[root]
        alloc = self.spec.plan.roots[root]
        start = alloc.arena_offset
        arr = self.arena[start:start + alloc.elements].reshape(
            alloc.padded_shape)
        interior = arr[tuple(
            slice(b, b + d) for d, (b, _) in zip(alloc.shape, alloc.margins))]
        self._root_arrays[root] = interior
        return interior

    def _rect_view(self, tensor: str) -> np.ndarray:
        st = self.spec.plan.storage[tensor]
        if st.root in self.spec.inits:
            base = self.spec.inits[st.root]
        else:
            base = self._root_interior(st.root)
        if st.root == tensor:
            return base
        return base[tuple(slice(o, o + d)
                          for o, d in zip(st.offset, st.shape))]

    def _view(self, tensor: str) -> np.ndarray:
        v = self._views.get(tensor)
        if v is None:
            if tensor in self.spec.inits:
                # Weights are never laid into the arena; they are
                # shared read-only across runs and graphs.
                v = self.spec.inits[tensor]
            else:
                v = self._rect_view(tensor)
            self._views[tensor] = v
        return v

    def _padded_conv_view(self, tensor: str,
                          pads: Tuple[int, int, int, int]) -> np.ndarray:
        """The pre-padded read window for a served convolution input."""
        st = self.spec.plan.storage[tensor]
        alloc = self.spec.plan.roots[st.root]
        arr = self.arena[alloc.arena_offset:
                         alloc.arena_offset + alloc.elements].reshape(
            alloc.padded_shape)
        pt, pl, pb, pr = pads
        extra = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        index = []
        for d in range(4):
            before, _ = alloc.margins[d]
            off = st.offset[d]
            lo, hi = extra[d]
            index.append(slice(before + off - lo,
                               before + off + st.shape[d] + hi))
        return arr[tuple(index)]

    # ------------------------------------------------------------------
    # Access-region bookkeeping
    # ------------------------------------------------------------------
    def _region(self, tensor: str,
                batch: Optional[Tuple[int, int]] = None) -> Optional[_Region]:
        """Memory region an access of ``tensor`` touches (None for
        read-only weights).  ``batch`` narrows dimension 0 to one
        shard's [start, stop) slice."""
        spec = self.spec
        owner = self._priv.get(tensor)
        if owner is not None:
            box = None
            if owner == tensor and batch is not None:
                # Aliases of the buffer (slices/transposes of it) stay
                # whole-buffer conservative; only the owner itself maps
                # batch slices onto dimension 0.
                shape = spec.shapes[tensor]
                box = ((batch[0], batch[1]),) + tuple(
                    (0, d) for d in shape[1:])
            return ("priv", owner, box)
        if tensor in spec.inits:
            return None
        st = spec.plan.storage.get(tensor)
        if st is None:
            return ("arena", None, None)
        if st.root in spec.inits:
            return None
        if not st.is_rect:
            return ("arena", st.root, None)
        box = tuple((o, o + d) for o, d in zip(st.offset, st.shape))
        if batch is not None:
            o0 = st.offset[0]
            box = ((o0 + batch[0], o0 + batch[1]),) + box[1:]
        return ("arena", st.root, box)

    def _subregion(self, tensor: str, axis: int, start: int,
                   extent: int) -> Optional[_Region]:
        reg = self._region(tensor)
        if reg is None or reg[2] is None:
            return reg
        kind, key, box = reg
        lo = box[axis][0] + start
        return (kind, key,
                box[:axis] + ((lo, lo + extent),) + box[axis + 1:])

    def _add_step(self, fn: Callable[[], None],
                  reads: List[Optional[_Region]],
                  writes: List[Optional[_Region]]) -> None:
        self._steps.append(fn)
        self._accesses.append((
            [r for r in reads if r is not None],
            [w for w in writes if w is not None]))

    def _shard_count(self, n: int) -> int:
        if self.shards <= 1 or n < SHARD_MIN_BATCH:
            return 1
        return min(self.shards, n)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _bind(self) -> None:
        graph = self.spec.graph
        for name in graph.inputs:
            self._view(name)
        for node in graph.toposort():
            op = node.op_type
            if op in ("Identity", "Slice", "Reshape", "Flatten", "Transpose"):
                self._bind_view_op(node)
            elif op == "Concat":
                self._bind_concat(node)
            elif op == "Pad":
                self._bind_pad(node)
            elif op == "Conv":
                self._bind_conv(node)
            elif op in ("Gemm", "MatMul"):
                self._bind_gemm(node)
            elif op == "BatchNormalization":
                self._bind_bn(node)
            elif op in _UNARY_OUT or op in _BINARY_OUT or op == "Clip":
                self._bind_elementwise(node)
            else:
                self._bind_generic(node)
        for t in graph.outputs:
            if t not in self.spec.inits:
                self._view(t)

    def _bind_view_op(self, node: Node) -> None:
        src = self._view(node.inputs[0])
        out = node.outputs[0]
        op = node.op_type
        src_owner = self._priv.get(node.inputs[0])
        if op == "Identity":
            self._views[out] = src
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        if op == "Slice":
            axis = int(node.attr("axis")) % src.ndim
            index = [slice(None)] * src.ndim
            index[axis] = slice(int(node.attr("start")),
                                int(node.attr("end")))
            self._views[out] = src[tuple(index)]
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        if op == "Transpose":
            perm = node.attr("perm", tuple(reversed(range(src.ndim))))
            self._views[out] = np.transpose(src, perm)
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        # Reshape / Flatten: a view when numpy can express the
        # reinterpretation without a copy; otherwise the tensor gets a
        # private buffer and a per-run copy — exactly the copy the
        # interpreter's ``x.reshape`` would make.
        shape = self.spec.shapes[out]
        try:
            candidate = src.reshape(shape)
        except ValueError:
            candidate = None
        if candidate is not None and np.shares_memory(candidate, src):
            self._views[out] = candidate
            if src_owner is not None:
                self._priv[out] = src_owner
            return
        priv = np.empty(shape, dtype=np.float32)
        self._views[out] = priv
        self._priv[out] = out

        def step(src=src, priv=priv, shape=shape) -> None:
            np.copyto(priv, src.reshape(shape))
        self._add_step(step, [self._region(node.inputs[0])],
                       [self._region(out)])

    def _bind_concat(self, node: Node) -> None:
        out = node.outputs[0]
        out_st = self.spec.plan.storage[out]
        out_view = self._view(out)
        axis = int(node.attr("axis")) % out_view.ndim
        cursor = 0
        copies = []
        reads: List[Optional[_Region]] = []
        writes: List[Optional[_Region]] = []
        for t in node.inputs:
            extent = self.spec.shapes[t][axis]
            st = self.spec.plan.storage.get(t)
            aliased = (
                st is not None and out_st.is_rect and st.is_rect
                and st.root == out_st.root
                and st.offset == tuple(
                    o + (cursor if d == axis else 0)
                    for d, o in enumerate(out_st.offset)))
            if not aliased:
                index = [slice(None)] * out_view.ndim
                index[axis] = slice(cursor, cursor + extent)
                copies.append((out_view[tuple(index)], self._view(t)))
                reads.append(self._region(t))
                writes.append(self._subregion(out, axis, cursor, extent))
            cursor += extent
        if copies:
            def step(copies=copies) -> None:
                for dst, src in copies:
                    np.copyto(dst, src)
            self._add_step(step, reads, writes)

    def _bind_pad(self, node: Node) -> None:
        src_name, out = node.inputs[0], node.outputs[0]
        pads = tuple(tuple(p) for p in node.attr("pads"))
        out_st = self.spec.plan.storage[out]
        st = self.spec.plan.storage.get(src_name)
        aliased = (
            st is not None and st.is_rect and out_st.is_rect
            and st.root == out_st.root
            and st.offset == tuple(
                o + before for o, (before, _) in zip(out_st.offset, pads)))
        if aliased:
            self._view(out)  # border is arena zeros on a pinned root
            return
        self._bind_generic(node)

    # -- Convolution ----------------------------------------------------
    def _conv_input(self, node: Node,
                    pads: Tuple[int, int, int, int]):
        """(get_xp, static) — padded input window and whether it's free."""
        x_name = node.inputs[0]
        x = self._view(x_name)
        pt, pl, pb, pr = pads
        if self.spec.plan.padded_reads.get(node.name):
            xp = self._padded_conv_view(x_name, pads)
            return (lambda: xp), True
        if not (pt or pl or pb or pr):
            return (lambda: x), True
        pad_spec = ((0, 0), (pt, pb), (pl, pr), (0, 0))
        return (lambda: np.pad(x, pad_spec)), False

    def _bind_conv(self, node: Node) -> None:
        spec = self.spec
        w_name = node.inputs[1]
        bias_name = node.inputs[2] if len(node.inputs) > 2 else None
        if w_name not in spec.inits or (
                bias_name is not None and bias_name not in spec.inits):
            self._bind_generic(node)
            return
        w = spec.inits[w_name]
        bias = spec.inits[bias_name] if bias_name else None
        strides = node.attr("strides", (1, 1))
        pads = tuple(node.attr("pads", (0, 0, 0, 0)))
        group = int(node.attr("group", 1))
        x_name, out_name = node.inputs[0], node.outputs[0]
        n, h, wdt, cin = spec.shapes[x_name]
        kh, kw, cin_g, cout = w.shape
        sh, sw = strides
        pt, pl, pb, pr = pads
        if group < 1 or cin % group or cout % group \
                or cin_g * group != cin:
            self._bind_generic(node)
            return
        oh = (h + pt + pb - kh) // sh + 1
        ow = (wdt + pl + pr - kw) // sw + 1
        dst = self._view(out_name)
        act = _activation_inplace(node)
        get_xp, static = self._conv_input(node, pads)
        scratch = self._scratch
        reads = [self._region(x_name)]
        writes = [self._region(out_name)]

        def epilogue() -> None:
            if bias is not None:
                np.add(dst, bias, out=dst)
            if act is not None:
                act(dst)

        if group == cin and cin_g == 1 and cout == group:
            taps = spec.prepared(
                (node.name, "taps"),
                lambda: np.ascontiguousarray(w.reshape(kh, kw, cout)))
            scratch.need_b = max(scratch.need_b, n * oh * ow * cout)
            shards = self._shard_count(n) if static else 1
            if shards > 1:
                # Pure ufunc pipeline (multiply + add per tap): sharding
                # the batch dimension is byte-identical by construction.
                xp_full = get_xp()
                for n0, n1 in _shard_ranges(n, shards):
                    xp_s = xp_full[n0:n1]
                    dst_s = dst[n0:n1]

                    def step(xp_s=xp_s, dst_s=dst_s, ns=n1 - n0) -> None:
                        sb = scratch.view_b((ns, oh, ow, cout))
                        dst_s[...] = 0.0
                        for i in range(kh):
                            for j in range(kw):
                                np.multiply(
                                    xp_s[:, i:i + oh * sh:sh,
                                         j:j + ow * sw:sw, :],
                                    taps[i, j], out=sb)
                                np.add(dst_s, sb, out=dst_s)
                        if bias is not None:
                            np.add(dst_s, bias, out=dst_s)
                        if act is not None:
                            act(dst_s)
                    self._add_step(
                        step,
                        [self._region(x_name, batch=(n0, n1))],
                        [self._region(out_name, batch=(n0, n1))])
                return

            def step() -> None:
                xp = get_xp()
                sb = scratch.view_b((n, oh, ow, cout))
                dst[...] = 0.0
                for i in range(kh):
                    for j in range(kw):
                        np.multiply(
                            xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :],
                            taps[i, j], out=sb)
                        np.add(dst, sb, out=dst)
                epilogue()
            self._add_step(step, reads, writes)
            return

        if group != 1:
            from repro.runtime.numerical import _conv_grouped

            def step() -> None:
                out = _conv_grouped(get_xp(), w, n, oh, ow, kh, kw,
                                    sh, sw, cin_g, cout, group)
                np.copyto(dst, out)
                epilogue()
            self._add_step(step, reads, writes)
            return

        # Regular convolution: GEMM with the result written in place
        # when the destination is contiguous, staged otherwise.  Never
        # batch-sharded: BLAS kernel choice depends on M, and a split M
        # is not guaranteed to reproduce the serial reduction bits.
        npix = n * oh * ow
        dst_contig = dst.flags.c_contiguous
        dst2d = dst.reshape(npix, cout) if dst_contig else None
        if not dst_contig:
            scratch.need_b = max(scratch.need_b, npix * cout)

        def gemm(a2d: np.ndarray, w2d: np.ndarray) -> None:
            if dst2d is not None:
                np.matmul(a2d, w2d, out=dst2d)
            else:
                sb = scratch.view_b((npix, cout))
                np.matmul(a2d, w2d, out=sb)
                np.copyto(dst, sb.reshape(n, oh, ow, cout))

        if kh == 1 and kw == 1:
            w2d = spec.prepared(
                (node.name, "w2d"),
                lambda: np.ascontiguousarray(w.reshape(cin, cout)))
            scratch.need_a = max(scratch.need_a, npix * cin)

            def step() -> None:
                patch = get_xp()[:, :oh * sh:sh, :ow * sw:sw, :]
                if patch.flags.c_contiguous:
                    a2d = patch.reshape(npix, cin)
                else:
                    sa = scratch.view_a((n, oh, ow, cin))
                    np.copyto(sa, patch)
                    a2d = sa.reshape(npix, cin)
                gemm(a2d, w2d)
                epilogue()
            self._add_step(step, reads, writes)
            return

        if npix * kh * kw * cin <= IM2COL_MAX_ELEMENTS:
            w2d = spec.prepared(
                (node.name, "w2d"),
                lambda: np.ascontiguousarray(w.reshape(kh * kw * cin, cout)))
            scratch.need_a = max(scratch.need_a, npix * kh * kw * cin)

            def step() -> None:
                xp = get_xp()
                cols = scratch.view_a((n, oh, ow, kh, kw, cin))
                for i in range(kh):
                    for j in range(kw):
                        cols[:, :, :, i, j, :] = \
                            xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                gemm(cols.reshape(npix, kh * kw * cin), w2d)
                epilogue()
            self._add_step(step, reads, writes)
            return

        def step() -> None:
            xp = get_xp()
            dst[...] = 0.0
            for i in range(kh):
                for j in range(kw):
                    patch = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                    np.add(dst, np.tensordot(patch, w[i, j], axes=([3], [0])),
                           out=dst)
            epilogue()
        self._add_step(step, reads, writes)

    def _bind_gemm(self, node: Node) -> None:
        spec = self.spec
        a = self._view(node.inputs[0]) if node.inputs[0] not in spec.inits \
            else spec.inits[node.inputs[0]]
        b = spec.inits[node.inputs[1]] \
            if node.inputs[1] in spec.inits else self._view(node.inputs[1])
        bias = None
        bias_name = None
        if node.op_type == "Gemm" and len(node.inputs) > 2:
            bias_name = node.inputs[2]
            bias = spec.inits[bias_name] if bias_name in spec.inits \
                else self._view(bias_name)
        dst = self._view(node.outputs[0])
        act = _activation_inplace(node) if node.op_type == "Gemm" else None
        reads = [self._region(t) for t in node.inputs]
        writes = [self._region(node.outputs[0])]
        if dst.flags.c_contiguous:
            def step() -> None:
                np.matmul(a, b, out=dst)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._add_step(step, reads, writes)
        else:
            self._scratch.need_b = max(self._scratch.need_b, dst.size)
            scratch, shape = self._scratch, dst.shape

            def step() -> None:
                sb = scratch.view_b(shape)
                np.matmul(a, b, out=sb)
                np.copyto(dst, sb)
                if bias is not None:
                    np.add(dst, bias, out=dst)
                if act is not None:
                    act(dst)
            self._add_step(step, reads, writes)

    def _bind_bn(self, node: Node) -> None:
        spec = self.spec
        params = node.inputs[1:5]
        if any(p not in spec.inits for p in params):
            self._bind_generic(node)
            return
        scale, bias, mean, var = (spec.inits[p] for p in params)
        eps = node.attr("epsilon", 1e-5)
        # Same op sequence as the kernel — (x - mean) / sqrt(var + eps)
        # * scale + bias — with the denominator precomputed (identical
        # float32 value) and every step writing in place.
        denom = spec.prepared(
            (node.name, "bn_denom"),
            lambda: np.sqrt(np.asarray(var + eps, dtype=np.float32)))
        x_name, out_name = node.inputs[0], node.outputs[0]
        x = self._view(x_name)
        dst = self._view(out_name)

        def emit(xv: np.ndarray, dv: np.ndarray,
                 batch: Optional[Tuple[int, int]]) -> None:
            def step(xv=xv, dv=dv) -> None:
                np.subtract(xv, mean, out=dv)
                np.divide(dv, denom, out=dv)
                np.multiply(dv, scale, out=dv)
                np.add(dv, bias, out=dv)
            self._add_step(step, [self._region(x_name, batch=batch)],
                           [self._region(out_name, batch=batch)])

        shards = 1
        if x.shape == dst.shape and dst.ndim >= 2:
            shards = self._shard_count(dst.shape[0])
        if shards <= 1:
            emit(x, dst, None)
        else:
            for n0, n1 in _shard_ranges(dst.shape[0], shards):
                emit(x[n0:n1], dst[n0:n1], (n0, n1))

    def _bind_elementwise(self, node: Node) -> None:
        spec = self.spec
        op = node.op_type
        ins = [spec.inits[t] if t in spec.inits else self._view(t)
               for t in node.inputs]
        out_name = node.outputs[0]
        dst = self._view(out_name)
        n = dst.shape[0] if dst.ndim >= 2 else 0
        shards = self._shard_count(n) if dst.ndim >= 2 else 1
        ranges: List[Optional[Tuple[int, int]]]
        ranges = list(_shard_ranges(n, shards)) if shards > 1 else [None]
        for rng in ranges:
            if rng is None:
                ivs = list(ins)
                in_batches: List[Optional[Tuple[int, int]]] = \
                    [None] * len(ins)
                dv = dst
            else:
                n0, n1 = rng
                ivs, in_batches = [], []
                for arr in ins:
                    # Slice operands that carry the batch dimension;
                    # broadcast operands (per-channel biases, scalars)
                    # pass through whole — ufuncs broadcast per
                    # element, so the shard is byte-identical.
                    if arr.ndim == dst.ndim and arr.shape[0] == n:
                        ivs.append(arr[n0:n1])
                        in_batches.append(rng)
                    else:
                        ivs.append(arr)
                        in_batches.append(None)
                dv = dst[n0:n1]
            if op == "Clip":
                lo, hi = node.attr("min", 0.0), node.attr("max", 6.0)
                xv = ivs[0]

                def step(xv=xv, dv=dv, lo=lo, hi=hi) -> None:
                    np.clip(xv, lo, hi, out=dv)
            elif op in _UNARY_OUT:
                fn, xv = _UNARY_OUT[op], ivs[0]

                def step(fn=fn, xv=xv, dv=dv) -> None:
                    fn(xv, out=dv)
            else:
                fn, (av, bv) = _BINARY_OUT[op], ivs

                def step(fn=fn, av=av, bv=bv, dv=dv) -> None:
                    fn(av, bv, out=dv)
            self._add_step(
                step,
                [self._region(t, batch=b)
                 for t, b in zip(node.inputs, in_batches)],
                [self._region(out_name, batch=rng)])

    def _bind_generic(self, node: Node) -> None:
        fn = KERNELS.get(node.op_type)
        if fn is None:
            raise NotImplementedError(
                f"no numpy kernel for op {node.op_type!r}")
        spec = self.spec
        ins = [spec.inits[t] if t in spec.inits else self._view(t)
               for t in node.inputs]
        outs = [self._view(t) for t in node.outputs]

        def step(node=node, fn=fn, ins=ins, outs=outs) -> None:
            for dst, res in zip(outs, _node_results(node, fn(node, ins))):
                np.copyto(dst, res)
        self._add_step(step, [self._region(t) for t in node.inputs],
                       [self._region(t) for t in node.outputs])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, feeds: Mapping[str, np.ndarray],
            max_inflight: int = 1) -> Dict[str, np.ndarray]:
        for name, view in self._input_views:
            np.copyto(view, feeds[name])
        if max_inflight > 1 and self._dep_counts is not None \
                and len(self._steps) > 1:
            self._run_parallel(max_inflight)
        else:
            for step in self._steps:
                step()
        out: Dict[str, np.ndarray] = {}
        for t, view in self._output_views.items():
            if view is None:
                out[t] = self.spec.inits[t]
            else:
                out[t] = view.copy()
        return out

    def _run_parallel(self, max_inflight: int) -> None:
        """Dependency-counted dispatch onto the shared host executor.

        One step always runs inline on the calling thread (the serial
        fallback when the ready set is 1-wide costs nothing); the rest
        of the ready set — up to ``max_inflight - 1`` — is submitted to
        the pool, whose workers spend their time in GIL-releasing
        NumPy/BLAS kernels.
        """
        steps = self._steps
        counts = list(self._dep_counts)
        dependents = self._dependents
        ready = deque(i for i, c in enumerate(counts) if c == 0)
        remaining = len(steps)
        done: SimpleQueue = SimpleQueue()
        inflight = 0
        error: Optional[BaseException] = None
        pool = host_executor()

        def work(i: int) -> None:
            try:
                steps[i]()
                done.put((i, None))
            except BaseException as exc:  # surfaced on the caller
                done.put((i, exc))

        def finish(i: int) -> None:
            nonlocal remaining
            remaining -= 1
            for j in dependents[i]:
                counts[j] -= 1
                if counts[j] == 0:
                    ready.append(j)

        while remaining and error is None:
            while len(ready) > 1 and inflight < max_inflight - 1:
                pool.submit(work, ready.popleft())
                inflight += 1
            if ready:
                i = ready.popleft()
                try:
                    steps[i]()
                except BaseException as exc:
                    error = exc
                    break
                finish(i)
                while True:  # collect whatever finished meanwhile
                    try:
                        j, exc = done.get_nowait()
                    except Empty:
                        break
                    inflight -= 1
                    if exc is not None:
                        error = error or exc
                    else:
                        finish(j)
            else:
                if not inflight:  # pragma: no cover - DAG by construction
                    raise RuntimeError(
                        "operator scheduler stalled: cyclic step graph")
                j, exc = done.get()
                inflight -= 1
                if exc is not None:
                    error = exc
                else:
                    finish(j)
        while inflight:  # drain before surfacing any error
            _, exc = done.get()
            inflight -= 1
            if exc is not None and error is None:
                error = exc
        if error is not None:
            raise error


class CompiledExecutable:
    """A graph bound once for repeat, concurrency-safe inference.

    Programs are cached per feed-shape signature (and invalidated when
    the graph's mutation :attr:`~repro.graph.graph.Graph.version`
    changes).  Each program owns a bounded :class:`StatePool` of
    :class:`ExecutionState` instances; :meth:`run` checks one out,
    executes on its private arena, and returns it — concurrent callers
    proceed on distinct states with no shared lock on the hot path
    (the old global ``_run_lock`` is gone).

    ``workers > 1`` turns on the operator-parallel scheduler inside
    each run; ``max_states`` caps how many arenas may exist at once
    (acquires beyond it wait for a release).  ``elide=False`` disables
    the zero-copy treatment of memopt-``elided`` nodes and pre-padded
    conv reads; it is the ablation the benchmarks use to show what the
    paper's memory-layout optimization buys at runtime.
    """

    def __init__(self, graph: Graph, *, elide: bool = True,
                 workers: Optional[int] = None,
                 max_states: Optional[int] = None) -> None:
        self.graph = graph
        self.elide = elide
        self.workers = resolve_host_workers(workers)
        self.max_states = int(max_states) if max_states is not None \
            else DEFAULT_MAX_STATES
        if self.max_states < 1:
            raise ValueError(
                f"max_states must be >= 1, got {self.max_states}")
        self._version = graph.version
        #: Guards the program map only — never held while running.
        self._bind_lock = threading.Lock()
        self._pools: Dict[tuple, Tuple[_ProgramSpec, StatePool]] = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pools"] = {}  # closures and arenas never travel
        del state["_bind_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._bind_lock = threading.Lock()
        self._pools = {}

    def _pool_for(self, feeds: Mapping[str, np.ndarray]
                  ) -> Tuple[_ProgramSpec, StatePool]:
        with self._bind_lock:
            if self.graph.version != self._version:
                self._pools.clear()
                self._version = self.graph.version
            key = tuple(
                (name, tuple(np.shape(feeds[name])))
                for name in self.graph.inputs)
            entry = self._pools.get(key)
            if entry is None:
                declared = all(
                    tuple(np.shape(feeds[name]))
                    == tuple(self.graph.tensors[name].shape)
                    for name in self.graph.inputs)
                if declared:
                    shapes = {name: tuple(info.shape)
                              for name, info in self.graph.tensors.items()}
                else:
                    shapes = _capture_shapes(self.graph, feeds)
                spec = _ProgramSpec(self.graph, shapes, elide=self.elide)
                shards = self.workers
                parallel = self.workers > 1

                def factory(spec=spec, shards=shards, parallel=parallel):
                    return ExecutionState(spec, shards=shards,
                                          parallel=parallel)
                entry = (spec, StatePool(factory, self.max_states))
                self._pools[key] = entry
        return entry

    def __call__(self, feeds: Mapping[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
        return self.run(feeds)

    def run(self, feeds: Mapping[str, np.ndarray], *,
            workers: Optional[int] = None,
            state_timeout_s: Optional[float] = None
            ) -> Dict[str, np.ndarray]:
        """One inference; byte-identical to interpreted ``execute``.

        Thread-safe without serializing: each call executes on a
        pooled private state.  ``workers`` may lower (never raise) the
        dispatch width this call uses; ``state_timeout_s`` bounds the
        wait for a free state when the pool is exhausted
        (:class:`~repro.runtime.hostpool.StatePoolTimeout`).
        """
        feeds32 = {}
        for name in self.graph.inputs:
            if name not in feeds:
                raise KeyError(f"missing feed for graph input {name!r}")
            feeds32[name] = np.asarray(feeds[name], dtype=np.float32)
        _, pool = self._pool_for(feeds32)
        state = pool.acquire(timeout_s=state_timeout_s)
        try:
            width = self.workers if workers is None \
                else max(1, min(int(workers), self.workers))
            return state.run(feeds32, max_inflight=width)
        finally:
            pool.release(state)

    def buffer_plan(self, feeds: Optional[Mapping[str, np.ndarray]] = None
                    ) -> BufferPlan:
        """The buffer plan bound for ``feeds`` (declared shapes if None).

        Resolves the program spec only — no execution state (arena) is
        bound.
        """
        if feeds is None:
            feeds = {name: np.zeros(self.graph.tensors[name].shape,
                                    dtype=np.float32)
                     for name in self.graph.inputs}
        spec, _ = self._pool_for(
            {n: np.asarray(f, dtype=np.float32) for n, f in feeds.items()})
        return spec.plan

    def stats(self) -> Dict[str, object]:
        """Buffer-plan stats at the graph's declared shapes."""
        return self.buffer_plan().stats()

    def pool_stats(self) -> Dict[str, object]:
        """Aggregate state-pool gauges across all bound programs."""
        with self._bind_lock:
            pools = [pool for _, pool in self._pools.values()]
        agg: Dict[str, object] = {
            "programs": len(pools),
            "workers": self.workers,
            "max_states": self.max_states,
            "states_bound": 0,
            "in_use": 0,
            "peak_in_use": 0,
            "acquires": 0,
            "waits": 0,
        }
        for pool in pools:
            s = pool.stats()
            agg["states_bound"] += s["states_bound"]
            agg["in_use"] += s["in_use"]
            agg["peak_in_use"] = max(agg["peak_in_use"], s["peak_in_use"])
            agg["acquires"] += s["acquires"]
            agg["waits"] += s["waits"]
        return agg


_UNARY_OUT: Dict[str, Callable] = {
    "Relu": lambda x, out: np.maximum(x, 0.0, out=out),
    "Tanh": np.tanh,
    "Sigmoid": stable_sigmoid,
    "Silu": stable_silu,
}

_BINARY_OUT: Dict[str, Callable] = {
    "Add": np.add,
    "Mul": np.multiply,
    "Sub": np.subtract,
    "Div": np.divide,
}
