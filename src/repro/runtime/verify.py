"""Equivalence checking between a model and its transformed graphs.

The standard correctness instrument of the repository: feed both graphs
identical random inputs and compare outputs in float32.  Used by the
test suite, the examples, the pass manager's inter-pass verifier
(:func:`numeric_spot_check`, enabled by ``--verify-passes``), and
available to users validating their own pass pipelines.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.runtime.numerical import execute


class EquivalenceError(AssertionError):
    """Raised when two graphs disagree beyond tolerance."""


def random_feeds(graph: Graph, seed: int = 0, scale: float = 0.1,
                 batch: Optional[int] = None) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every graph input.

    ``batch`` overrides the leading dimension of every input — the
    executor is batch-polymorphic, so a graph declared at batch 1 can
    be driven at any batch size.
    """
    rng = np.random.default_rng(seed)
    feeds = {}
    for name in graph.inputs:
        shape = graph.tensors[name].shape
        if batch is not None:
            shape = (batch,) + tuple(shape[1:])
        feeds[name] = rng.standard_normal(shape) * scale
    return feeds


def numeric_spot_check(reference: Graph, transformed: Graph, seed: int = 0,
                       rtol: float = 5e-3, atol: float = 5e-3) -> float:
    """One-feed numeric equivalence probe for the inter-pass verifier.

    Both graphs run through the interpreted oracle — the verifier wants
    the semantics of the *transform* in isolation, independent of the
    buffer planner and compiled executor (those have their own
    byte-identity suite).  Returns the max absolute error; raises
    :class:`EquivalenceError` beyond tolerance.
    """
    return verify_equivalence(reference, transformed, seed=seed,
                              rtol=rtol, atol=atol, use_compiled=False)


def verify_equivalence(reference: Graph, transformed: Graph,
                       feeds: Optional[Dict[str, np.ndarray]] = None,
                       rtol: float = 5e-3, atol: float = 5e-3,
                       seed: int = 0, use_compiled: bool = True) -> float:
    """Assert both graphs compute the same outputs; returns max |error|.

    ``transformed`` must consume the same graph inputs and produce the
    same output tensor names as ``reference`` (the invariant every
    PIMFlow pass maintains).

    The reference graph always runs through the interpreted
    :func:`~repro.runtime.numerical.execute` — the semantics oracle —
    while the transformed graph runs through the buffer-planned
    :class:`~repro.runtime.compiled.CompiledExecutable` (the path real
    inference takes) unless ``use_compiled`` is False.  Because the
    compiled path is byte-identical to the interpreter, this checks the
    transform *and* the executor in one shot.
    """
    if set(transformed.inputs) != set(reference.inputs):
        raise EquivalenceError(
            f"input mismatch: {reference.inputs} vs {transformed.inputs}")
    if set(transformed.outputs) != set(reference.outputs):
        raise EquivalenceError(
            f"output mismatch: {reference.outputs} vs {transformed.outputs}")
    feeds = feeds or random_feeds(reference, seed=seed)
    ref = execute(reference, feeds)
    if use_compiled:
        from repro.runtime.compiled import CompiledExecutable
        out = CompiledExecutable(transformed).run(feeds)
    else:
        out = execute(transformed, feeds)
    worst = 0.0
    for name in ref:
        a, b = ref[name], out[name]
        if a.shape != b.shape:
            raise EquivalenceError(
                f"output {name!r} shape mismatch: {a.shape} vs {b.shape}")
        err = float(np.max(np.abs(a - b))) if a.size else 0.0
        worst = max(worst, err)
        if not np.allclose(a, b, rtol=rtol, atol=atol):
            raise EquivalenceError(
                f"output {name!r} differs: max |error| = {err:.3e} "
                f"(rtol={rtol}, atol={atol})")
    return worst
