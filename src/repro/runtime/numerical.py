"""Numpy reference executor for model graphs.

The executor establishes *what a graph computes* so that every PIMFlow
transformation can be checked for semantics preservation: a transformed
graph must produce outputs numerically equal to the original.  All math
runs in float32 regardless of declared tensor dtype, which keeps the
equality checks deterministic across differently-ordered but equivalent
computations (splits, pipelining, command-level reordering).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node

Env = Dict[str, np.ndarray]
KernelFn = Callable[[Node, List[np.ndarray]], np.ndarray]

KERNELS: Dict[str, KernelFn] = {}


def kernel(op_type: str) -> Callable[[KernelFn], KernelFn]:
    """Register the numpy implementation of an operator."""

    def wrap(fn: KernelFn) -> KernelFn:
        KERNELS[op_type] = fn
        return fn

    return wrap


def conv2d_nhwc(x: np.ndarray, w: np.ndarray, bias: np.ndarray,
                strides, pads, group: int) -> np.ndarray:
    """Direct NHWC convolution with groups.

    Vectorized over the kernel window: for each kernel offset the padded
    input is strided-sliced and contracted against the corresponding
    weight slice, accumulating into the output.  This is both the
    reference semantics and the shape used to validate the im2col
    lowering in :mod:`repro.lowering`.
    """
    n, h, wdt, cin = x.shape
    kh, kw, cin_g, cout = w.shape
    sh, sw = strides
    pt, pl, pb, pr = pads
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    oh = (h + pt + pb - kh) // sh + 1
    ow = (wdt + pl + pr - kw) // sw + 1
    cout_g = cout // group
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for g in range(group):
        xg = xp[..., g * cin_g:(g + 1) * cin_g]
        wg = w[..., g * cout_g:(g + 1) * cout_g]
        acc = np.zeros((n, oh, ow, cout_g), dtype=np.float32)
        for i in range(kh):
            for j in range(kw):
                patch = xg[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                acc += np.tensordot(patch, wg[i, j], axes=([3], [0]))
        out[..., g * cout_g:(g + 1) * cout_g] = acc
    if bias is not None:
        out = out + bias
    return out


@kernel("Conv")
def _run_conv(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    from repro.transform.fusion import apply_fused_activation

    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    out = conv2d_nhwc(
        x, w, bias,
        node.attr("strides", (1, 1)),
        node.attr("pads", (0, 0, 0, 0)),
        int(node.attr("group", 1)),
    )
    return apply_fused_activation(node, out)


@kernel("Gemm")
def _run_gemm(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    from repro.transform.fusion import apply_fused_activation

    out = inputs[0] @ inputs[1]
    if len(inputs) > 2:
        out = out + inputs[2]
    return apply_fused_activation(node, out)


@kernel("MatMul")
def _run_matmul(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] @ inputs[1]


@kernel("Relu")
def _run_relu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.maximum(inputs[0], 0.0)


@kernel("Clip")
def _run_clip(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.clip(inputs[0], node.attr("min", 0.0), node.attr("max", 6.0))


@kernel("Sigmoid")
def _run_sigmoid(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-inputs[0]))


@kernel("Silu")
def _run_silu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    return x / (1.0 + np.exp(-x))


@kernel("Gelu")
def _run_gelu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    # tanh approximation, matching common BERT implementations.
    x = inputs[0]
    return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x ** 3)))


@kernel("Tanh")
def _run_tanh(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.tanh(inputs[0])


@kernel("Erf")
def _run_erf(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    # Abramowitz & Stegun 7.1.26 rational approximation (scipy-free).
    x = inputs[0]
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (0.254829592 + t * (-0.284496736 + t * (
        1.421413741 + t * (-1.453152027 + t * 1.061405429))))
    return sign * (1.0 - poly * np.exp(-ax * ax))


@kernel("Add")
def _run_add(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] + inputs[1]


@kernel("Mul")
def _run_mul(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] * inputs[1]


@kernel("Sub")
def _run_sub(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] - inputs[1]


@kernel("Div")
def _run_div(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] / inputs[1]


@kernel("BatchNormalization")
def _run_bn(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x, scale, bias, mean, var = inputs
    eps = node.attr("epsilon", 1e-5)
    return (x - mean) / np.sqrt(var + eps) * scale + bias


def _pool(node: Node, x: np.ndarray, reducer: str) -> np.ndarray:
    kh, kw = node.attr("kernel_shape")
    sh, sw = node.attr("strides", (kh, kw))
    pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
    fill = -np.inf if reducer == "max" else 0.0
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)), constant_values=fill)
    n, h, w, c = xp.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    windows = np.stack([
        xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
        for i in range(kh) for j in range(kw)
    ])
    if reducer == "max":
        return windows.max(axis=0)
    # ONNX AveragePool default excludes padding from the divisor only
    # with count_include_pad=0; the models here never average over pads.
    return windows.mean(axis=0)


@kernel("MaxPool")
def _run_maxpool(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return _pool(node, inputs[0], "max")


@kernel("AveragePool")
def _run_avgpool(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return _pool(node, inputs[0], "avg")


@kernel("GlobalAveragePool")
def _run_gap(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0].mean(axis=(1, 2), keepdims=True)


@kernel("Flatten")
def _run_flatten(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    return x.reshape(x.shape[0], -1)


@kernel("Reshape")
def _run_reshape(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0].reshape(node.attr("shape"))


@kernel("Transpose")
def _run_transpose(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    perm = node.attr("perm", tuple(reversed(range(x.ndim))))
    return np.transpose(x, perm)


@kernel("Softmax")
def _run_softmax(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    axis = node.attr("axis", -1)
    x = inputs[0]
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


@kernel("Identity")
def _run_identity(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0]


@kernel("Concat")
def _run_concat(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.concatenate(inputs, axis=int(node.attr("axis")))


@kernel("Slice")
def _run_slice(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    axis = int(node.attr("axis")) % x.ndim
    index = [slice(None)] * x.ndim
    index[axis] = slice(int(node.attr("start")), int(node.attr("end")))
    return x[tuple(index)]


@kernel("Pad")
def _run_pad(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.pad(inputs[0], tuple(node.attr("pads")))


@kernel("ReduceMean")
def _run_reduce_mean(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    axes = tuple(node.attr("axes"))
    return inputs[0].mean(axis=axes, keepdims=bool(node.attr("keepdims", True)))


def execute_node(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    """Execute a single node on concrete inputs."""
    fn = KERNELS.get(node.op_type)
    if fn is None:
        raise NotImplementedError(f"no numpy kernel for op {node.op_type!r}")
    return fn(node, [np.asarray(x, dtype=np.float32) for x in inputs])


def execute(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Run a graph on concrete inputs and return its output tensors.

    ``feeds`` maps graph-input names to arrays; initializers come from
    the graph itself.  Intermediate tensors are freed as soon as their
    last consumer has run, so large transformed graphs stay cheap.
    """
    env: Env = {}
    for name in graph.inputs:
        if name not in feeds:
            raise KeyError(f"missing feed for graph input {name!r}")
        env[name] = np.asarray(feeds[name], dtype=np.float32)
    for name, value in graph.initializers.items():
        env[name] = np.asarray(value, dtype=np.float32)

    order = graph.toposort()
    remaining_uses: Dict[str, int] = {}
    for n in order:
        for t in n.inputs:
            remaining_uses[t] = remaining_uses.get(t, 0) + 1

    outputs: Dict[str, np.ndarray] = {}
    keep = set(graph.outputs) | set(graph.initializers) | set(graph.inputs)
    for n in order:
        result = execute_node(n, [env[t] for t in n.inputs])
        env[n.outputs[0]] = result
        if n.outputs[0] in graph.outputs:
            outputs[n.outputs[0]] = result
        for t in n.inputs:
            remaining_uses[t] -= 1
            if remaining_uses[t] == 0 and t not in keep:
                del env[t]
    for t in graph.outputs:
        if t in env:
            outputs[t] = env[t]
    return outputs
