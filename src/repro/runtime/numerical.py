"""Numpy reference executor for model graphs.

The executor establishes *what a graph computes* so that every PIMFlow
transformation can be checked for semantics preservation: a transformed
graph must produce outputs numerically equal to the original.  All math
runs in float32 regardless of declared tensor dtype, which keeps the
equality checks deterministic across differently-ordered but equivalent
computations (splits, pipelining, command-level reordering).

The executor is also the serving engine behind ``runtime.verify`` and
any host-side inference, so convolution dispatches through vectorized
fast paths instead of a per-group Python loop:

* **depthwise** (``group == cin``, one filter per channel): strided
  window slices multiplied elementwise against the per-channel filter
  taps — no contraction at all.
* **regular** (``group == 1``): im2col + one GEMM when the lowered
  matrix is small enough, falling back to per-tap ``tensordot``
  accumulation for very large expansions (e.g. early VGG layers).
* **grouped** (``1 < group < cin``): a single einsum contraction per
  kernel tap over a ``(N, OH, OW, G, Cg)`` channel layout.

:func:`conv2d_nhwc_reference` keeps the original per-group loop as the
oracle the property tests compare every fast path against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.node import Node

Env = Dict[str, np.ndarray]
KernelFn = Callable[[Node, List[np.ndarray]], np.ndarray]

KERNELS: Dict[str, KernelFn] = {}

#: im2col expansions beyond this many float32 elements fall back to
#: per-tap accumulation (64 MB keeps peak memory bounded on big convs).
IM2COL_MAX_ELEMENTS = 16 * 1024 * 1024


def kernel(op_type: str) -> Callable[[KernelFn], KernelFn]:
    """Register the numpy implementation of an operator."""

    def wrap(fn: KernelFn) -> KernelFn:
        KERNELS[op_type] = fn
        return fn

    return wrap


def _conv_geometry(x: np.ndarray, w: np.ndarray, strides, pads, group: int):
    """Shared shape math and validation for all conv paths."""
    n, h, wdt, cin = x.shape
    kh, kw, cin_g, cout = w.shape
    sh, sw = strides
    pt, pl, pb, pr = pads
    if group < 1 or cin % group or cout % group:
        raise ValueError(
            f"group={group} must divide both cin={cin} and cout={cout}")
    if cin_g * group != cin:
        raise ValueError(
            f"weight cin/group={cin_g} inconsistent with cin={cin}, "
            f"group={group}")
    oh = (h + pt + pb - kh) // sh + 1
    ow = (wdt + pl + pr - kw) // sw + 1
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    return xp, n, oh, ow, kh, kw, sh, sw, cin_g, cout


def conv2d_nhwc_reference(x: np.ndarray, w: np.ndarray, bias: np.ndarray,
                          strides, pads, group: int) -> np.ndarray:
    """Naive per-group loop convolution — the semantics oracle.

    Kept deliberately simple (one ``tensordot`` per group per kernel
    tap) so the vectorized paths in :func:`conv2d_nhwc` have an
    independent reference to be property-tested against.
    """
    xp, n, oh, ow, kh, kw, sh, sw, cin_g, cout = _conv_geometry(
        x, w, strides, pads, group)
    cout_g = cout // group
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for g in range(group):
        xg = xp[..., g * cin_g:(g + 1) * cin_g]
        wg = w[..., g * cout_g:(g + 1) * cout_g]
        acc = np.zeros((n, oh, ow, cout_g), dtype=np.float32)
        for i in range(kh):
            for j in range(kw):
                patch = xg[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
                acc += np.tensordot(patch, wg[i, j], axes=([3], [0]))
        out[..., g * cout_g:(g + 1) * cout_g] = acc
    if bias is not None:
        out = out + bias
    return out


def _conv_depthwise(xp: np.ndarray, w: np.ndarray, n, oh, ow, kh, kw,
                    sh, sw, cout) -> np.ndarray:
    # One filter tap per channel: the contraction degenerates to an
    # elementwise multiply-accumulate over strided window slices.
    taps = w.reshape(kh, kw, cout)
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            out += xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :] * taps[i, j]
    return out


def _conv_grouped(xp: np.ndarray, w: np.ndarray, n, oh, ow, kh, kw,
                  sh, sw, cin_g, cout, group) -> np.ndarray:
    # (N, OH, OW, G, Cg) layout: one einsum contraction per kernel tap
    # covers every group at once.
    cout_g = cout // group
    # w[i, j] is (cin_g, cout) with cout = G-major; expose the groups.
    wg = w.reshape(kh, kw, cin_g, group, cout_g).transpose(0, 1, 3, 2, 4)
    out = np.zeros((n, oh, ow, group, cout_g), dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            patch = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
            patch = patch.reshape(n, oh, ow, group, cin_g)
            out += np.einsum("nxygc,gcd->nxygd", patch, wg[i, j],
                             optimize=True)
    return out.reshape(n, oh, ow, cout)


def conv_window_view(xp: np.ndarray, oh: int, ow: int, kh: int, kw: int,
                     sh: int, sw: int) -> np.ndarray:
    """Read-only ``(N, OH, OW, KH, KW, C)`` view of every conv patch.

    Zero-materialization im2col: element ``[n, y, x, i, j, c]`` aliases
    ``xp[n, y*sh + i, x*sw + j, c]`` through pure stride arithmetic, so
    no patch matrix is built.  The view is explicitly non-writeable —
    overlapping windows alias the same storage, and a write through one
    would silently corrupt its neighbours.
    """
    n, _, _, cin = xp.shape
    sn, srow, scol, sc = xp.strides
    return np.lib.stride_tricks.as_strided(
        xp, shape=(n, oh, ow, kh, kw, cin),
        strides=(sn, srow * sh, scol * sw, srow, scol, sc),
        writeable=False)


def reshape_as_view(arr: np.ndarray, shape) -> np.ndarray:
    """``arr.reshape(shape)`` only if expressible as a view, else None.

    In-place ``.shape`` assignment is the one numpy reshape API that
    refuses to copy, which makes it a copy-free viewability probe.
    """
    v = arr[...]
    try:
        v.shape = shape
    except AttributeError:
        return None
    return v


def _conv_regular(xp: np.ndarray, w: np.ndarray, n, oh, ow, kh, kw,
                  sh, sw, cin, cout) -> np.ndarray:
    if kh == 1 and kw == 1:
        # Pointwise: a single GEMM over a strided view, no expansion.
        patch = xp[:, :oh * sh:sh, :ow * sw:sw, :]
        return np.ascontiguousarray(patch).reshape(-1, cin) @ \
            w.reshape(cin, cout)
    if n * oh * ow * kh * kw * cin <= IM2COL_MAX_ELEMENTS:
        # Strided-view im2col + one GEMM.  When the window view is
        # 2-D-reshapable in place the GEMM reads the input storage
        # directly; otherwise ``reshape`` performs one vectorized
        # gather into the same (npix, K) value layout the materialized
        # loop produced — the GEMM operand is bit-identical either way.
        cols = conv_window_view(xp, oh, ow, kh, kw, sh, sw)
        return cols.reshape(n * oh * ow, kh * kw * cin) @ \
            w.reshape(kh * kw * cin, cout)
    # Expansion too large: per-tap GEMM accumulation (full cin at once).
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            patch = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
            out += np.tensordot(patch, w[i, j], axes=([3], [0]))
    return out


def conv2d_nhwc(x: np.ndarray, w: np.ndarray, bias: np.ndarray,
                strides, pads, group: int) -> np.ndarray:
    """Vectorized NHWC convolution with groups.

    Dispatches to a depthwise, regular (im2col + GEMM), or grouped
    (einsum) fast path; all three match
    :func:`conv2d_nhwc_reference` within float32 tolerance (the test
    suite asserts this property) and remain the semantics used to
    validate the im2col lowering in :mod:`repro.lowering`.
    """
    xp, n, oh, ow, kh, kw, sh, sw, cin_g, cout = _conv_geometry(
        x, w, strides, pads, group)
    cin = x.shape[3]
    if group == 1:
        out = _conv_regular(xp, w, n, oh, ow, kh, kw, sh, sw, cin, cout)
        out = out.reshape(n, oh, ow, cout)
    elif group == cin and cin_g == 1 and cout == group:
        out = _conv_depthwise(xp, w, n, oh, ow, kh, kw, sh, sw, cout)
    else:
        out = _conv_grouped(xp, w, n, oh, ow, kh, kw, sh, sw, cin_g,
                            cout, group)
    if bias is not None:
        out = out + bias
    return out


@kernel("Conv")
def _run_conv(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    from repro.transform.fusion import apply_fused_activation

    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    out = conv2d_nhwc(
        x, w, bias,
        node.attr("strides", (1, 1)),
        node.attr("pads", (0, 0, 0, 0)),
        int(node.attr("group", 1)),
    )
    return apply_fused_activation(node, out)


@kernel("Gemm")
def _run_gemm(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    from repro.transform.fusion import apply_fused_activation

    out = inputs[0] @ inputs[1]
    if len(inputs) > 2:
        out = out + inputs[2]
    return apply_fused_activation(node, out)


@kernel("MatMul")
def _run_matmul(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] @ inputs[1]


@kernel("Relu")
def _run_relu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.maximum(inputs[0], 0.0)


@kernel("Clip")
def _run_clip(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.clip(inputs[0], node.attr("min", 0.0), node.attr("max", 6.0))


def stable_sigmoid(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Overflow-free logistic: branch on sign so ``exp`` sees ``-|x|``.

    ``1 / (1 + exp(-x))`` overflows for large-negative ``x``; computing
    with ``e = exp(-|x|) <= 1`` gives ``1 / (1 + e)`` for ``x >= 0`` —
    bit-identical to the naive formula there — and ``e / (1 + e)`` for
    ``x < 0``, which is the same value evaluated without overflow.
    ``out`` may alias ``x``: the division is the only write.
    """
    e = np.exp(-np.abs(x))
    num = np.where(x >= 0, 1.0, e)
    return np.divide(num, 1.0 + e, out=out)


def stable_silu(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Overflow-free ``x * sigmoid(x)``; ``out`` may alias ``x``."""
    e = np.exp(-np.abs(x))
    num = np.where(x >= 0, x, x * e)
    return np.divide(num, 1.0 + e, out=out)


@kernel("Sigmoid")
def _run_sigmoid(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return stable_sigmoid(inputs[0])


@kernel("Silu")
def _run_silu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return stable_silu(inputs[0])


@kernel("Gelu")
def _run_gelu(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    # tanh approximation, matching common BERT implementations.
    x = inputs[0]
    return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x ** 3)))


@kernel("Tanh")
def _run_tanh(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.tanh(inputs[0])


@kernel("Erf")
def _run_erf(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    # Abramowitz & Stegun 7.1.26 rational approximation (scipy-free).
    x = inputs[0]
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (0.254829592 + t * (-0.284496736 + t * (
        1.421413741 + t * (-1.453152027 + t * 1.061405429))))
    return sign * (1.0 - poly * np.exp(-ax * ax))


@kernel("Add")
def _run_add(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] + inputs[1]


@kernel("Mul")
def _run_mul(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] * inputs[1]


@kernel("Sub")
def _run_sub(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] - inputs[1]


@kernel("Div")
def _run_div(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0] / inputs[1]


@kernel("BatchNormalization")
def _run_bn(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x, scale, bias, mean, var = inputs
    eps = node.attr("epsilon", 1e-5)
    return (x - mean) / np.sqrt(var + eps) * scale + bias


def apply_elementwise(op: str, attrs: Mapping, ins: Sequence[np.ndarray],
                      out: np.ndarray = None) -> np.ndarray:
    """One elementwise op with the exact float32 sequence of its kernel.

    The shared evaluation core behind both the ``FusedElementwise``
    interpreter kernel and the compiled executor's tiled fused closures
    (:meth:`~repro.runtime.compiled.ExecutionState._bind_fused`): every
    branch reproduces the corresponding standalone kernel's operations
    bit for bit, which is what lets fused execution stay byte-identical
    to the unfused oracle.  ``out``, when given, receives the result
    (it must not alias any input except where the standalone kernel
    already tolerates aliasing, e.g. the sigmoid/silu divide).
    """
    if op == "Add":
        return np.add(ins[0], ins[1], out=out)
    if op == "Mul":
        return np.multiply(ins[0], ins[1], out=out)
    if op == "Sub":
        return np.subtract(ins[0], ins[1], out=out)
    if op == "Div":
        return np.divide(ins[0], ins[1], out=out)
    if op == "Relu":
        return np.maximum(ins[0], 0.0, out=out)
    if op == "Clip":
        return np.clip(ins[0], attrs.get("min", 0.0), attrs.get("max", 6.0),
                       out=out)
    if op == "Sigmoid":
        return stable_sigmoid(ins[0], out=out)
    if op == "Silu":
        return stable_silu(ins[0], out=out)
    if op == "Tanh":
        return np.tanh(ins[0], out=out)
    if op == "Gelu":
        x = ins[0]
        res = 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x ** 3)))
        if out is None:
            return res
        np.copyto(out, res)
        return out
    if op == "Erf":
        x = ins[0]
        sign = np.sign(x)
        ax = np.abs(x)
        t = 1.0 / (1.0 + 0.3275911 * ax)
        poly = t * (0.254829592 + t * (-0.284496736 + t * (
            1.421413741 + t * (-1.453152027 + t * 1.061405429))))
        res = sign * (1.0 - poly * np.exp(-ax * ax))
        if out is None:
            return res
        np.copyto(out, res)
        return out
    if op == "BatchNormalization":
        x, scale, bias, mean, var = ins
        # "_denom_input" marks a bind-time substitution (compiled
        # path): the fifth operand already holds sqrt(var + eps), so
        # it participates in tile slicing like every other operand.
        # Recomputing it here yields the same float32 values.
        if attrs.get("_denom_input"):
            denom = var
        else:
            denom = np.sqrt(var + attrs.get("epsilon", 1e-5))
        if out is None:
            return (x - mean) / denom * scale + bias
        np.subtract(x, mean, out=out)
        np.divide(out, denom, out=out)
        np.multiply(out, scale, out=out)
        np.add(out, bias, out=out)
        return out
    raise NotImplementedError(f"no fused elementwise evaluator for {op!r}")


def compile_elementwise(op: str, attrs: Mapping):
    """Bind-time specialization of :func:`apply_elementwise`.

    Returns ``kernel(ins, out) -> ndarray`` performing the exact ufunc
    sequence of the matching :func:`apply_elementwise` branch, with the
    op string and attr lookups resolved once.  The compiled executor's
    fused sweep calls the kernel per tile per entry, so hoisting the
    if-chain walk and ``attrs.get`` calls out of that loop matters;
    bit-for-bit agreement with :func:`apply_elementwise` remains the
    hard contract (same ufuncs, same order, same constants).
    """
    if op == "Add":
        return lambda ins, out: np.add(ins[0], ins[1], out=out)
    if op == "Mul":
        return lambda ins, out: np.multiply(ins[0], ins[1], out=out)
    if op == "Sub":
        return lambda ins, out: np.subtract(ins[0], ins[1], out=out)
    if op == "Div":
        return lambda ins, out: np.divide(ins[0], ins[1], out=out)
    if op == "Relu":
        return lambda ins, out: np.maximum(ins[0], 0.0, out=out)
    if op == "Clip":
        lo = attrs.get("min", 0.0)
        hi = attrs.get("max", 6.0)
        return lambda ins, out: np.clip(ins[0], lo, hi, out=out)
    if op == "Sigmoid":
        return lambda ins, out: stable_sigmoid(ins[0], out=out)
    if op == "Silu":
        return lambda ins, out: stable_silu(ins[0], out=out)
    if op == "Tanh":
        return lambda ins, out: np.tanh(ins[0], out=out)
    if op == "BatchNormalization":
        if attrs.get("_denom_input"):
            def bn_prepared(ins, out):
                x, scale, bias, mean, denom = ins
                if out is None:
                    return (x - mean) / denom * scale + bias
                np.subtract(x, mean, out=out)
                np.divide(out, denom, out=out)
                np.multiply(out, scale, out=out)
                np.add(out, bias, out=out)
                return out
            return bn_prepared
        eps = attrs.get("epsilon", 1e-5)

        def bn(ins, out):
            x, scale, bias, mean, var = ins
            denom = np.sqrt(var + eps)
            if out is None:
                return (x - mean) / denom * scale + bias
            np.subtract(x, mean, out=out)
            np.divide(out, denom, out=out)
            np.multiply(out, scale, out=out)
            np.add(out, bias, out=out)
            return out
        return bn
    # Gelu / Erf allocate temporaries either way; the generic
    # evaluator's branch is already their whole cost.
    return lambda ins, out: apply_elementwise(op, attrs, ins, out=out)


@kernel("FusedElementwise")
def _run_fused_elementwise(node: Node, inputs: List[np.ndarray]):
    expr = node.attr("expr") or []
    vals: List[np.ndarray] = []
    for entry in expr:
        ins = [inputs[ref[1]] if ref[0] == "in" else vals[ref[1]]
               for ref in entry["inputs"]]
        vals.append(apply_elementwise(
            entry["op"], entry.get("attrs") or {}, ins))
    outs = [vals[i] for i in node.attr("out_ids")]
    return outs[0] if len(outs) == 1 else tuple(outs)


def _pool(node: Node, x: np.ndarray, reducer: str) -> np.ndarray:
    kh, kw = node.attr("kernel_shape")
    sh, sw = node.attr("strides", (kh, kw))
    pt, pl, pb, pr = node.attr("pads", (0, 0, 0, 0))
    fill = -np.inf if reducer == "max" else 0.0
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)), constant_values=fill)
    n, h, w, c = xp.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    # Accumulate tap by tap into one output-shaped buffer instead of
    # stacking all kh*kw windows: peak memory drops ~kh*kw-fold and the
    # reduction order (sequential over taps) matches the stacked
    # ``max``/``mean`` bit for bit.
    out = np.array(xp[:, :oh * sh:sh, :ow * sw:sw, :], dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            if i == 0 and j == 0:
                continue
            win = xp[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :]
            if reducer == "max":
                np.maximum(out, win, out=out)
            else:
                out += win
    if reducer == "max":
        return out
    # ONNX AveragePool default excludes padding from the divisor only
    # with count_include_pad=0; the models here never average over pads.
    out /= kh * kw
    return out


@kernel("MaxPool")
def _run_maxpool(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return _pool(node, inputs[0], "max")


@kernel("AveragePool")
def _run_avgpool(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return _pool(node, inputs[0], "avg")


@kernel("GlobalAveragePool")
def _run_gap(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0].mean(axis=(1, 2), keepdims=True)


@kernel("Flatten")
def _run_flatten(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    return x.reshape(x.shape[0], -1)


@kernel("Reshape")
def _run_reshape(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    shape = tuple(node.attr("shape"))
    size = 1
    for d in shape:
        size *= d
    if size != x.size and shape:
        # Batched feed: the attribute shape was recorded for the
        # graph's declared batch; rescale the leading (batch) dim so
        # batched execution reshapes each sample identically.
        rest = 1
        for d in shape[1:]:
            rest *= d
        if rest > 0 and x.size % rest == 0:
            shape = (-1,) + tuple(shape[1:])
    return x.reshape(shape)


@kernel("Transpose")
def _run_transpose(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    perm = node.attr("perm", tuple(reversed(range(x.ndim))))
    return np.transpose(x, perm)


@kernel("Softmax")
def _run_softmax(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    axis = node.attr("axis", -1)
    x = inputs[0]
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


@kernel("Identity")
def _run_identity(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return inputs[0]


@kernel("Concat")
def _run_concat(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.concatenate(inputs, axis=int(node.attr("axis")))


@kernel("Slice")
def _run_slice(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    x = inputs[0]
    axis = int(node.attr("axis")) % x.ndim
    index = [slice(None)] * x.ndim
    index[axis] = slice(int(node.attr("start")), int(node.attr("end")))
    return x[tuple(index)]


@kernel("Pad")
def _run_pad(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    return np.pad(inputs[0], tuple(node.attr("pads")))


@kernel("ReduceMean")
def _run_reduce_mean(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    axes = tuple(node.attr("axes"))
    return inputs[0].mean(axis=axes, keepdims=bool(node.attr("keepdims", True)))


def execute_node(node: Node, inputs: List[np.ndarray]) -> np.ndarray:
    """Execute a single node on concrete inputs."""
    fn = KERNELS.get(node.op_type)
    if fn is None:
        raise NotImplementedError(f"no numpy kernel for op {node.op_type!r}")
    return fn(node, [
        x if isinstance(x, np.ndarray) and x.dtype == np.float32
        else np.asarray(x, dtype=np.float32)
        for x in inputs
    ])


def graph_initializers_f32(graph: Graph) -> Dict[str, np.ndarray]:
    """Float32 views of a graph's initializers, cached per graph.

    The cache is keyed on the graph's mutation :attr:`~Graph.version`
    and entry count, so repeated :func:`execute` calls skip the
    per-call dtype coercion while any ``add_initializer`` (or
    :meth:`~Graph.touch`) invalidates it.
    """
    cached = getattr(graph, "_f32_initializers", None)
    if (cached is not None and cached[0] == graph.version
            and len(cached[1]) == len(graph.initializers)):
        return cached[1]
    converted = {
        name: np.asarray(value, dtype=np.float32)
        for name, value in graph.initializers.items()
    }
    graph._f32_initializers = (graph.version, converted)
    return converted


def _node_results(node: Node, result) -> Sequence[np.ndarray]:
    """Normalize a kernel's return value to one array per output."""
    if isinstance(result, (tuple, list)):
        if len(result) != len(node.outputs):
            raise ValueError(
                f"kernel for {node.op_type!r} returned {len(result)} arrays "
                f"for {len(node.outputs)} outputs")
        return result
    if len(node.outputs) != 1:
        raise ValueError(
            f"kernel for {node.op_type!r} returned one array for "
            f"{len(node.outputs)} outputs")
    return (result,)


def execute(graph: Graph, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Run a graph on concrete inputs and return its output tensors.

    ``feeds`` maps graph-input names to arrays; initializers come from
    the graph itself (converted to float32 once per graph and cached).
    Feeds may carry a larger leading batch dimension than the graph
    declares — every registered op is batch-polymorphic, so an
    ``(8, H, W, C)`` feed into a batch-1 graph executes all eight
    samples in one pass, amortizing the per-node Python dispatch.
    Intermediate tensors are freed as soon as their last consumer has
    run, so large transformed graphs stay cheap.
    """
    inits = graph_initializers_f32(graph)
    env: Env = {}
    for name in graph.inputs:
        if name not in feeds:
            raise KeyError(f"missing feed for graph input {name!r}")
        env[name] = np.asarray(feeds[name], dtype=np.float32)

    order = graph.toposort()
    remaining_uses: Dict[str, int] = {}
    for n in order:
        for t in n.inputs:
            remaining_uses[t] = remaining_uses.get(t, 0) + 1

    outputs: Dict[str, np.ndarray] = {}
    keep = set(graph.outputs) | set(graph.inputs)
    wanted = set(graph.outputs)
    for n in order:
        fn = KERNELS.get(n.op_type)
        if fn is None:
            raise NotImplementedError(f"no numpy kernel for op {n.op_type!r}")
        result = fn(n, [env[t] if t in env else inits[t] for t in n.inputs])
        for t, value in zip(n.outputs, _node_results(n, result)):
            env[t] = value
            if t in wanted:
                outputs[t] = value
        for t in n.inputs:
            remaining_uses[t] -= 1
            if remaining_uses[t] == 0 and t not in keep and t in env:
                del env[t]
    for t in graph.outputs:
        if t in env:
            outputs[t] = env[t]
        elif t in inits:
            outputs[t] = inits[t]
    return outputs
