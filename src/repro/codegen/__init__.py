"""DRAM-PIM command generation (the TVM BYOC back-end substitute).

Turns lowered GEMV descriptors into explicit per-channel command
programs — GWRITE / G_ACT / COMP / READRES with the PIMFlow extensions —
whose dependency structure encodes the optimization level.  The
programs run on the event-driven simulator and are cross-validated
against the closed-form cost model.
"""

from repro.codegen.generator import (
    CommandBudgetError,
    generate_trace,
    tile_program,
    traces_for_graph,
)
from repro.codegen.trace_io import load_trace, save_trace, trace_from_dict, trace_to_dict

__all__ = [
    "generate_trace",
    "tile_program",
    "traces_for_graph",
    "CommandBudgetError",
    "load_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
]
