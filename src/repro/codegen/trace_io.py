"""Command-trace (de)serialization.

The artifact ships pre-generated GPU and DRAM-PIM traces; this module
provides the equivalent for our stack — explicit per-channel PIM
command programs written to JSON, reloadable for offline inspection or
replay through the event simulator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.pim.commands import CmdKind, CommandTrace, PimCommand


def trace_to_dict(trace: CommandTrace) -> dict:
    """Serialize a trace to a JSON-compatible dict."""
    return {
        "channels": {
            str(ch): [
                {
                    "kind": cmd.kind.value,
                    "bytes": cmd.bytes,
                    "segments": cmd.segments,
                    "width": cmd.width,
                    "ops": cmd.ops,
                    "banks": cmd.banks,
                    "deps": list(cmd.deps),
                }
                for cmd in prog
            ]
            for ch, prog in trace.programs.items()
        }
    }


def trace_from_dict(data: dict) -> CommandTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    trace = CommandTrace()
    for ch, prog in data["channels"].items():
        for cmd in prog:
            trace.add(int(ch), PimCommand(
                kind=CmdKind(cmd["kind"]),
                bytes=cmd["bytes"],
                segments=cmd["segments"],
                width=cmd["width"],
                ops=cmd["ops"],
                banks=cmd["banks"],
                deps=tuple(cmd["deps"]),
            ))
    return trace


def save_trace(trace: CommandTrace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> CommandTrace:
    """Read a trace from a JSON file written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
