"""Explicit PIM command-program generation.

The emitted program structure matches the closed-form model in
:mod:`repro.pim.cost` command-for-command:

* Each global buffer holds one lowered input vector; K beyond the
  buffer capacity is processed in passes with result-latch
  accumulation.
* A group is one buffer generation (``num_gwrite_buffers`` vectors):
  its GWRITEs (merged into GWRITE_2/GWRITE_4 when enabled, or exploded
  into one command per contiguous run when the layer is strided and the
  strided-GWRITE extension is off), the G_ACTs opening the filter rows,
  one COMP per vector, and one batched READRES on the final pass.
* Dependencies encode the optimization level: a group's GWRITE waits on
  the previous group's last COMP (buffers in use until then).  Without
  GWRITE latency hiding, the G_ACT additionally waits for the GWRITE —
  the documented serial GWRITE-G_ACT-COMP-READRES sequence.  With
  hiding, G_ACTs float free on the compute path, overlapping row
  activation with the data fetch from the GPU channels.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.graph.graph import Graph
from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import ChannelTile, tile_over_channels, tiles_by_channel
from repro.pim.commands import CmdKind, CommandTrace, PimCommand
from repro.pim.config import PimConfig, PimOptimizations
from repro.pim.cost import buffer_k_tiles


class CommandBudgetError(RuntimeError):
    """Raised when a trace would exceed the explicit-command budget."""


class _ChannelEmitter:
    """Builds one channel's program, tracking resource tails for deps."""

    def __init__(self, max_commands: int) -> None:
        self.commands: List[PimCommand] = []
        self.max_commands = max_commands

    def emit(self, cmd: PimCommand, extra_deps: List[Optional[int]]) -> int:
        if len(self.commands) >= self.max_commands:
            raise CommandBudgetError(
                f"trace exceeds {self.max_commands} explicit commands; "
                "use the closed-form cost model instead")
        deps = tuple(sorted({d for d in extra_deps if d is not None}))
        cmd = PimCommand(kind=cmd.kind, bytes=cmd.bytes, segments=cmd.segments,
                         width=cmd.width, ops=cmd.ops, banks=cmd.banks, deps=deps)
        self.commands.append(cmd)
        return len(self.commands) - 1


def _emit_tile(emitter: _ChannelEmitter, tile: ChannelTile, gemv: LoweredGemv,
               config: PimConfig, opts: PimOptimizations) -> None:
    elem = config.elem_bytes
    cap = config.buffer_capacity_elems
    k_tiles = buffer_k_tiles(tile.k, config)
    nb = opts.num_gwrite_buffers
    groups = math.ceil(tile.rows / nb)
    hiding = opts.gwrite_latency_hiding

    prev_comp: Optional[int] = None
    for kt in range(k_tiles):
        kt_len = min(cap, tile.k - kt * cap)
        last_pass = kt == k_tiles - 1
        num_rows = math.ceil(tile.n * kt_len / config.weights_per_activation)
        ops_per_vector = math.ceil(kt_len * tile.n / config.macs_per_comp)

        for g in range(groups):
            vectors = min(nb, tile.rows - g * nb)

            # --- GWRITEs: wait for the previous group's buffers --------
            gwrite_idxs: List[int] = []
            if gemv.strided and not opts.strided_gwrite:
                segments = math.ceil(kt_len / max(gemv.contiguous_k, 1))
                run_bytes = min(gemv.contiguous_k, kt_len) * elem
                for _ in range(vectors * segments):
                    gwrite_idxs.append(emitter.emit(
                        PimCommand(CmdKind.GWRITE, bytes=run_bytes, segments=1,
                                   width=1),
                        [prev_comp]))
            else:
                remaining = vectors
                while remaining > 0:
                    w = min(nb, remaining)
                    segs = 1
                    if gemv.strided and opts.strided_gwrite:
                        segs = math.ceil(kt_len / max(gemv.contiguous_k, 1)) * w
                    gwrite_idxs.append(emitter.emit(
                        PimCommand(CmdKind.GWRITE, bytes=w * kt_len * elem,
                                   segments=segs, width=w),
                        [prev_comp]))
                    remaining -= w

            # --- G_ACTs -------------------------------------------------
            gact_idx: Optional[int] = None
            for _ in range(num_rows):
                deps: List[Optional[int]] = []
                if not hiding:
                    deps.append(gwrite_idxs[-1])
                gact_idx = emitter.emit(
                    PimCommand(CmdKind.G_ACT, banks=config.banks_per_channel),
                    deps)

            # --- COMPs ---------------------------------------------------
            comp_idx: Optional[int] = None
            for _ in range(vectors):
                comp_idx = emitter.emit(
                    PimCommand(CmdKind.COMP, ops=ops_per_vector),
                    [gwrite_idxs[-1], gact_idx])
            prev_comp = comp_idx

            # --- READRES (batched per group) -----------------------------
            if last_pass:
                emitter.emit(
                    PimCommand(CmdKind.READRES, bytes=vectors * tile.n * elem),
                    [comp_idx])


def tile_program(tile: ChannelTile, gemv: LoweredGemv, config: PimConfig,
                 opts: PimOptimizations,
                 max_commands: int = 1_000_000) -> List[PimCommand]:
    """Generate one channel tile's command program."""
    emitter = _ChannelEmitter(max_commands)
    _emit_tile(emitter, tile, gemv, config, opts)
    return emitter.commands


def generate_trace(gemv: LoweredGemv, config: PimConfig, opts: PimOptimizations,
                   max_commands: int = 1_000_000) -> CommandTrace:
    """Generate the full multi-channel trace for a lowered GEMV."""
    tiles = tile_over_channels(gemv, config.num_channels, opts.scheduling)
    trace = CommandTrace()
    emitters: Dict[int, _ChannelEmitter] = {}
    for ch, channel_tiles in tiles_by_channel(tiles).items():
        emitter = emitters.setdefault(ch, _ChannelEmitter(max_commands))
        for tile in channel_tiles:
            _emit_tile(emitter, tile, gemv, config, opts)
    for ch, emitter in emitters.items():
        for cmd in emitter.commands:
            trace.add(ch, cmd)
    return trace


def traces_for_graph(graph: Graph, config: PimConfig, opts: PimOptimizations,
                     max_commands: int = 1_000_000) -> Dict[str, CommandTrace]:
    """Command traces for every PIM-resident layer of a compiled graph.

    Used by the compiler to attach explicit command programs to an
    :class:`~repro.plan.artifact.ExecutionPlan` for offline inspection
    and replay.  Layers whose explicit program would exceed the command
    budget fall back to the closed-form cost model and are skipped.
    """
    from repro.graph.ops import is_pim_candidate
    from repro.lowering.im2col import lower_node

    traces: Dict[str, CommandTrace] = {}
    for node in graph.toposort():
        if node.device != "pim":
            continue
        shapes = [graph.tensors[t].shape for t in node.inputs]
        if not is_pim_candidate(node, shapes):
            continue
        try:
            traces[node.name] = generate_trace(lower_node(node, graph),
                                               config, opts, max_commands)
        except CommandBudgetError:
            continue
    return traces
