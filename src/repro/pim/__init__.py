"""Newton-style DRAM-PIM simulator (Ramulator-extension substitute).

Models the PIM-enabled GDDR6 memory of the paper: per-bank MAC units
behind the bit-line sense amplifiers, per-channel global buffers, and
the PIM command set ``GWRITE / G_ACT / COMP / READRES`` with the
PIMFlow extensions (``GWRITE_2/4`` multi-buffer writes, strided GWRITE,
and GWRITE latency hiding).

Two timing paths exist and are cross-validated in the tests:

* :mod:`repro.pim.simulator` — an event-driven executor for explicit
  per-channel command programs with an IO resource (GWRITE/READRES) and
  a compute resource (G_ACT/COMP) per channel.
* :mod:`repro.pim.cost` — a closed-form steady-state pipeline model of
  the same program structure, used by the search engine where whole
  models are profiled at 11 split ratios each.
"""

from repro.pim.config import (
    PimConfig,
    PimOptimizations,
    PimTiming,
    HBM_VALIDATION,
    NEWTON,
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
)
from repro.pim.commands import CommandTrace, PimCommand
from repro.pim.cost import TileCost, tile_cost, gemv_cost, GemvCost
from repro.pim.device import PimDevice
from repro.pim.simulator import simulate_program, simulate_trace
from repro.pim.machine import execute_gemv_machine, execute_tile_machine, MachineError
from repro.pim.placement import PlacementError, PlacementPlan, plan_placement

__all__ = [
    "PimConfig",
    "PimOptimizations",
    "PimTiming",
    "HBM_VALIDATION",
    "NEWTON",
    "NEWTON_PLUS",
    "NEWTON_PLUS_PLUS",
    "CommandTrace",
    "PimCommand",
    "TileCost",
    "tile_cost",
    "gemv_cost",
    "GemvCost",
    "PimDevice",
    "simulate_program",
    "simulate_trace",
    "execute_gemv_machine",
    "execute_tile_machine",
    "MachineError",
    "PlacementError",
    "PlacementPlan",
    "plan_placement",
]
