"""Value-carrying PIM machine: executes the command-program structure
on real data.

Where :mod:`repro.pim.functional` validates the channel *tiling* math,
this module validates the command *program* semantics the generator and
cost model share: K-pass iteration with result-latch accumulation,
vector grouping over the global buffers, buffer-capacity limits, and
batched result readout.  The machine walks exactly the group/pass
structure of :func:`repro.codegen.generator.tile_program`, but carries
values through explicit architectural state:

* ``GlobalBuffer`` — one per ``num_gwrite_buffers``, holding one input
  vector's current K-slice (capacity-checked on every GWRITE).
* ``ResultLatches`` — per-vector accumulators that sum partial dot
  products across K passes and are drained by READRES.

The result must reproduce ``x @ w`` exactly in float32.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import ChannelTile, tile_over_channels
from repro.pim.config import PimConfig, PimOptimizations
from repro.pim.cost import buffer_k_tiles


class MachineError(RuntimeError):
    """Raised when a program violates the architectural constraints."""


class GlobalBuffer:
    """One 4 KB channel buffer holding a single input-vector slice."""

    def __init__(self, capacity_elems: int) -> None:
        self.capacity_elems = capacity_elems
        self.data: Optional[np.ndarray] = None
        self.writes = 0

    def gwrite(self, values: np.ndarray) -> None:
        if values.size > self.capacity_elems:
            raise MachineError(
                f"GWRITE of {values.size} elements exceeds the "
                f"{self.capacity_elems}-element buffer")
        self.data = values.astype(np.float32)
        self.writes += 1

    def read(self) -> np.ndarray:
        if self.data is None:
            raise MachineError("COMP before any GWRITE to this buffer")
        return self.data


class ResultLatches:
    """Per-vector accumulators drained by READRES."""

    def __init__(self) -> None:
        self._acc: dict = {}

    def accumulate(self, vector_index: int, partial: np.ndarray) -> None:
        if vector_index in self._acc:
            self._acc[vector_index] = self._acc[vector_index] + partial
        else:
            self._acc[vector_index] = partial.astype(np.float32)

    def readres(self, vector_index: int) -> np.ndarray:
        try:
            return self._acc.pop(vector_index)
        except KeyError:
            raise MachineError(
                f"READRES for vector {vector_index} with no accumulated "
                "results") from None

    def pending(self) -> int:
        return len(self._acc)


def execute_tile_machine(tile: ChannelTile, gemv: LoweredGemv,
                         x_matrix: np.ndarray, w_matrix: np.ndarray,
                         config: PimConfig,
                         opts: PimOptimizations) -> np.ndarray:
    """Execute one channel tile's program on real data.

    ``x_matrix`` is the full (rows, K) lowered input; ``w_matrix`` the
    full (K, N) filter matrix.  Returns the (rows, tile.n) output slice
    this channel produces.
    """
    cap = config.buffer_capacity_elems
    k_tiles = buffer_k_tiles(tile.k, config)
    nb = opts.num_gwrite_buffers
    groups = math.ceil(tile.rows / nb)

    buffers = [GlobalBuffer(cap) for _ in range(nb)]
    latches = ResultLatches()
    out = np.zeros((tile.rows, tile.n), dtype=np.float32)

    # Filter slice resident in this channel's cell arrays (pre-placed).
    w_slice = w_matrix[tile.k_start:tile.k_start + tile.k,
                       tile.col_start:tile.col_start + tile.n]

    for g in range(groups):
        vectors = list(range(g * nb, min((g + 1) * nb, tile.rows)))
        for kt in range(k_tiles):
            k_lo = kt * cap
            k_hi = min(tile.k, (kt + 1) * cap)
            last_pass = kt == k_tiles - 1
            # GWRITE: each buffer takes one vector's K-slice.
            for slot, v in enumerate(vectors):
                buffers[slot].gwrite(
                    x_matrix[v, tile.k_start + k_lo:tile.k_start + k_hi])
            # G_ACT + COMP: multiply against the open weight rows.
            w_pass = w_slice[k_lo:k_hi, :].astype(np.float32)
            for slot, v in enumerate(vectors):
                latches.accumulate(v, buffers[slot].read() @ w_pass)
            # READRES (batched per group) on the final pass.
            if last_pass:
                for v in vectors:
                    out[v] = latches.readres(v)
    if latches.pending():
        raise MachineError(f"{latches.pending()} results never read out")
    return out


def execute_gemv_machine(x_matrix: np.ndarray, w_matrix: np.ndarray,
                         gemv: LoweredGemv, config: PimConfig,
                         opts: PimOptimizations) -> np.ndarray:
    """Execute a whole lowered GEMV through the per-channel machines.

    Column tiles write disjoint output slices; K-split partial tiles are
    combined by the inter-channel partial-sum add, exactly as the cost
    model charges it.
    """
    rows, k = x_matrix.shape
    _, n = w_matrix.shape
    if (rows, k) != (gemv.rows, gemv.k) or n != gemv.n:
        raise ValueError("matrices do not match the GEMV descriptor")
    tiles = tile_over_channels(gemv, config.num_channels, opts.scheduling)
    out = np.zeros((rows, n), dtype=np.float32)
    for tile in tiles:
        result = execute_tile_machine(tile, gemv, x_matrix, w_matrix,
                                      config, opts)
        out[:, tile.col_start:tile.col_start + tile.n] += result
    return out
