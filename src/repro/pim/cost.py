"""Closed-form steady-state cost model for PIM kernels.

The event-driven simulator in :mod:`repro.pim.simulator` executes
explicit command programs; this module computes the same pipeline
analytically so that the execution-mode search (which profiles every
PIM-candidate layer at eleven split ratios) stays fast.  The two are
cross-validated against each other in the test suite.

Program structure per channel tile (rows R, reduction K, outputs N),
following the Newton command semantics (paper Sections 2.1, 4.1):

* Each global buffer holds **one** lowered input vector; K longer than
  the buffer is processed in ``k_tiles`` passes with partial sums
  accumulating in the result latches.
* A *group* is one buffer generation: ``num_gwrite_buffers`` vectors.
  The group issues its GWRITE (one merged GWRITE_2/4 when the extension
  is on, else one command per buffer — or per contiguous run for
  strided layers without the strided-GWRITE extension), the G_ACTs
  opening the filter rows, one COMP burst per vector, and one batched
  READRES on the final pass.  Multiple buffers amortize the G_ACTs and
  command-issue overheads across the group — the paper's
  multiple-global-buffer benefit.
* Buffers are busy until the group's COMPs finish, so the next group's
  GWRITE serializes behind them.  Without latency hiding, the G_ACT
  additionally waits for the GWRITE: the group is fully serial.  With
  GWRITE latency hiding the G_ACT issues asynchronously — PIM banks
  activate rows while data streams from the GPU channels — so each
  steady-state period pays ``comp + max(gwrite + readres, act)``
  instead of ``comp + gwrite + readres + act``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import ChannelTile, tile_over_channels
from repro.pim.config import PimConfig, PimOptimizations
from repro.pim.timing import cycles_to_us, g_act_cycles, readres_cycles


@dataclass(frozen=True)
class TileCost:
    """Cycles and event counts for one channel's share of a kernel."""

    cycles: int
    activations: int
    comp_ops: int
    macs: int
    gwrite_bytes: int
    readres_bytes: int
    gwrite_commands: int
    readres_commands: int

    @property
    def io_bytes(self) -> int:
        return self.gwrite_bytes + self.readres_bytes


@dataclass(frozen=True)
class GemvCost:
    """Cost of a full lowered GEMV distributed over the PIM channels."""

    cycles: int
    time_us: float
    tiles: List[TileCost]
    channels_used: int

    @property
    def activations(self) -> int:
        return sum(t.activations for t in self.tiles)

    @property
    def comp_ops(self) -> int:
        return sum(t.comp_ops for t in self.tiles)

    @property
    def macs(self) -> int:
        return sum(t.macs for t in self.tiles)

    @property
    def gwrite_bytes(self) -> int:
        return sum(t.gwrite_bytes for t in self.tiles)

    @property
    def readres_bytes(self) -> int:
        return sum(t.readres_bytes for t in self.tiles)

    @property
    def io_bytes(self) -> int:
        return self.gwrite_bytes + self.readres_bytes


def buffer_k_tiles(k: int, config: PimConfig) -> int:
    """Passes needed when the reduction exceeds one buffer's capacity."""
    return math.ceil(k / config.buffer_capacity_elems)


def _gwrite_group(vectors: int, kt_len: int, gemv: LoweredGemv,
                  config: PimConfig, opts: PimOptimizations) -> Tuple[int, int, int]:
    """(cycles, commands, bytes) to load one vector group into the buffers."""
    t = config.timing
    elem = config.elem_bytes
    total_bytes = vectors * kt_len * elem
    if gemv.strided and not opts.strided_gwrite:
        # One GWRITE per contiguous run per vector, each paying t_cl.
        segments = math.ceil(kt_len / max(gemv.contiguous_k, 1))
        commands = vectors * segments
    else:
        # One command per `width` buffers (GWRITE / GWRITE_2 / GWRITE_4).
        commands = math.ceil(vectors / opts.num_gwrite_buffers)
    cycles = (commands * t.t_cl
              + max(1, math.ceil(total_bytes / t.io_bytes_per_cycle)))
    return cycles, commands, total_bytes


def tile_cost(tile: ChannelTile, gemv: LoweredGemv, config: PimConfig,
              opts: PimOptimizations) -> TileCost:
    """Closed-form cycle count for one channel tile."""
    elem = config.elem_bytes
    t = config.timing
    cap = config.buffer_capacity_elems
    k_tiles = buffer_k_tiles(tile.k, config)
    nb = opts.num_gwrite_buffers
    groups = math.ceil(tile.rows / nb)
    hiding = opts.gwrite_latency_hiding

    total_cycles = 0
    activations = 0
    comp_ops_total = 0
    gwrite_bytes = 0
    readres_bytes = 0
    gwrite_commands = 0
    readres_commands = 0

    for kt in range(k_tiles):
        kt_len = min(cap, tile.k - kt * cap)
        last_pass = kt == k_tiles - 1
        num_rows = math.ceil(tile.n * kt_len / config.weights_per_activation)
        ops_per_vector = math.ceil(kt_len * tile.n / config.macs_per_comp)
        act = num_rows * g_act_cycles(config)

        def group_stats(vectors: int):
            """(gw, comp, rr) cycles and (gw_cmds, gw_bytes, rr_cmds,
            rr_bytes) event counts for one vector group."""
            gw, gw_cmds, gw_bytes = _gwrite_group(vectors, kt_len, gemv,
                                                  config, opts)
            comp = ops_per_vector * vectors * t.t_ccd
            rr = rr_bytes = rr_cmds = 0
            if last_pass:
                rr_bytes = vectors * tile.n * elem
                rr = readres_cycles(rr_bytes, config)
                rr_cmds = 1
            return gw, comp, rr, gw_cmds, gw_bytes, rr_cmds, rr_bytes

        tail_vectors = tile.rows - (groups - 1) * nb
        full = group_stats(nb)
        tail = full if tail_vectors == nb else group_stats(tail_vectors)
        gw_f, comp_f, rr_f = full[0], full[1], full[2]
        gw_t, comp_t, rr_t = tail[0], tail[1], tail[2]

        if hiding:
            # COMP_g ends; the io path then drains READRES_g and fills
            # the next group's GWRITE while the compute path
            # asynchronously re-activates rows: each steady-state period
            # costs comp + max(rr + gw, act).
            if groups == 1:
                pass_cycles = max(gw_t, act) + comp_t + rr_t
            else:
                p_full = comp_f + max(rr_f + gw_f, act)
                p_tail = comp_t + max(rr_f + gw_t, act)
                pass_cycles = (max(gw_f, act) + comp_f
                               + (groups - 2) * p_full + p_tail + rr_t)
        else:
            pass_cycles = ((groups - 1) * (gw_f + act + comp_f + rr_f)
                           + gw_t + act + comp_t + rr_t)

        total_cycles += pass_cycles
        activations += num_rows * groups
        comp_ops_total += ops_per_vector * tile.rows
        gwrite_commands += (groups - 1) * full[3] + tail[3]
        gwrite_bytes += (groups - 1) * full[4] + tail[4]
        readres_commands += (groups - 1) * full[5] + tail[5]
        readres_bytes += (groups - 1) * full[6] + tail[6]

    return TileCost(
        cycles=total_cycles,
        activations=activations,
        comp_ops=comp_ops_total,
        macs=tile.rows * tile.k * tile.n,
        gwrite_bytes=gwrite_bytes,
        readres_bytes=readres_bytes,
        gwrite_commands=gwrite_commands,
        readres_commands=readres_commands,
    )


def partial_combine_cycles(gemv: LoweredGemv, config: PimConfig,
                           opts: PimOptimizations) -> int:
    """Extra cycles to sum K-split partial results across channels.

    Zero unless the ``comp`` scheduling granularity split the reduction
    dimension; then the duplicated partial outputs are re-read and
    summed as they stream back.
    """
    tiles = tile_over_channels(gemv, config.num_channels, opts.scheduling)
    partial_outputs = sum(t.n for t in tiles if t.partial)
    if not partial_outputs:
        return 0
    return readres_cycles(partial_outputs * config.elem_bytes, config)


def gemv_cost(gemv: LoweredGemv, config: PimConfig,
              opts: PimOptimizations) -> GemvCost:
    """Cost of a lowered GEMV over all PIM channels.

    Kernel latency is the slowest channel's cycles (channels run
    independently) plus the fixed kernel launch overhead; partial-sum
    tiles add a combine read of the duplicated partial outputs.
    """
    tiles = tile_over_channels(gemv, config.num_channels, opts.scheduling)
    costs = [tile_cost(t, gemv, config, opts) for t in tiles]
    per_channel: dict = {}
    for t, c in zip(tiles, costs):
        per_channel[t.channel] = per_channel.get(t.channel, 0) + c.cycles
    worst = max(per_channel.values())
    worst += partial_combine_cycles(gemv, config, opts)
    # Periodic refresh steals a fixed fraction of channel cycles.
    worst = int(worst * (1.0 + config.timing.refresh_overhead))
    time_us = cycles_to_us(worst, config) + config.launch_overhead_us
    return GemvCost(cycles=worst, time_us=time_us, tiles=costs,
                    channels_used=len(per_channel))
