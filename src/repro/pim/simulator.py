"""Event-driven executor for explicit PIM command programs.

Each channel owns two resources — the I/O path (GWRITE/READRES) and the
bank compute path (G_ACT/COMP).  Commands issue in program order per
resource; a command additionally waits for its explicit dependencies
(``PimCommand.deps``).  The code generator encodes the optimization
level in those dependencies: without GWRITE latency hiding every
command depends on its predecessor (fully serial); with hiding, G_ACTs
depend only on the compute path, so row activation overlaps the data
fetch from the GPU channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.pim.commands import CmdKind, CommandTrace, PimCommand
from repro.pim.config import PimConfig
from repro.pim.timing import command_cycles, cycles_to_us


@dataclass(frozen=True)
class ProgramResult:
    """Timing of one channel's program."""

    cycles: int
    finish_times: List[int]


@dataclass(frozen=True)
class TraceResult:
    """Timing and event counts of a whole command trace."""

    cycles: int
    time_us: float
    per_channel_cycles: Dict[int, int]
    command_counts: Dict[str, int]

    @property
    def activations(self) -> int:
        return self.command_counts.get(CmdKind.G_ACT.value, 0)


def simulate_program(program: List[PimCommand], config: PimConfig) -> ProgramResult:
    """Execute one channel's command list and return its finish time."""
    resource_free = {"io": 0, "compute": 0}
    finish: List[int] = []
    for cmd in program:
        start = resource_free[cmd.resource]
        for dep in cmd.deps:
            if dep < 0 or dep >= len(finish):
                raise ValueError(f"command depends on not-yet-issued index {dep}")
            start = max(start, finish[dep])
        end = start + command_cycles(cmd, config)
        resource_free[cmd.resource] = end
        finish.append(end)
    return ProgramResult(cycles=max(finish) if finish else 0, finish_times=finish)


def simulate_trace(trace: CommandTrace, config: PimConfig) -> TraceResult:
    """Execute all channel programs; kernel latency is the slowest channel.

    Refresh is applied as a throughput tax on the finished timeline
    (the closed-form model applies the identical factor, keeping the
    two paths comparable command-for-command).
    """
    per_channel = {
        ch: int(simulate_program(prog, config).cycles
                * (1.0 + config.timing.refresh_overhead))
        for ch, prog in trace.programs.items()
    }
    worst = max(per_channel.values()) if per_channel else 0
    return TraceResult(
        cycles=worst,
        time_us=cycles_to_us(worst, config) + config.launch_overhead_us,
        per_channel_cycles=per_channel,
        command_counts=trace.counts(),
    )
