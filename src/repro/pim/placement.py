"""Filter-weight placement in the PIM memory cell arrays.

The paper places filter matrices in the cell arrays *in advance*
(Section 2.2) and never revisits the question of whether they fit.
This module makes placement explicit: each PIM-offloaded layer's filter
slice is assigned rows in each channel's banks, capacity is accounted,
and the planner reports when a model's PIM-resident weights exceed the
PIM-enabled channels' capacity (at which point a runtime would have to
re-stage weights, paying GWRITE-class traffic the paper's evaluation
never needs — the five CNN models fit comfortably).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.graph import Graph
from repro.graph.ops import is_pim_candidate
from repro.lowering.im2col import lower_node
from repro.lowering.tiling import tile_over_channels
from repro.pim.config import PimConfig, PimOptimizations


class PlacementError(RuntimeError):
    """Raised when weights exceed the PIM channels' capacity."""


@dataclass(frozen=True)
class LayerPlacement:
    """Rows occupied by one layer's filter slice, per channel."""

    layer: str
    rows_per_channel: Dict[int, int]

    @property
    def total_rows(self) -> int:
        return sum(self.rows_per_channel.values())


@dataclass
class PlacementPlan:
    """Bank-row allocation of every PIM-resident layer."""

    config: PimConfig
    layers: List[LayerPlacement] = field(default_factory=list)
    used_rows: Dict[int, int] = field(default_factory=dict)

    @property
    def rows_per_channel_capacity(self) -> int:
        """Rows available per channel across its banks.

        A GDDR6 bank holds on the order of 32K rows (8 Gb die / 16
        banks / 2 KB rows); we reserve half the capacity for activations
        and regular GPU data living in the same channels.
        """
        rows_per_bank = 32 * 1024
        return self.config.banks_per_channel * rows_per_bank // 2

    def utilization(self) -> float:
        """Fraction of the reserved weight capacity in use (max over channels)."""
        if not self.used_rows:
            return 0.0
        return max(self.used_rows.values()) / self.rows_per_channel_capacity

    def place(self, layer: str, rows_per_channel: Dict[int, int]) -> LayerPlacement:
        """Allocate rows for one layer, channel by channel."""
        capacity = self.rows_per_channel_capacity
        for ch, rows in rows_per_channel.items():
            if self.used_rows.get(ch, 0) + rows > capacity:
                raise PlacementError(
                    f"layer {layer!r} needs {rows} rows on channel {ch}, "
                    f"only {capacity - self.used_rows.get(ch, 0)} free")
        for ch, rows in rows_per_channel.items():
            self.used_rows[ch] = self.used_rows.get(ch, 0) + rows
        placement = LayerPlacement(layer, dict(rows_per_channel))
        self.layers.append(placement)
        return placement


def layer_rows(layer_name: str, graph: Graph, config: PimConfig,
               opts: PimOptimizations) -> Dict[int, int]:
    """Rows needed per channel for one layer's filter slice.

    Each channel stores its tile's (K x N_tile) filter elements packed
    into bank rows; a row-set (one row in every bank of the channel)
    holds ``weights_per_activation`` elements.
    """
    node = graph.node(layer_name)
    gemv = lower_node(node, graph)
    tiles = tile_over_channels(gemv, config.num_channels, opts.scheduling)
    rows: Dict[int, int] = {}
    for tile in tiles:
        elems = tile.k * tile.n
        row_sets = math.ceil(elems / config.weights_per_activation)
        # A row-set occupies one row in each bank.
        rows[tile.channel] = rows.get(tile.channel, 0) + row_sets
    return rows


def plan_placement(graph: Graph, config: Optional[PimConfig] = None,
                   opts: Optional[PimOptimizations] = None,
                   layers: Optional[List[str]] = None) -> PlacementPlan:
    """Place every (or the given) PIM-candidate layer's weights.

    Raises :class:`PlacementError` when the model's PIM-resident weights
    exceed the reserved capacity.
    """
    config = config or PimConfig()
    opts = opts or PimOptimizations()
    plan = PlacementPlan(config=config)
    if layers is None:
        layers = []
        for node in graph.toposort():
            shapes = [graph.tensors[t].shape for t in node.inputs]
            if is_pim_candidate(node, shapes) and node.inputs[1] in graph.initializers:
                layers.append(node.name)
    for layer in layers:
        plan.place(layer, layer_rows(layer, graph, config, opts))
    return plan
