"""Per-command latency rules for the DRAM-PIM."""

from __future__ import annotations

import math

from repro.pim.commands import CmdKind, PimCommand
from repro.pim.config import PimConfig


def gwrite_cycles(num_bytes: int, segments: int, width: int, config: PimConfig) -> int:
    """Latency of one (possibly strided, possibly multi-buffer) GWRITE.

    The transfer streams ``num_bytes`` over the channel I/O; the fixed
    ``t_cl`` issue cost is paid once per command — this is exactly what
    the strided GWRITE and GWRITE_2/4 extensions save relative to
    issuing one command per address run or per buffer.
    """
    t = config.timing
    transfer = math.ceil(num_bytes / t.io_bytes_per_cycle)
    return t.t_cl + max(transfer, 1)


def g_act_cycles(config: PimConfig) -> int:
    """Latency of one G_ACT (multi-bank row activation)."""
    return config.timing.t_rcdrd


def comp_cycles(ops: int, config: PimConfig) -> int:
    """Latency of a COMP burst issuing ``ops`` column operations."""
    return max(ops, 1) * config.timing.t_ccd


def readres_cycles(num_bytes: int, config: PimConfig) -> int:
    """Latency of reading ``num_bytes`` of results from the latches."""
    t = config.timing
    transfer = math.ceil(num_bytes / t.io_bytes_per_cycle)
    return t.t_cl + max(transfer, 1)


def command_cycles(cmd: PimCommand, config: PimConfig) -> int:
    """Latency of an arbitrary command."""
    if cmd.kind is CmdKind.GWRITE:
        return gwrite_cycles(cmd.bytes, cmd.segments, cmd.width, config)
    if cmd.kind is CmdKind.G_ACT:
        return g_act_cycles(config)
    if cmd.kind is CmdKind.COMP:
        return comp_cycles(cmd.ops, config)
    if cmd.kind is CmdKind.READRES:
        return readres_cycles(cmd.bytes, config)
    raise ValueError(f"unknown command kind {cmd.kind}")


def cycles_to_us(cycles: int, config: PimConfig) -> float:
    """Convert command-clock cycles to microseconds."""
    return cycles / (config.clock_ghz * 1e3)
