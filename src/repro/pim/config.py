"""DRAM-PIM hardware configuration (paper Table 1) and optimization flags."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PimTiming:
    """GDDR6 timing parameters in command-clock cycles (paper Table 1).

    ``t_refi``/``t_rfc`` model periodic all-bank refresh: every
    ``t_refi`` cycles the channel stalls for ``t_rfc`` cycles.  PIM
    kernels cannot suppress refresh (data retention), so sufficiently
    long kernels pay the ~``t_rfc / t_refi`` throughput tax that
    Ramulator would charge.
    """

    t_ccd: int = 2      # column-to-column delay; COMP issue interval
    t_cl: int = 11      # CAS latency; fixed cost of GWRITE/READRES issue
    t_rcd: int = 11     # row-to-column delay
    t_rp: int = 11      # row precharge
    t_ras: int = 25     # row active time
    t_rcdrd: int = 25   # activate-to-read; latency of one G_ACT
    io_bytes_per_cycle: int = 32  # channel I/O width per command clock
    t_refi: int = 6240  # average refresh interval (3.9 us @ 1.6 GHz class)
    t_rfc: int = 280    # refresh cycle time (all-bank)

    @property
    def refresh_overhead(self) -> float:
        """Fraction of cycles lost to refresh (0 disables refresh)."""
        if self.t_refi <= 0:
            return 0.0
        return self.t_rfc / self.t_refi


@dataclass(frozen=True)
class PimConfig:
    """Structural parameters of the PIM-enabled memory (paper Table 1).

    Defaults: 16 PIM-enabled channels out of the 32-channel GPU memory,
    16 banks per channel, 16 multipliers per bank behind a 256-bit
    column I/O, one 4 KB global buffer (extended to four by PIMFlow),
    and 2 KB DRAM rows.
    """

    num_channels: int = 16
    banks_per_channel: int = 16
    multipliers_per_bank: int = 16
    column_io_bits: int = 256
    global_buffer_bytes: int = 4096
    row_bytes: int = 2048
    elem_bytes: int = 2           # fp16
    clock_ghz: float = 1.0
    launch_overhead_us: float = 1.0
    timing: PimTiming = field(default_factory=PimTiming)

    @property
    def macs_per_comp(self) -> int:
        """MACs retired by one COMP command across all banks of a channel."""
        return self.banks_per_channel * self.multipliers_per_bank

    @property
    def buffer_capacity_elems(self) -> int:
        """fp16 elements held by one global buffer."""
        return self.global_buffer_bytes // self.elem_bytes

    @property
    def row_elems(self) -> int:
        """fp16 elements per DRAM row (per bank)."""
        return self.row_bytes // self.elem_bytes

    @property
    def weights_per_activation(self) -> int:
        """Filter elements made readable by one G_ACT (one row x all banks)."""
        return self.row_elems * self.banks_per_channel

    def with_channels(self, num_channels: int) -> "PimConfig":
        """Copy of this config with a different PIM channel count."""
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        return replace(self, num_channels=num_channels)


#: HBM2-based configuration used only for the Fig. 8 simulator
#: validation, matching Newton's setup: all 24 channels PIM-enabled,
#: wider stacks but a slower interface clock per channel.
HBM_VALIDATION = PimConfig(
    num_channels=24,
    clock_ghz=1.0,
    timing=PimTiming(io_bytes_per_cycle=32),
)


@dataclass(frozen=True)
class PimOptimizations:
    """PIM command-level optimization flags (paper Sections 4.1, 4.3).

    Attributes
    ----------
    num_gwrite_buffers:
        Global buffers per channel usable by one kernel: 1 (baseline
        Newton), 2, or 4 (PIMFlow).  More buffers amortize each G_ACT
        over that many input vectors, and GWRITE_2/GWRITE_4 merge the
        buffer writes into one command.
    gwrite_latency_hiding:
        Issue the G_ACT for a vector group asynchronously with its
        GWRITE: PIM channels activate rows while data streams from the
        GPU channels.
    strided_gwrite:
        Gather non-contiguous input-tensor elements (non-pointwise
        convolutions) into the global buffer with a single command
        instead of one GWRITE per contiguous run.
    scheduling:
        Channel-distribution granularity of the command scheduler
        (paper Fig. 6): ``"g_act"``, ``"readres"``, or ``"comp"``.
    """

    num_gwrite_buffers: int = 1
    gwrite_latency_hiding: bool = False
    strided_gwrite: bool = False
    scheduling: str = "comp"

    def __post_init__(self) -> None:
        if self.num_gwrite_buffers not in (1, 2, 4):
            raise ValueError("num_gwrite_buffers must be 1, 2 or 4")
        if self.scheduling not in ("g_act", "readres", "comp"):
            raise ValueError(f"unknown scheduling granularity {self.scheduling!r}")


#: The unmodified Newton baseline: one buffer, serial commands, coarse
#: scheduling (whole column blocks per channel).
NEWTON = PimOptimizations(num_gwrite_buffers=1, gwrite_latency_hiding=False,
                          strided_gwrite=False, scheduling="g_act")

#: Newton+ of the evaluation: Newton with CONV/FC offload support and
#: command scheduling for multiple channels, no command optimizations.
NEWTON_PLUS = PimOptimizations(num_gwrite_buffers=1, gwrite_latency_hiding=False,
                               strided_gwrite=False, scheduling="comp")

#: Newton++: Newton+ plus the PIM command optimizations.
NEWTON_PLUS_PLUS = PimOptimizations(num_gwrite_buffers=4, gwrite_latency_hiding=True,
                                    strided_gwrite=True, scheduling="comp")
