"""High-level PIM device: node-level cost and energy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.constants import PimEnergyModel
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.lowering.im2col import LoweredGemv, lower_node
from repro.pim.config import NEWTON_PLUS_PLUS, PimConfig, PimOptimizations
from repro.pim.cost import GemvCost, gemv_cost


@dataclass(frozen=True)
class PimRunCost:
    """Latency, energy and event counts of one PIM kernel."""

    time_us: float
    cycles: int
    energy_mj: float
    activations: int
    macs: int
    gwrite_bytes: int
    io_bytes: int


class PimDevice:
    """Executes PIM-candidate nodes on the DRAM-PIM model.

    The device owns a hardware configuration and an optimization level
    (Newton / Newton+ / Newton++ flags); the evaluation instantiates one
    device per offloading mechanism.
    """

    #: Per-device memo entries before the cache resets (safety valve).
    COST_CACHE_LIMIT = 65536

    def __init__(self, config: Optional[PimConfig] = None,
                 opts: PimOptimizations = NEWTON_PLUS_PLUS,
                 energy_model: Optional[PimEnergyModel] = None) -> None:
        self.config = config or PimConfig()
        self.opts = opts
        self.energy_model = energy_model or PimEnergyModel()
        #: LoweredGemv -> PimRunCost memo.  The GEMV descriptor is a
        #: frozen dataclass capturing everything the command-timing
        #: model reads, so two layers lowering to the same (rows, k, n,
        #: contiguity) price identically — one computation per
        #: structure instead of one per split ratio per refine step.
        self._cost_cache: Dict[LoweredGemv, PimRunCost] = {}
        self.cost_cache_hits = 0

    def run_gemv(self, gemv: LoweredGemv) -> PimRunCost:
        """Cost of one lowered GEMV batch (memoized on the descriptor)."""
        cached = self._cost_cache.get(gemv)
        if cached is not None:
            self.cost_cache_hits += 1
            return cached
        if len(self._cost_cache) >= self.COST_CACHE_LIMIT:
            self._cost_cache.clear()
        result = self._run_gemv_uncached(gemv)
        self._cost_cache[gemv] = result
        return result

    def _run_gemv_uncached(self, gemv: LoweredGemv) -> PimRunCost:
        cost: GemvCost = gemv_cost(gemv, self.config, self.opts)
        energy = self.energy_model.trace_energy_mj(
            activations=cost.activations,
            macs=cost.macs,
            buffer_bytes=cost.gwrite_bytes,
            io_bytes=cost.io_bytes,
            time_us=cost.time_us,
            channels=self.config.num_channels,
        )
        return PimRunCost(
            time_us=cost.time_us,
            cycles=cost.cycles,
            energy_mj=energy,
            activations=cost.activations,
            macs=cost.macs,
            gwrite_bytes=cost.gwrite_bytes,
            io_bytes=cost.io_bytes,
        )

    def run_node(self, node: Node, graph: Graph) -> PimRunCost:
        """Cost of a PIM-candidate graph node (Conv/Gemm/MatMul)."""
        return self.run_gemv(lower_node(node, graph))

    def with_channels(self, num_channels: int) -> "PimDevice":
        """Device copy with a different PIM channel count."""
        return PimDevice(self.config.with_channels(num_channels), self.opts,
                         self.energy_model)

    def with_opts(self, opts: PimOptimizations) -> "PimDevice":
        """Device copy with different optimization flags."""
        return PimDevice(self.config, opts, self.energy_model)
