"""PIM command representation and per-channel programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple


class CmdKind(str, Enum):
    """PIM command opcodes (paper Section 4.1).

    ``GWRITE`` covers the extended variants: the ``width`` field of the
    command distinguishes GWRITE (1), GWRITE_2 (2) and GWRITE_4 (4),
    and ``segments > 1`` marks a strided GWRITE gathering multiple
    address runs.
    """

    GWRITE = "GWRITE"
    G_ACT = "G_ACT"
    COMP = "COMP"
    READRES = "READRES"


#: Which per-channel resource each command occupies: the channel I/O
#: path or the bank compute path.  This split is what makes GWRITE
#: latency hiding possible in the dual GPU/PIM channel configuration.
RESOURCE = {
    CmdKind.GWRITE: "io",
    CmdKind.READRES: "io",
    CmdKind.G_ACT: "compute",
    CmdKind.COMP: "compute",
}


@dataclass(frozen=True)
class PimCommand:
    """One command in a channel program.

    Attributes
    ----------
    kind:
        Opcode.
    bytes:
        I/O transfer size (GWRITE/READRES).
    segments:
        Distinct contiguous address runs gathered by this GWRITE; above
        one this is a strided GWRITE.
    width:
        Global buffers written by one GWRITE (1, 2 or 4).
    ops:
        Column operations issued by a COMP (each retires
        ``banks * multipliers`` MACs in ``t_ccd`` cycles).
    banks:
        Banks activated by a G_ACT.
    deps:
        Indices of same-channel commands that must finish before this
        one starts (in addition to its resource being free).
    """

    kind: CmdKind
    bytes: int = 0
    segments: int = 1
    width: int = 1
    ops: int = 0
    banks: int = 16
    deps: Tuple[int, ...] = ()

    @property
    def resource(self) -> str:
        return RESOURCE[self.kind]


@dataclass
class CommandTrace:
    """Per-channel command programs for one PIM kernel."""

    programs: Dict[int, List[PimCommand]] = field(default_factory=dict)

    def add(self, channel: int, command: PimCommand) -> int:
        """Append a command to a channel's program; returns its index."""
        prog = self.programs.setdefault(channel, [])
        prog.append(command)
        return len(prog) - 1

    @property
    def num_commands(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def counts(self) -> Dict[str, int]:
        """Histogram of command kinds across all channels."""
        out: Dict[str, int] = {}
        for prog in self.programs.values():
            for cmd in prog:
                out[cmd.kind.value] = out.get(cmd.kind.value, 0) + 1
        return out
