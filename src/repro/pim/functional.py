"""Functional (value-level) model of PIM execution.

The timing simulators answer *how long*; this module answers *what* —
it executes the channel tiling on real data and must reproduce the
numpy reference in float32.  It validates the tiling math (column
partitioning, K-split partial-sum accumulation) that the command
generator relies on, standing in for running command traces on a real
device.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import ChannelTile, tile_over_channels


def execute_tiles(x_matrix: np.ndarray, w_matrix: np.ndarray,
                  tiles: List[ChannelTile]) -> np.ndarray:
    """Execute a GEMV batch tile-by-tile, reproducing ``x @ w``.

    ``x_matrix`` is the (rows, K) lowered input; ``w_matrix`` the (K, N)
    filter matrix.  Column tiles write disjoint output slices; K-split
    (partial) tiles accumulate into the same columns, mirroring the
    result-latch accumulation of the hardware.
    """
    rows, k = x_matrix.shape
    k2, n = w_matrix.shape
    if k != k2:
        raise ValueError(f"shape mismatch: x {x_matrix.shape} vs w {w_matrix.shape}")
    out = np.zeros((rows, n), dtype=np.float32)
    covered = np.zeros((k, n), dtype=bool)
    for tile in tiles:
        if tile.rows != rows:
            raise ValueError("tile row count must match the input matrix")
        ks, ke = tile.k_start, tile.k_start + tile.k
        cs, ce = tile.col_start, tile.col_start + tile.n
        if ke > k or ce > n:
            raise ValueError(f"tile {tile} exceeds matrix bounds ({k}, {n})")
        if covered[ks:ke, cs:ce].any():
            raise ValueError(f"tile {tile} overlaps previously covered work")
        covered[ks:ke, cs:ce] = True
        xs = x_matrix[:, ks:ke].astype(np.float32)
        ws = w_matrix[ks:ke, cs:ce].astype(np.float32)
        out[:, cs:ce] += xs @ ws
    if not covered.all():
        raise ValueError("tiles do not cover the full (K, N) space")
    return out


def execute_gemv(x_matrix: np.ndarray, w_matrix: np.ndarray, gemv: LoweredGemv,
                 num_channels: int, granularity: str = "comp") -> np.ndarray:
    """Tile and execute, asserting tiling consistency with the descriptor."""
    if gemv.rows != x_matrix.shape[0] or gemv.k != x_matrix.shape[1]:
        raise ValueError("gemv descriptor does not match the input matrix")
    tiles = tile_over_channels(gemv, num_channels, granularity)
    return execute_tiles(x_matrix, w_matrix, tiles)
