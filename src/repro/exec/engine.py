"""Deterministic, fault-tolerant fan-out of profiling jobs.

:class:`JobEngine` runs a batch of independent :class:`JobSpec` jobs
through a worker function and returns one :class:`JobResult` per spec
**in spec order**, regardless of completion order — parallelism never
changes what the caller observes, only how fast it arrives.

Execution modes:

* ``jobs <= 1`` (default) — every job runs inline in the parent
  process, preserving the historical serial behaviour (no pools, no
  pickling, per-job timeouts not enforceable without process
  isolation).
* ``jobs > 1`` — jobs fan out over a ``ProcessPoolExecutor`` with
  ``jobs`` workers (``jobs=0`` resolves to the machine's CPU count).

Failure semantics, parallel mode:

* An exception raised by the worker function counts one failed attempt;
  the job is retried with exponential backoff up to ``retries`` times,
  then recorded as a failed :class:`JobResult` — the batch always
  completes.
* A worker process that **dies** (segfault, ``SIGKILL``, OOM) breaks
  the pool: every in-flight future resolves with
  ``BrokenProcessPool``.  The engine rebuilds the pool and resubmits;
  futures the executor reported *done* at that moment are charged an
  attempt (the culprit cannot be distinguished from collateral), the
  rest are requeued without penalty.  A job that persistently kills its
  worker therefore exhausts its attempts and is recorded failed while
  everything else completes.
* A job exceeding ``timeout_s`` is charged a failed attempt.  A hung
  worker cannot be reclaimed individually, so the engine terminates the
  pool's processes, requeues the unexpired in-flight jobs without
  penalty, and continues on a fresh pool — a runaway simulator costs
  wall-clock, never a hang.

The engine is profiling-agnostic: the worker function is any picklable
module-level callable ``fn(spec) -> JobResult`` (the profiler passes
:func:`repro.exec.worker.execute_job`), which is also what the fault
-injection tests hook.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.exec.job import STATUS_FAILED, JobResult, JobSpec
from repro.exec.progress import ProgressReporter, ProgressSnapshot


def resolve_worker_count(jobs: int) -> int:
    """Normalize a worker-count knob: 0 means all CPUs, n>=1 means n."""
    if jobs < 0:
        raise ValueError(f"worker count must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: Queue entry: (spec index, spec, failed attempts so far, not-before time).
_Pending = Tuple[int, JobSpec, int, float]
#: In-flight bookkeeping: (spec index, spec, failed attempts, deadline).
_InFlight = Tuple[int, JobSpec, int, Optional[float]]


class JobEngine:
    """Runs job batches with bounded retry, timeouts and crash isolation."""

    def __init__(self, worker_fn: Callable[[JobSpec], JobResult],
                 jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 backoff_s: float = 0.05,
                 progress: Optional[ProgressReporter] = None,
                 poll_interval_s: float = 0.05,
                 mp_context=None) -> None:
        self.worker_fn = worker_fn
        self.jobs = resolve_worker_count(jobs)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.progress = progress or ProgressReporter()
        self.poll_interval_s = poll_interval_s
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec], cached: int = 0) -> List[JobResult]:
        """Execute every spec; results are returned in spec order.

        ``cached`` seeds the progress snapshots with the number of
        requests the caller already served from the profile cache, so
        telemetry reflects the whole profiling phase.
        """
        specs = list(specs)
        self._total = len(specs)
        self._completed = 0
        self._failed = 0
        self._cached = cached
        self._t0 = time.monotonic()
        self.progress.on_start(self._snapshot())
        if self.jobs <= 1 or len(specs) <= 1:
            results = [self._run_inline(spec) for spec in specs]
        else:
            results = self._run_parallel(specs)
        self.progress.on_finish(self._snapshot())
        return results

    # ------------------------------------------------------------------
    # Progress bookkeeping
    # ------------------------------------------------------------------
    def _snapshot(self) -> ProgressSnapshot:
        return ProgressSnapshot(
            total=self._total, completed=self._completed,
            failed=self._failed, cached=self._cached,
            elapsed_s=time.monotonic() - self._t0)

    def _terminal(self, result: JobResult) -> JobResult:
        if result.ok:
            self._completed += 1
        else:
            self._failed += 1
        self.progress.on_job_done(result, self._snapshot())
        return result

    # ------------------------------------------------------------------
    # Inline (serial) execution
    # ------------------------------------------------------------------
    def _run_inline(self, spec: JobSpec) -> JobResult:
        attempts = 0
        t0 = time.monotonic()
        while True:
            attempts += 1
            try:
                result = self.worker_fn(spec)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                if attempts <= self.retries:
                    self.progress.on_retry(spec, attempts, repr(exc))
                    time.sleep(self.backoff_s * (2 ** (attempts - 1)))
                    continue
                return self._terminal(JobResult(
                    job_id=spec.job_id, fingerprint=spec.fingerprint,
                    status=STATUS_FAILED, error=repr(exc), attempts=attempts,
                    elapsed_s=time.monotonic() - t0))
            return self._terminal(replace(result, attempts=attempts))

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def _run_parallel(self, specs: List[JobSpec]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(specs)
        pending: Deque[_Pending] = deque(
            (i, spec, 0, 0.0) for i, spec in enumerate(specs))
        inflight: Dict[Future, _InFlight] = {}
        executor: Optional[ProcessPoolExecutor] = None
        try:
            while pending or inflight:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=self.jobs, mp_context=self.mp_context)
                now = time.monotonic()
                # Submit at most one job per worker so a job's deadline
                # starts ticking roughly when it starts executing.
                for _ in range(len(pending)):
                    if len(inflight) >= self.jobs:
                        break
                    i, spec, fails, not_before = pending.popleft()
                    if not_before > now:
                        pending.append((i, spec, fails, not_before))
                        continue
                    deadline = (now + self.timeout_s
                                if self.timeout_s is not None else None)
                    future = executor.submit(self.worker_fn, spec)
                    inflight[future] = (i, spec, fails, deadline)
                if not inflight:
                    time.sleep(self.poll_interval_s)
                    continue

                done, _ = wait(set(inflight), timeout=self.poll_interval_s,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    i, spec, fails, _deadline = inflight.pop(future)
                    try:
                        result = future.result(timeout=0)
                    except BrokenProcessPool as exc:
                        broken = True
                        self._attempt_failed(
                            results, pending, i, spec, fails,
                            f"worker process died: {exc!r}")
                    except Exception as exc:  # raised inside the worker fn
                        self._attempt_failed(results, pending, i, spec, fails,
                                             repr(exc))
                    else:
                        results[i] = self._terminal(
                            replace(result, attempts=fails + 1))
                if broken:
                    # The pool is unusable; jobs not yet reported done are
                    # requeued without an attempt charge (they may never
                    # have started) and run on a fresh pool.
                    for i, spec, fails, _deadline in inflight.values():
                        pending.append((i, spec, fails, 0.0))
                    inflight.clear()
                    self._discard_executor(executor, kill=False)
                    executor = None
                    continue

                if self.timeout_s is None:
                    continue
                now = time.monotonic()
                expired = [(f, v) for f, v in inflight.items()
                           if v[3] is not None and now >= v[3]]
                if expired:
                    for future, (i, spec, fails, _deadline) in expired:
                        del inflight[future]
                        self._attempt_failed(
                            results, pending, i, spec, fails,
                            f"timed out after {self.timeout_s:.1f}s")
                    # A hung worker cannot be reclaimed individually:
                    # replace the whole pool, requeue the innocent
                    # in-flight jobs unpenalized.
                    for i, spec, fails, _deadline in inflight.values():
                        pending.append((i, spec, fails, 0.0))
                    inflight.clear()
                    self._discard_executor(executor, kill=True)
                    executor = None
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _attempt_failed(self, results: List[Optional[JobResult]],
                        pending: Deque[_Pending], index: int, spec: JobSpec,
                        fails: int, error: str) -> None:
        """Charge one failed attempt; requeue with backoff or record."""
        fails += 1
        if fails <= self.retries:
            self.progress.on_retry(spec, fails, error)
            not_before = time.monotonic() + self.backoff_s * (2 ** (fails - 1))
            pending.append((index, spec, fails, not_before))
            return
        results[index] = self._terminal(JobResult(
            job_id=spec.job_id, fingerprint=spec.fingerprint,
            status=STATUS_FAILED, error=error, attempts=fails))

    @staticmethod
    def _discard_executor(executor: ProcessPoolExecutor, kill: bool) -> None:
        if kill:
            # Hung workers ignore shutdown; terminate them outright.
            # _processes is a CPython implementation detail, hence the
            # defensive access — worst case the zombies linger until the
            # parent exits, which is still forward progress.
            processes = getattr(executor, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 - best effort cleanup
                    pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - the pool may already be broken
            pass
