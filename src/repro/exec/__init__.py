"""``repro.exec``: the parallel profiling job engine.

Fans independent profiling measurements out across worker processes
with bounded retry, per-job timeouts, crashed-worker isolation, and
live progress telemetry.  The profiler
(:class:`repro.search.profiler.RegionProfiler`) enumerates jobs,
consults the profile cache, submits only the misses, and merges results
back in canonical order — so a parallel profile is byte-identical to a
serial one, just faster.

Public surface:

* :class:`JobSpec` / :class:`JobResult` — serializable job descriptions
  and outcomes.
* :class:`JobEngine` — the scheduler (``jobs=1`` inline, ``jobs>1``
  process pool, ``jobs=0`` one worker per CPU).
* :func:`execute_job` — the worker-side entry point.
* :class:`ProgressReporter` and its :class:`CallbackReporter`,
  :class:`LoggingReporter`, :class:`ConsoleReporter` implementations.
"""

from repro.exec.engine import JobEngine, resolve_worker_count
from repro.exec.job import STATUS_FAILED, STATUS_OK, JobResult, JobSpec
from repro.exec.progress import (
    CallbackReporter,
    ConsoleReporter,
    LoggingReporter,
    ProgressReporter,
    ProgressSnapshot,
)
from repro.exec.worker import execute_job

__all__ = [
    "STATUS_FAILED",
    "STATUS_OK",
    "CallbackReporter",
    "ConsoleReporter",
    "JobEngine",
    "JobResult",
    "JobSpec",
    "LoggingReporter",
    "ProgressReporter",
    "ProgressSnapshot",
    "execute_job",
    "resolve_worker_count",
]
