"""Live progress telemetry for the job engine.

The engine drives a :class:`ProgressReporter` through the job
lifecycle: ``on_start`` with the totals (including how many requests
were already served by the profile cache), ``on_retry`` for every
failed attempt that will be retried, ``on_job_done`` for every job that
reaches a terminal state (completed or failed), and ``on_finish`` once
the batch drains.  Each hook receives a :class:`ProgressSnapshot` with
completed/failed/cached counts, elapsed wall-clock, and an ETA
extrapolated from the observed completion rate.

Three implementations ship: the no-op base class, a
:class:`CallbackReporter` that forwards events to a single callable
(the embedding-friendly form), and a :class:`LoggingReporter` that
rate-limits snapshots through :mod:`logging`.  The CLI builds a
:class:`ConsoleReporter`, which writes one-line status updates to a
stream at a bounded rate so long searches are never silent.
"""

from __future__ import annotations

import logging
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TextIO

from repro.exec.job import JobResult, JobSpec

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ProgressSnapshot:
    """Point-in-time view of a job batch."""

    total: int
    completed: int
    failed: int
    cached: int
    elapsed_s: float

    @property
    def done(self) -> int:
        """Jobs in a terminal state."""
        return self.completed + self.failed

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def eta_s(self) -> Optional[float]:
        """Remaining wall-clock extrapolated from the completion rate."""
        if self.done <= 0 or self.remaining <= 0:
            return None if self.remaining > 0 else 0.0
        return self.elapsed_s / self.done * self.remaining

    def describe(self) -> str:
        parts = [f"{self.done}/{self.total} jobs"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(f"{self.failed} failed")
        eta = self.eta_s
        if eta is not None and self.remaining > 0:
            parts.append(f"eta {eta:.1f}s")
        return ", ".join(parts)


class ProgressReporter:
    """Lifecycle hooks for job-batch telemetry.  Base class: no-op."""

    def on_start(self, snapshot: ProgressSnapshot) -> None:
        """The batch was enumerated; ``snapshot.total`` jobs will run."""

    def on_retry(self, spec: JobSpec, attempt: int, error: str) -> None:
        """Attempt ``attempt`` of ``spec`` failed and will be retried."""

    def on_job_done(self, result: JobResult,
                    snapshot: ProgressSnapshot) -> None:
        """``result`` reached a terminal state (ok or failed)."""

    def on_finish(self, snapshot: ProgressSnapshot) -> None:
        """All jobs reached a terminal state."""


class CallbackReporter(ProgressReporter):
    """Forwards every event to ``fn(event, snapshot, detail)``.

    ``event`` is one of ``"start"``, ``"retry"``, ``"job_done"``,
    ``"finish"``; ``detail`` is the :class:`JobResult` for
    ``job_done``, a ``(spec, attempt, error)`` tuple for ``retry``, and
    None otherwise.
    """

    def __init__(self, fn: Callable[[str, Optional[ProgressSnapshot], Any],
                                    None]) -> None:
        self.fn = fn

    def on_start(self, snapshot: ProgressSnapshot) -> None:
        self.fn("start", snapshot, None)

    def on_retry(self, spec: JobSpec, attempt: int, error: str) -> None:
        self.fn("retry", None, (spec, attempt, error))

    def on_job_done(self, result: JobResult,
                    snapshot: ProgressSnapshot) -> None:
        self.fn("job_done", snapshot, result)

    def on_finish(self, snapshot: ProgressSnapshot) -> None:
        self.fn("finish", snapshot, None)


class LoggingReporter(ProgressReporter):
    """Streams progress through :mod:`logging`, rate-limited.

    Start, finish, retries and failures always log; in-flight
    snapshots log at most once per ``interval_s``.
    """

    def __init__(self, log: Optional[logging.Logger] = None,
                 level: int = logging.INFO,
                 interval_s: float = 1.0) -> None:
        self.log = log or logger
        self.level = level
        self.interval_s = interval_s
        self._last_emit = 0.0

    def on_start(self, snapshot: ProgressSnapshot) -> None:
        self.log.log(self.level, "profiling %d jobs (%d served from cache)",
                     snapshot.total, snapshot.cached)
        self._last_emit = time.monotonic()

    def on_retry(self, spec: JobSpec, attempt: int, error: str) -> None:
        self.log.warning("job %d (%s %s) attempt %d failed, retrying: %s",
                         spec.job_id, spec.kind, "/".join(spec.target),
                         attempt, error)

    def on_job_done(self, result: JobResult,
                    snapshot: ProgressSnapshot) -> None:
        if not result.ok:
            self.log.warning("job %d failed after %d attempts: %s",
                             result.job_id, result.attempts, result.error)
        now = time.monotonic()
        if now - self._last_emit >= self.interval_s:
            self._last_emit = now
            self.log.log(self.level, "%s", snapshot.describe())

    def on_finish(self, snapshot: ProgressSnapshot) -> None:
        self.log.log(self.level, "profiling done: %s", snapshot.describe())


class ConsoleReporter(ProgressReporter):
    """One-line status updates to a stream (the CLI's live telemetry)."""

    def __init__(self, stream: Optional[TextIO] = None, label: str = "profile",
                 interval_s: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.interval_s = interval_s
        self._last_emit = 0.0

    def _emit(self, snapshot: ProgressSnapshot) -> None:
        print(f"{self.label}: {snapshot.describe()}", file=self.stream,
              flush=True)

    def on_start(self, snapshot: ProgressSnapshot) -> None:
        if snapshot.total:
            self._emit(snapshot)
        self._last_emit = time.monotonic()

    def on_job_done(self, result: JobResult,
                    snapshot: ProgressSnapshot) -> None:
        now = time.monotonic()
        if now - self._last_emit >= self.interval_s or snapshot.remaining == 0:
            self._last_emit = now
            self._emit(snapshot)

    def on_finish(self, snapshot: ProgressSnapshot) -> None:
        if snapshot.failed:
            print(f"{self.label}: {snapshot.failed} job(s) failed "
                  f"(recorded, search continues)", file=self.stream,
                  flush=True)
