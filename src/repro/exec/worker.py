"""The worker-process half of the job engine.

:func:`execute_job` is the picklable entry point a
``ProcessPoolExecutor`` worker runs for each :class:`JobSpec`: rebuild
the region graph from its serialized form, rebuild (or reuse) an
execution engine from the spec's engine description, run the same
measurement code the serial profiler runs
(:func:`repro.search.profiler.measure_region`), and ship the
measurement entries back as plain dicts.

Workers never touch the profile cache — the parent process is the
single writer, merging results after jobs complete — and they never
mutate parent state: the region arrives by value and the engine is a
per-process reconstruction.  Engines are memoized per worker process
keyed by the engine-spec hash, so a thousand jobs under one toolchain
configuration build the simulators once per worker, not once per job.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Mapping

from repro.exec.job import STATUS_OK, JobResult, JobSpec
from repro.graph.serialize import graph_from_dict
from repro.plan.fingerprint import stable_hash
from repro.runtime.engine import ExecutionEngine

#: Per-worker-process engine memo: engine-spec hash -> engine.
_ENGINES: Dict[str, ExecutionEngine] = {}


def _engine_for(spec: Mapping[str, Any]) -> ExecutionEngine:
    """The worker's engine for an engine spec, built at most once."""
    from repro.runtime.executor import engine_from_spec

    key = stable_hash(dict(spec))
    engine = _ENGINES.get(key)
    if engine is None:
        engine = engine_from_spec(dict(spec))
        _ENGINES[key] = engine
    return engine


def execute_job(spec: JobSpec) -> JobResult:
    """Measure one region; exceptions propagate to the engine's retry
    logic (a worker never converts its own crash into a result)."""
    from repro.search.profiler import measure_region

    t0 = time.perf_counter()
    engine = _engine_for(spec.engine_spec)
    region = graph_from_dict(dict(spec.region))
    runs_before = engine.run_count
    measurements = measure_region(
        region, spec.kind, spec.target, engine,
        ratios=spec.ratios, stages=spec.stages,
        fingerprint=spec.fingerprint)
    return JobResult(
        job_id=spec.job_id,
        fingerprint=spec.fingerprint,
        status=STATUS_OK,
        entries=tuple(m.to_dict() for m in measurements),
        runs=engine.run_count - runs_before,
        elapsed_s=time.perf_counter() - t0,
        worker_pid=os.getpid())
