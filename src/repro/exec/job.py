"""Serializable job descriptions and results for the profiling engine.

A :class:`JobSpec` is a self-contained description of one independent
profiling measurement: the region to measure (as a JSON-compatible
serialized graph, weights elided — the timing simulators are
value-independent, see :mod:`repro.plan.fingerprint`), the profiling
pass and its knobs, the region's content fingerprint (its profile-cache
key), the toolchain configuration fingerprint it was enumerated under,
and an engine spec sufficient to rebuild an identical
:class:`~repro.runtime.engine.ExecutionEngine` in a worker process.

A :class:`JobResult` carries the measurement entries back to the parent
(as ``RegionMeasurement.to_dict`` payloads, the same form the profile
cache stores), plus execution metadata: status, attempts consumed,
error text for failures, the worker's simulator-invocation count (so
the parent engine's ``run_count`` bookkeeping stays truthful), and
wall-clock.  Both types round-trip through plain dicts so they can be
pickled across process boundaries or logged as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Job terminal states.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """One independent profiling measurement, ready to ship to a worker.

    ``kind`` names the profiling pass (``"split"``, ``"gpu"``,
    ``"pipeline"``); ``target`` the node name(s) the pass applies to —
    a single-element tuple for split/gpu jobs, the full chain for
    pipeline jobs.  ``ratios``/``stages`` are the pass knobs.
    """

    job_id: int
    kind: str
    fingerprint: str
    config_fingerprint: str
    region: Mapping[str, Any]
    target: Tuple[str, ...]
    ratios: Tuple[float, ...] = ()
    stages: int = 2
    engine_spec: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "region": dict(self.region),
            "target": list(self.target),
            "ratios": list(self.ratios),
            "stages": self.stages,
            "engine_spec": dict(self.engine_spec),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            job_id=data["job_id"],
            kind=data["kind"],
            fingerprint=data["fingerprint"],
            config_fingerprint=data["config_fingerprint"],
            region=dict(data.get("region", {})),
            target=tuple(data["target"]),
            ratios=tuple(data.get("ratios", ())),
            stages=data.get("stages", 2),
            engine_spec=dict(data.get("engine_spec", {})),
        )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: measurements on success, a recorded failure
    otherwise — never an aborted search."""

    job_id: int
    fingerprint: str
    status: str
    entries: Tuple[Dict[str, Any], ...] = ()
    error: str = ""
    attempts: int = 1
    runs: int = 0
    elapsed_s: float = 0.0
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "entries": [dict(e) for e in self.entries],
            "error": self.error,
            "attempts": self.attempts,
            "runs": self.runs,
            "elapsed_s": self.elapsed_s,
            "worker_pid": self.worker_pid,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            job_id=data["job_id"],
            fingerprint=data["fingerprint"],
            status=data["status"],
            entries=tuple(dict(e) for e in data.get("entries", ())),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
            runs=data.get("runs", 0),
            elapsed_s=data.get("elapsed_s", 0.0),
            worker_pid=data.get("worker_pid", 0),
        )
