"""The inference server: worker pool over the batching queue.

Each worker loop pulls one micro-batch (single-model, size-or-deadline
coalesced), drops requests whose deadline passed while queued, then
executes the batch:

* **Host numerics** — every request runs individually through the
  model's :class:`~repro.runtime.executor.PlanExecutor` (one shared
  compiled executable per model, bound once).  Outputs are therefore
  *byte-identical* to a direct per-request ``PlanExecutor.infer`` call
  by construction: batching composes requests, it never changes
  numerics.
* **Device pricing** — the whole micro-batch is priced as one batch-B
  launch of the plan's schedule on the modelled PIM/GPU hardware
  (:class:`~repro.serve.pricing.BatchCostModel`).  This is where
  dynamic batching wins — per-sample kernels under-utilize the
  modelled GPU, and one batched launch amortizes launch/sync overhead
  and recovers SIMT utilization — and it is what the throughput
  metrics report.

Admission control is the queue's: full queue => typed ``Overloaded``
rejection at ``submit`` time, so accepted-request latency stays
bounded under overload (load-shedding, not unbounded queueing).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.serve.batching import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    DEFAULT_QUEUE_DEPTH,
    BatchingQueue,
)
from repro.serve.errors import (
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    UnknownModel,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.repository import LoadedModel, ModelRepository
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    PendingResult,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`InferenceServer`."""

    workers: int = 2
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    #: Linger (from the batch head's submission) for the batch to fill.
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS
    #: Default per-request deadline; None = requests never expire.
    default_deadline_ms: Optional[float] = None
    #: Operator-parallel dispatch width inside each host inference
    #: (None defers to ``REPRO_HOST_WORKERS``; 1 = serial).  The CLI
    #: flag ``--threads`` sets this.
    host_workers: Optional[int] = None
    #: Cap on pooled execution states per compiled program; this is
    #: what lets ``workers`` server threads run host numerics truly
    #: concurrently instead of serializing on one arena.  None = the
    #: runtime default (:data:`repro.runtime.hostpool.DEFAULT_MAX_STATES`).
    host_states: Optional[int] = None
    #: Intra-operator GEMM shard cap inside each host inference (None
    #: defers to ``REPRO_GEMM_SHARDS``; 1 = off; see
    #: :class:`repro.runtime.gemmpar.ShardPolicy`).  The CLI flag
    #: ``--gemm-shards`` sets this.
    gemm_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.host_states is not None and self.host_states < 1:
            raise ValueError(
                f"host_states must be >= 1, got {self.host_states}")


class InferenceServer:
    """Dynamic-batching server over a :class:`ModelRepository`."""

    def __init__(self, repository: ModelRepository,
                 config: Optional[ServerConfig] = None,
                 metrics: Optional[ServerMetrics] = None) -> None:
        self.repository = repository
        self.config = config or ServerConfig()
        self.metrics = metrics or ServerMetrics()
        self.queue = BatchingQueue(
            queue_depth=self.config.queue_depth,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Close admission and stop workers.

        ``drain=True`` lets queued requests finish; ``drain=False``
        fails them with :class:`ServerClosed`.
        """
        if self._stopped:
            return
        self._stopped = True
        if not drain:
            # Fail whatever is queued before the workers can take it.
            self.queue.close()
            while True:
                batch = self.queue.next_batch(timeout_s=0)
                if not batch:
                    break
                for req in batch:
                    req.fail(ServerClosed())
                    self.metrics.record_failed()
        else:
            self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout_s)
        self._threads = [t for t in self._threads if t.is_alive()]

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, model: str, feeds: Mapping[str, np.ndarray],
               deadline_ms: Optional[float] = None) -> PendingResult:
        """Admit one single-sample request; returns a completion handle.

        Raises typed errors synchronously when the request cannot be
        admitted: :class:`UnknownModel`, :class:`Overloaded`, or
        :class:`ServerClosed`.
        """
        if model not in self.repository:
            self.metrics.record_rejection("unknown_model")
            raise UnknownModel(model, self.repository.names())
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        request = InferenceRequest(model=model, feeds=feeds,
                                   deadline_ms=deadline_ms)
        try:
            depth = self.queue.submit(request)
        except ServeError as exc:
            self.metrics.record_rejection(exc.code)
            raise
        self.metrics.record_submitted(depth)
        return request.result

    def infer(self, model: str, feeds: Mapping[str, np.ndarray],
              deadline_ms: Optional[float] = None,
              timeout_s: Optional[float] = 60.0) -> InferenceResponse:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(model, feeds, deadline_ms).result(timeout_s)

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot: server metrics + repository state."""
        snap = self.metrics.snapshot(queue_depth=len(self.queue))
        snap["repository"] = self.repository.stats()
        snap["host"] = self.repository.host_stats()
        snap["config"] = {
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "host_workers": self.config.host_workers,
            "host_states": self.config.host_states,
            "gemm_shards": self.config.gemm_shards,
        }
        return snap

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch()
            if batch is None:
                return
            try:
                self._execute_batch(batch)
            except Exception as exc:  # worker must never die silently
                logger.exception("batch execution failed")
                self.metrics.record_failed(len(batch))
                for req in batch:
                    if not req.result.done():
                        req.fail(ServeError(f"batch execution failed: {exc}"))

    def _drop_expired(self, batch: List[InferenceRequest],
                      ) -> List[InferenceRequest]:
        now = time.perf_counter()
        live: List[InferenceRequest] = []
        for req in batch:
            if req.expired(now):
                req.fail(DeadlineExceeded(req.model, req.deadline_ms,
                                          req.waited_ms(now)))
                self.metrics.record_expired()
            else:
                live.append(req)
        return live

    def _execute_batch(self, batch: List[InferenceRequest]) -> None:
        batch = self._drop_expired(batch)
        if not batch:
            return
        model_name = batch[0].model
        loaded: LoadedModel = self.repository.get(model_name)
        size = len(batch)

        # One batched launch on the modelled hardware serves the whole
        # micro-batch; each request is billed its per-sample share.
        device_batch_us = loaded.cost.batch_makespan_us(size)
        device_us = device_batch_us / size

        start = time.perf_counter()
        outputs: List[Dict[str, np.ndarray]] = []
        self.metrics.record_host_begin()
        try:
            for req in batch:
                # Per-sample through the shared compiled executable: the
                # same call a direct client would make, hence
                # byte-identical results no matter how requests were
                # batched.  Each call runs on its own pooled execution
                # state, so workers executing different batches proceed
                # concurrently.
                outputs.append(loaded.executor.infer(
                    req.feeds, workers=self.config.host_workers,
                    max_states=self.config.host_states,
                    gemm_shards=self.config.gemm_shards))
        finally:
            self.metrics.record_host_end()
        host_ms = (time.perf_counter() - start) * 1e3

        self.metrics.record_batch(model_name, size, device_batch_us, host_ms)
        done = time.perf_counter()
        for req, outs in zip(batch, outputs):
            queue_ms = (start - req.submitted_at) * 1e3
            latency_ms = (done - req.submitted_at) * 1e3
            req.result.set_response(InferenceResponse(
                request_id=req.request_id,
                model=model_name,
                outputs=outs,
                batch_size=size,
                queue_ms=queue_ms,
                latency_ms=latency_ms,
                device_batch_us=device_batch_us,
                device_us=device_us))
            self.metrics.record_completed(model_name, latency_ms, queue_ms,
                                          device_us)


def serve_plans(plans: Dict[str, Union[str, object]],
                config: Optional[ServerConfig] = None) -> InferenceServer:
    """Build (but don't start) a server over named plans/paths."""
    repo = ModelRepository()
    for name, plan in plans.items():
        repo.register_plan(name, plan)
    return InferenceServer(repo, config=config)
