"""Multi-model registry backing the inference server.

A :class:`ModelRepository` maps serving names to execution plans and
hands workers fully-loaded entries — a
:class:`~repro.runtime.executor.PlanExecutor` (host numerics) plus a
:class:`~repro.serve.pricing.BatchCostModel` (modelled device time).
Models register three ways:

* an in-memory :class:`~repro.plan.artifact.ExecutionPlan`,
* a plan artifact path (loaded lazily on first request),
* a registry model name compiled lazily on first request through the
  existing :class:`~repro.pimflow.Compiler` (compile-on-first-request).

Loaded entries live in a bounded LRU: registrations are cheap and
unlimited, but at most ``capacity`` models hold compiled executables
and arenas at once — the eviction victim's plan/path/recipe stays
registered and reloads transparently on its next request.

Thread safety: the map and LRU order are guarded by one lock; the
expensive load/compile runs outside it under a per-entry lock, so two
workers requesting the same cold model build it once while requests
for other models proceed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.plan.artifact import ExecutionPlan
from repro.runtime.executor import PlanExecutor
from repro.serve.errors import UnknownModel
from repro.serve.pricing import BatchCostModel

DEFAULT_CAPACITY = 4


@dataclass
class LoadedModel:
    """One servable model: plan, host executor, and device pricing."""

    name: str
    plan: ExecutionPlan
    executor: PlanExecutor
    cost: BatchCostModel

    @property
    def graph(self):
        return self.plan.graph


@dataclass
class _Entry:
    """Registration record; ``loaded`` is populated on first request."""

    name: str
    source: str                       # "plan" | "path" | "compile"
    plan: Optional[ExecutionPlan] = None
    path: Optional[Path] = None
    build: Optional[Callable[[], ExecutionPlan]] = None
    loaded: Optional[LoadedModel] = None
    #: Serialized per-entry load/compile; never held with the map lock.
    lock: threading.Lock = field(default_factory=threading.Lock)
    loads: int = 0                    # times materialized (1 + reloads)


def _load(entry: _Entry) -> LoadedModel:
    if entry.source == "plan":
        plan = entry.plan
    elif entry.source == "path":
        plan = ExecutionPlan.load(entry.path)
    else:
        plan = entry.build()
    executor = PlanExecutor(plan)
    return LoadedModel(name=entry.name, plan=plan, executor=executor,
                       cost=BatchCostModel(executor.engine, plan.graph))


class ModelRepository:
    """Bounded-LRU registry of servable compiled models."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self._lru: List[str] = []     # least recent first, loaded only
        self.evictions = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_plan(self, name: str,
                      plan: Union[ExecutionPlan, str, Path]) -> None:
        """Register an existing plan (object, or path to load lazily)."""
        if isinstance(plan, ExecutionPlan):
            entry = _Entry(name=name, source="plan", plan=plan)
        else:
            entry = _Entry(name=name, source="path", path=Path(plan))
        self._register(entry)

    def register_model(self, name: str, model: Optional[str] = None,
                       config=None) -> None:
        """Register a registry model, compiled on its first request.

        ``model`` is a :mod:`repro.models` registry name (default: the
        serving name itself); ``config`` is the
        :class:`~repro.pimflow.PimFlowConfig` to compile under
        (default configuration when omitted).
        """
        model_name = model or name

        def build() -> ExecutionPlan:
            from repro.models import build_model, normalize_model_name
            from repro.pimflow import Compiler

            resolved = normalize_model_name(model_name)
            compiler = Compiler(config)
            return compiler.build_plan(build_model(resolved),
                                       model_name=resolved)

        self._register(_Entry(name=name, source="compile", build=build))

    def _register(self, entry: _Entry) -> None:
        with self._lock:
            old = self._entries.get(entry.name)
            if old is not None and old.name in self._lru:
                self._lru.remove(old.name)
            self._entries[entry.name] = entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str) -> LoadedModel:
        """The loaded model for ``name``, materializing it if needed.

        Raises :class:`~repro.serve.errors.UnknownModel` for names that
        were never registered.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry.loaded is not None:
                self._touch(name)
                return entry.loaded
        if entry is None:
            raise UnknownModel(name, self.names())
        with entry.lock:
            # Double-check: another worker may have loaded it while we
            # waited on the entry lock.
            with self._lock:
                if entry.loaded is not None:
                    self._touch(name)
                    return entry.loaded
            loaded = _load(entry)
            entry.loads += 1
            with self._lock:
                entry.loaded = loaded
                self._touch(name)
                self._evict_over_capacity()
            return loaded

    def _touch(self, name: str) -> None:
        """Move ``name`` to most-recently-used (lock held)."""
        if name in self._lru:
            self._lru.remove(name)
        self._lru.append(name)

    def _evict_over_capacity(self) -> None:
        """Drop least-recently-used loaded executables (lock held)."""
        while len(self._lru) > self.capacity:
            victim = self._lru.pop(0)
            entry = self._entries.get(victim)
            if entry is not None:
                entry.loaded = None
                self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "registered": len(self._entries),
                "loaded": len(self._lru),
                "capacity": self.capacity,
                "evictions": self.evictions,
                "lru": list(self._lru),
                "loads": {n: e.loads for n, e in self._entries.items()
                          if e.loads},
            }

    def host_stats(self) -> Dict[str, object]:
        """State-pool gauges aggregated over the loaded models.

        Sums execution-state counts and acquire/wait counters across
        every resident executor — the server's view of how concurrent
        host inference actually was.
        """
        with self._lock:
            loaded = [e.loaded for e in self._entries.values()
                      if e.loaded is not None]
        agg: Dict[str, object] = {
            "models": len(loaded), "states_bound": 0, "in_use": 0,
            "peak_in_use": 0, "acquires": 0, "waits": 0}
        for model in loaded:
            s = model.executor.host_stats()
            agg["states_bound"] += s["states_bound"]
            agg["in_use"] += s["in_use"]
            agg["peak_in_use"] = max(agg["peak_in_use"], s["peak_in_use"])
            agg["acquires"] += s["acquires"]
            agg["waits"] += s["waits"]
        return agg
