"""Request/response types and the client-side completion handle.

A request is one *single-sample* inference: feeds for every graph
input of one registered model.  The server owns batching — clients
never see batch composition except through the response's
``batch_size`` telemetry field.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.serve.errors import ServeError

_request_ids = itertools.count(1)


@dataclass
class InferenceResponse:
    """A completed request: outputs plus per-request telemetry."""

    request_id: int
    model: str
    #: Output name -> array, byte-identical to a direct per-request
    #: :meth:`repro.runtime.executor.PlanExecutor.infer` call.
    outputs: Dict[str, np.ndarray]
    #: Size of the micro-batch this request was served in.
    batch_size: int
    #: Wall-clock queueing delay (submit -> execution start).
    queue_ms: float
    #: Wall-clock end-to-end latency (submit -> completion).
    latency_ms: float
    #: Modelled device time of the whole micro-batch (one batched
    #: launch on the simulated GPU+PIM hardware), and this request's
    #: per-sample share of it.
    device_batch_us: float
    device_us: float


class PendingResult:
    """Completion handle handed back by ``InferenceServer.submit``.

    A minimal future: the worker thread fulfils it exactly once with
    either a response or a typed :class:`~repro.serve.errors.ServeError`.
    """

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[InferenceResponse] = None
        self._error: Optional[BaseException] = None

    # -- worker side ---------------------------------------------------
    def set_response(self, response: InferenceResponse) -> None:
        self._response = response
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # -- client side ---------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> InferenceResponse:
        """Block for the outcome; raises the typed error on failure."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    def error(self) -> Optional[BaseException]:
        """The failure, if any, without raising (None while pending)."""
        return self._error


@dataclass
class InferenceRequest:
    """One admitted single-sample request, as the queue carries it."""

    model: str
    feeds: Mapping[str, np.ndarray]
    result: PendingResult = field(default_factory=PendingResult)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Relative deadline; the request is dropped (with a typed
    #: :class:`~repro.serve.errors.DeadlineExceeded`) if execution has
    #: not *started* within this many ms of submission.  None = no
    #: deadline.
    deadline_ms: Optional[float] = None
    submitted_at: float = field(default_factory=time.perf_counter)

    def waited_ms(self, now: Optional[float] = None) -> float:
        now = time.perf_counter() if now is None else now
        return (now - self.submitted_at) * 1e3

    def expired(self, now: Optional[float] = None) -> bool:
        return (self.deadline_ms is not None
                and self.waited_ms(now) > self.deadline_ms)

    def fail(self, error: ServeError) -> None:
        self.result.set_error(error)
