"""Server observability: counters, histograms, and tail latencies.

One :class:`ServerMetrics` instance is shared by every worker thread;
all mutation happens under one lock (the guarded sections are a few
appends and integer bumps, orders of magnitude cheaper than the
inference they account for).  ``snapshot()`` returns a plain JSON-able
dict so the CLI, the load harness, and CI can consume it directly.

Latency percentiles come from bounded per-model reservoirs: the first
``reservoir_size`` samples are kept verbatim, after which uniform
reservoir sampling (Vitter's Algorithm R, deterministic seed) keeps
the reservoir an unbiased sample of the whole stream.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Optional

DEFAULT_RESERVOIR_SIZE = 4096


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


class _ModelStats:
    """Per-model accumulators (guarded by the owning metrics lock)."""

    __slots__ = ("completed", "latency_ms", "queue_ms", "seen",
                 "device_us_total", "wall_ms_total", "reservoir_size", "rng")

    def __init__(self, reservoir_size: int, seed: int) -> None:
        self.completed = 0
        self.seen = 0            # latency samples observed (reservoir input)
        self.latency_ms: List[float] = []
        self.queue_ms: List[float] = []
        self.device_us_total = 0.0
        self.wall_ms_total = 0.0
        self.reservoir_size = reservoir_size
        self.rng = random.Random(seed)

    def observe(self, latency_ms: float, queue_ms: float,
                device_us: float) -> None:
        self.completed += 1
        self.seen += 1
        self.device_us_total += device_us
        self.wall_ms_total += latency_ms
        if len(self.latency_ms) < self.reservoir_size:
            self.latency_ms.append(latency_ms)
            self.queue_ms.append(queue_ms)
        else:
            slot = self.rng.randrange(self.seen)
            if slot < self.reservoir_size:
                self.latency_ms[slot] = latency_ms
                self.queue_ms[slot] = queue_ms


class ServerMetrics:
    """Thread-safe request/batch/latency accounting for one server."""

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self.submitted = 0
        self.rejected_overloaded = 0
        self.rejected_unknown_model = 0
        self.rejected_closed = 0
        self.expired_deadline = 0
        self.failed = 0
        self.completed = 0
        self.batches = 0
        #: batch size -> number of micro-batches executed at that size.
        self.batch_histogram: Dict[int, int] = {}
        self.device_busy_us = 0.0
        self.host_exec_ms = 0.0
        self._models: Dict[str, _ModelStats] = {}
        #: Peak queue depth observed at submission time.
        self.peak_queue_depth = 0
        #: Server workers currently executing host numerics, and the
        #: high-water mark — >1 peak proves batches truly overlapped on
        #: the host (the single-arena lock made the peak exactly 1).
        self.host_inflight = 0
        self.host_inflight_peak = 0

    # ------------------------------------------------------------------
    # Recording (called by server/queue code paths)
    # ------------------------------------------------------------------
    def record_submitted(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            if queue_depth > self.peak_queue_depth:
                self.peak_queue_depth = queue_depth

    def record_rejection(self, code: str) -> None:
        with self._lock:
            if code == "overloaded":
                self.rejected_overloaded += 1
            elif code == "unknown_model":
                self.rejected_unknown_model += 1
            elif code == "server_closed":
                self.rejected_closed += 1
            else:
                self.failed += 1

    def record_expired(self, count: int = 1) -> None:
        with self._lock:
            self.expired_deadline += count

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def record_host_begin(self) -> None:
        with self._lock:
            self.host_inflight += 1
            if self.host_inflight > self.host_inflight_peak:
                self.host_inflight_peak = self.host_inflight

    def record_host_end(self) -> None:
        with self._lock:
            self.host_inflight -= 1

    def record_batch(self, model: str, batch_size: int,
                     device_batch_us: float, host_ms: float) -> None:
        with self._lock:
            self.batches += 1
            self.batch_histogram[batch_size] = (
                self.batch_histogram.get(batch_size, 0) + 1)
            self.device_busy_us += device_batch_us
            self.host_exec_ms += host_ms

    def record_completed(self, model: str, latency_ms: float,
                         queue_ms: float, device_us: float) -> None:
        with self._lock:
            self.completed += 1
            stats = self._models.get(model)
            if stats is None:
                stats = self._models[model] = _ModelStats(
                    self._reservoir_size, seed=len(self._models))
            stats.observe(latency_ms, queue_ms, device_us)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def rejected(self) -> int:
        return (self.rejected_overloaded + self.rejected_unknown_model
                + self.rejected_closed)

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, Any]:
        """A JSON-able point-in-time view of every metric."""
        with self._lock:
            batch_sizes = self.batch_histogram
            mean_batch = (sum(k * v for k, v in batch_sizes.items())
                          / self.batches if self.batches else 0.0)
            models: Dict[str, Any] = {}
            for name, stats in self._models.items():
                device_s = stats.device_us_total / 1e6
                models[name] = {
                    "completed": stats.completed,
                    "latency_p50_ms": percentile(stats.latency_ms, 50),
                    "latency_p95_ms": percentile(stats.latency_ms, 95),
                    "latency_p99_ms": percentile(stats.latency_ms, 99),
                    "queue_p50_ms": percentile(stats.queue_ms, 50),
                    "queue_p99_ms": percentile(stats.queue_ms, 99),
                    "device_us_total": stats.device_us_total,
                    #: Modelled-hardware throughput: completed requests
                    #: over the device time their batches occupied.
                    "device_throughput_rps": (
                        stats.completed / device_s if device_s else 0.0),
                    "mean_latency_ms": (stats.wall_ms_total / stats.completed
                                        if stats.completed else 0.0),
                }
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "rejected_overloaded": self.rejected_overloaded,
                "rejected_unknown_model": self.rejected_unknown_model,
                "rejected_closed": self.rejected_closed,
                "expired_deadline": self.expired_deadline,
                "failed": self.failed,
                "batches": self.batches,
                "mean_batch_size": mean_batch,
                "batch_histogram": {str(k): v for k, v in
                                    sorted(batch_sizes.items())},
                "device_busy_us": self.device_busy_us,
                "host_exec_ms": self.host_exec_ms,
                "peak_queue_depth": self.peak_queue_depth,
                "host_inflight": self.host_inflight,
                "host_inflight_peak": self.host_inflight_peak,
                "queue_depth": queue_depth if queue_depth is not None else 0,
                "models": models,
            }
