"""Typed failure modes of the serving layer.

Every way a request can fail is a distinct exception type, so clients
(and the load generators) can distinguish *shed* traffic from *broken*
traffic programmatically instead of parsing messages.  All of them
derive from :class:`ServeError`.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""

    #: Stable machine-readable code, mirrored into metrics counters.
    code = "error"


class Overloaded(ServeError):
    """Admission control shed this request: the bounded queue is full.

    This is backpressure, not breakage — the server rejects at the
    door so accepted requests keep a bounded queueing delay instead of
    every request's latency growing without limit.  Clients should
    back off and retry.
    """

    code = "overloaded"

    def __init__(self, model: str, queue_depth: int) -> None:
        super().__init__(
            f"server overloaded: queue of {queue_depth} requests is full "
            f"(model {model!r})")
        self.model = model
        self.queue_depth = queue_depth


class DeadlineExceeded(ServeError):
    """The request's deadline passed before execution started."""

    code = "deadline_exceeded"

    def __init__(self, model: str, deadline_ms: float, waited_ms: float) -> None:
        super().__init__(
            f"deadline of {deadline_ms:.0f} ms exceeded after waiting "
            f"{waited_ms:.0f} ms in queue (model {model!r})")
        self.model = model
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms


class UnknownModel(ServeError):
    """The request named a model the repository has never registered."""

    code = "unknown_model"

    def __init__(self, model: str, known) -> None:
        known = sorted(known)
        hint = f"; registered: {', '.join(known)}" if known else ""
        super().__init__(f"unknown model {model!r}{hint}")
        self.model = model
        self.known = known


class ServerClosed(ServeError):
    """The server is draining or stopped and admits no new requests."""

    code = "server_closed"

    def __init__(self) -> None:
        super().__init__("server is shut down and admits no new requests")
