"""Dynamic micro-batching over a bounded admission queue.

The queue is the server's single point of backpressure and batch
formation:

* **Admission** — ``submit`` is non-blocking; when the bounded queue
  is full the request is shed immediately with a typed
  :class:`~repro.serve.errors.Overloaded` instead of joining an
  unbounded line.  Shedding at the door is what keeps the latency of
  *accepted* requests bounded under sustained overload.
* **Batch formation** — ``next_batch`` (called by worker threads)
  takes the oldest request as the batch *head* and coalesces
  same-model requests behind it, up to ``max_batch_size``.  If the
  head alone cannot fill the batch, the worker waits up to
  ``max_wait_ms`` (measured from the head's submission) for more
  arrivals — the classic size-or-deadline micro-batching policy:
  batch-happy under load, near-zero added latency when idle.

Requests for *other* models stay queued in FIFO order; a batch only
ever mixes requests of one model, because they execute as one stacked
launch of one compiled plan.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from repro.serve.errors import Overloaded, ServerClosed
from repro.serve.request import InferenceRequest

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_MAX_BATCH_SIZE = 8
DEFAULT_MAX_WAIT_MS = 2.0


class BatchingQueue:
    """Bounded FIFO with model-affine micro-batch extraction."""

    def __init__(self, queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        self.queue_depth = queue_depth
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: Deque[InferenceRequest] = deque()
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> int:
        """Admit one request; returns the queue depth after admission.

        Raises :class:`Overloaded` when the queue is full and
        :class:`ServerClosed` after :meth:`close`.
        """
        with self._not_empty:
            if self._closed:
                raise ServerClosed()
            if len(self._pending) >= self.queue_depth:
                raise Overloaded(request.model, self.queue_depth)
            self._pending.append(request)
            self._not_empty.notify()
            return len(self._pending)

    def close(self) -> None:
        """Stop admitting; queued requests still drain via next_batch."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # Consumer side (worker threads)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _take_batch_locked(self) -> List[InferenceRequest]:
        """Pop the head and every same-model request after it (up to
        ``max_batch_size``), preserving FIFO order of the rest."""
        head = self._pending.popleft()
        batch = [head]
        if len(batch) < self.max_batch_size:
            keep: List[InferenceRequest] = []
            while self._pending and len(batch) < self.max_batch_size:
                req = self._pending.popleft()
                if req.model == head.model:
                    batch.append(req)
                else:
                    keep.append(req)
            # Put skipped (other-model) requests back at the front in
            # their original order.
            for req in reversed(keep):
                self._pending.appendleft(req)
        return batch

    def _coalescable(self, model: str) -> int:
        """How many queued requests could join a batch for ``model``."""
        return sum(1 for r in self._pending if r.model == model)

    def next_batch(self, timeout_s: Optional[float] = None,
                   ) -> Optional[List[InferenceRequest]]:
        """Block for the next micro-batch.

        Returns None when ``timeout_s`` elapses with an empty queue, or
        when the queue is closed and fully drained — the worker's
        signal to exit.
        """
        deadline = (time.perf_counter() + timeout_s
                    if timeout_s is not None else None)
        with self._not_empty:
            while True:
                while not self._pending:
                    if self._closed:
                        return None
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            return None
                        self._not_empty.wait(remaining)
                    else:
                        self._not_empty.wait()

                head = self._pending[0]
                # Size-or-deadline: linger (from the head's submission)
                # for the batch to fill, under the lock's condition
                # variable so arrivals wake us immediately.
                raced = False
                if self.max_wait_ms > 0 and self.max_batch_size > 1:
                    batch_deadline = (head.submitted_at
                                      + self.max_wait_ms / 1e3)
                    while (self._coalescable(head.model)
                           < self.max_batch_size and not self._closed):
                        remaining = batch_deadline - time.perf_counter()
                        if remaining <= 0:
                            break
                        self._not_empty.wait(remaining)
                        if not self._pending or self._pending[0] is not head:
                            # Another worker raced us to the head;
                            # restart with whatever is queued now.
                            raced = True
                            break
                if raced or not self._pending:
                    continue
                return self._take_batch_locked()
