"""Pricing micro-batches on the modelled PIM/GPU hardware.

Execution plans are compiled at batch 1 (the paper's design point).
Serving executes micro-batches, so the server needs the *modelled
device time* of the plan's schedule at batch B — that is where dynamic
batching wins: small per-sample kernels under-utilize the GPU's SIMT
resources, and batching recovers utilization while launch and sync
overheads amortize over the batch, exactly as on real hardware (the
paper's Fig. 8 batch-sensitivity story).

:func:`batch_scaled_graph` rewrites the leading (batch) dimension of
every activation tensor of a compiled graph — initializers and the
node structure are untouched, so the plan's placements, splits, and
elisions price exactly as compiled, just at batch B.
:class:`BatchCostModel` memoizes one schedule evaluation per
(graph version, batch), so the serving hot path never re-prices a
batch size it has seen.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.runtime.engine import ExecutionEngine, RunResult


def batch_scaled_graph(graph: Graph, batch: int) -> Graph:
    """A clone of ``graph`` with every activation's batch dim set to B.

    Only rank>=2 non-initializer tensors whose leading dimension is 1
    are scaled — compiled plans declare batch-1 shapes, and every
    transform in the repertoire (H-axis MD-DP splits, pipeline stages,
    channel groups) leaves the batch dimension alone, so this is a
    faithful batch-B view of the same schedule.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    scaled = graph.clone()
    if batch == 1:
        return scaled
    for name, info in list(scaled.tensors.items()):
        if name in scaled.initializers:
            continue
        shape = tuple(info.shape)
        if len(shape) >= 2 and shape[0] == 1:
            scaled.tensors[name] = info.with_shape((batch,) + shape[1:])
    scaled.touch()
    return scaled


class BatchCostModel:
    """Memoized modelled cost of one plan's graph at any batch size.

    Thread-safe: concurrent workers pricing the same (version, batch)
    may race to compute it, but both compute the same deterministic
    result and the last write wins — correctness never depends on the
    lock covering the schedule evaluation itself.
    """

    def __init__(self, engine: ExecutionEngine, graph: Graph) -> None:
        self.engine = engine
        self.graph = graph
        self._lock = threading.Lock()
        self._memo: Dict[Tuple[int, int], RunResult] = {}

    def run_result(self, batch: int) -> RunResult:
        """The full modelled schedule of one batch-B launch."""
        key = (self.graph.version, batch)
        with self._lock:
            cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self.engine.run(batch_scaled_graph(self.graph, batch))
        with self._lock:
            self._memo[key] = result
        return result

    def batch_makespan_us(self, batch: int) -> float:
        """Modelled device time of one batch-B launch of the plan."""
        return self.run_result(batch).makespan_us

    def per_sample_us(self, batch: int) -> float:
        return self.batch_makespan_us(batch) / batch

    def throughput_rps(self, batch: int) -> float:
        """Modelled steady-state requests/second at fixed batch B."""
        makespan = self.batch_makespan_us(batch)
        return batch / (makespan / 1e6) if makespan > 0 else 0.0

    def batching_win(self, batch: int) -> float:
        """Throughput of batch-B serving relative to batch-1 serving."""
        base = self.throughput_rps(1)
        return self.throughput_rps(batch) / base if base > 0 else 0.0

    def profile(self, batches=(1, 2, 4, 8)) -> Dict[int, Dict[str, float]]:
        """Makespan/throughput table over a batch-size sweep."""
        out: Dict[int, Dict[str, float]] = {}
        for b in batches:
            out[b] = {
                "makespan_us": self.batch_makespan_us(b),
                "per_sample_us": self.per_sample_us(b),
                "throughput_rps": self.throughput_rps(b),
                "win_vs_batch1": self.batching_win(b),
            }
        return out


def batch_makespan_us(engine: ExecutionEngine, graph: Graph,
                      batch: int,
                      model: Optional[BatchCostModel] = None) -> float:
    """One-shot convenience wrapper over :class:`BatchCostModel`."""
    return (model or BatchCostModel(engine, graph)).batch_makespan_us(batch)
