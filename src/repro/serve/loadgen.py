"""Synthetic load generation and the serve benchmark harness.

Two standard drivers from the serving-systems literature:

* **Closed loop** — N client threads, each issuing its next request as
  soon as the previous one completes.  Offered load adapts to the
  server (concurrency-limited); good for measuring peak throughput.
* **Open loop** — requests arrive on a fixed schedule regardless of
  completions (rate-limited), which is what exposes overload behavior:
  when offered rate exceeds capacity, a bounded queue must shed with
  typed rejections instead of growing without limit.

:func:`bench_serve` is the ``repro bench-serve`` core: it compiles (or
loads) a plan, serves the same closed-loop workload at max-batch 1 and
max-batch N, and reports the dynamic-batching win on the modelled
hardware plus wall-clock tail latencies — the ``serve.*`` metrics of
the perf harness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.serve.errors import Overloaded, ServeError
from repro.serve.metrics import percentile
from repro.serve.repository import ModelRepository
from repro.serve.request import InferenceResponse
from repro.serve.server import InferenceServer, ServerConfig


def feeds_for(graph, seed: int) -> Dict[str, np.ndarray]:
    """Deterministic single-sample feeds for request number ``seed``."""
    from repro.runtime.verify import random_feeds

    return {name: np.asarray(arr, dtype=np.float32)
            for name, arr in random_feeds(graph, seed=seed).items()}


@dataclass
class LoadResult:
    """Outcome of one load-generation run against one server."""

    model: str
    offered: int
    completed: int
    rejected: int
    expired: int
    failed: int
    wall_s: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    responses: List[InferenceResponse] = field(default_factory=list,
                                               repr=False)
    server_stats: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def wall_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def device_rps(self) -> float:
        """Modelled-hardware throughput of the completed requests."""
        stats = self.server_stats.get("models", {}).get(self.model, {})
        return float(stats.get("device_throughput_rps", 0.0))

    def p(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def summary(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 3),
            "wall_rps": round(self.wall_rps, 2),
            "device_rps": round(self.device_rps, 2),
            "latency_p50_ms": round(self.p(50), 3),
            "latency_p95_ms": round(self.p(95), 3),
            "latency_p99_ms": round(self.p(99), 3),
            "mean_batch_size": round(
                float(self.server_stats.get("mean_batch_size", 0.0)), 3),
        }


def _collect(result: LoadResult, lock: threading.Lock,
             outcome: Optional[InferenceResponse],
             error: Optional[BaseException]) -> None:
    with lock:
        if outcome is not None:
            result.completed += 1
            result.latencies_ms.append(outcome.latency_ms)
            result.responses.append(outcome)
        elif isinstance(error, Overloaded):
            result.rejected += 1
        elif isinstance(error, ServeError) and error.code == "deadline_exceeded":
            result.expired += 1
        else:
            result.failed += 1


def run_closed_loop(server: InferenceServer, model: str,
                    clients: int = 4, requests_per_client: int = 8,
                    feeds_fn: Optional[Callable[[int], Dict[str, np.ndarray]]]
                    = None,
                    deadline_ms: Optional[float] = None,
                    keep_responses: bool = False,
                    client_timeout_s: Optional[float] = 120.0) -> LoadResult:
    """Drive ``clients`` synchronous request loops to completion.

    ``client_timeout_s`` bounds the whole run: client threads are
    joined against one shared deadline, and any still alive past it
    (e.g. wedged on a server that stopped completing requests) raise a
    ``RuntimeError`` naming the stuck clients instead of hanging the
    bench run forever.  ``None`` disables the bound.
    """
    graph = server.repository.get(model).graph
    if feeds_fn is None:
        feeds_fn = lambda i: feeds_for(graph, i)  # noqa: E731
    total = clients * requests_per_client
    result = LoadResult(model=model, offered=total, completed=0, rejected=0,
                        expired=0, failed=0, wall_s=0.0)
    lock = threading.Lock()

    def client(cid: int) -> None:
        for i in range(requests_per_client):
            seq = cid * requests_per_client + i
            try:
                resp = server.infer(model, feeds_fn(seq),
                                    deadline_ms=deadline_ms)
                if not keep_responses:
                    resp = InferenceResponse(
                        request_id=resp.request_id, model=resp.model,
                        outputs={}, batch_size=resp.batch_size,
                        queue_ms=resp.queue_ms, latency_ms=resp.latency_ms,
                        device_batch_us=resp.device_batch_us,
                        device_us=resp.device_us)
                _collect(result, lock, resp, None)
            except Exception as exc:
                _collect(result, lock, None, exc)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(c,), daemon=True,
                                name=f"loadgen-client-{c}")
               for c in range(clients)]
    for t in threads:
        t.start()
    deadline = None if client_timeout_s is None else t0 + client_timeout_s
    stuck: List[str] = []
    for t in threads:
        remaining = None if deadline is None else max(
            0.0, deadline - time.perf_counter())
        t.join(remaining)
        if t.is_alive():
            stuck.append(t.name)
    if stuck:
        raise RuntimeError(
            f"closed-loop load generation stuck: {len(stuck)}/{clients} "
            f"client(s) still running after {client_timeout_s}s "
            f"({', '.join(stuck)}); server stats: {server.stats()}")
    result.wall_s = time.perf_counter() - t0
    result.server_stats = server.stats()
    return result


def run_open_loop(server: InferenceServer, model: str,
                  rate_rps: float, duration_s: float,
                  feeds_fn: Optional[Callable[[int], Dict[str, np.ndarray]]]
                  = None,
                  deadline_ms: Optional[float] = None) -> LoadResult:
    """Submit at a fixed arrival rate for ``duration_s`` seconds.

    Arrivals are paced on the wall clock independent of completions, so
    offered load beyond capacity piles into the bounded queue and the
    excess is shed as typed ``Overloaded`` rejections — this is the
    driver the overload tests use.
    """
    graph = server.repository.get(model).graph
    if feeds_fn is None:
        feeds_fn = lambda i: feeds_for(graph, i)  # noqa: E731
    result = LoadResult(model=model, offered=0, completed=0, rejected=0,
                        expired=0, failed=0, wall_s=0.0)
    lock = threading.Lock()
    pending = []
    interval = 1.0 / rate_rps
    t0 = time.perf_counter()
    seq = 0
    while True:
        now = time.perf_counter()
        if now - t0 >= duration_s:
            break
        result.offered += 1
        try:
            pending.append(server.submit(model, feeds_fn(seq),
                                         deadline_ms=deadline_ms))
        except Exception as exc:
            _collect(result, lock, None, exc)
        seq += 1
        # Pace to the schedule (absolute, so submit cost doesn't skew).
        next_at = t0 + seq * interval
        sleep = next_at - time.perf_counter()
        if sleep > 0:
            time.sleep(sleep)
    for handle in pending:
        try:
            _collect(result, lock, handle.result(timeout=120.0), None)
        except Exception as exc:
            _collect(result, lock, None, exc)
    result.wall_s = time.perf_counter() - t0
    result.server_stats = server.stats()
    return result


# ----------------------------------------------------------------------
# The bench-serve harness
# ----------------------------------------------------------------------
def _serve_once(repo: ModelRepository, model: str, max_batch: int,
                clients: int, requests_per_client: int,
                workers: int, max_wait_ms: float,
                host_workers: Optional[int] = None,
                host_states: Optional[int] = None) -> LoadResult:
    server = InferenceServer(repo, ServerConfig(
        workers=workers, max_batch_size=max_batch,
        max_wait_ms=max_wait_ms,
        queue_depth=max(64, clients * 2),
        host_workers=host_workers, host_states=host_states))
    with server:
        return run_closed_loop(server, model, clients=clients,
                               requests_per_client=requests_per_client)


def bench_serve(model: str = "mobilenet-v2", mechanism: str = "gpu",
                max_batch: int = 8, clients: int = 16,
                requests_per_client: int = 3, workers: int = 1,
                max_wait_ms: float = 50.0,
                plan=None,
                progress: Optional[Callable[[str], None]] = None,
                host_workers: Optional[int] = None,
                host_states: Optional[int] = None,
                ) -> Dict[str, Any]:
    """Closed-loop A/B: batch-1 serving vs dynamic batching.

    Serves the same workload twice over one repository (plan compiled
    once): a server capped at max-batch 1, then one batching up to
    ``max_batch``.  Returns a JSON-able report whose headline number is
    the modelled-hardware throughput win — on a single host core the
    per-sample numerics dominate wall time, but the device schedule
    shows what batching buys the actual hardware (launch/sync
    amortization + SIMT utilization recovery), which is the quantity a
    deployment cares about.  ``mechanism`` defaults to the GPU baseline
    because PIM offload is a batch-1 design point (paper Fig. 8): the
    PIMFlow plan's batching win is real but smaller, and serving it is
    the honest way to show that trade-off (see docs/serving.md).
    """
    say = progress or (lambda msg: None)
    if plan is None:
        from repro.models import build_model, normalize_model_name
        from repro.pimflow import Compiler, PimFlowConfig

        resolved = normalize_model_name(model)
        say(f"[bench-serve] compiling {resolved} [{mechanism}] ...")
        compiler = Compiler(PimFlowConfig(mechanism=mechanism))
        plan = compiler.build_plan(build_model(resolved), model_name=resolved)
    repo = ModelRepository()
    repo.register_plan(model, plan)

    say(f"[bench-serve] serving {model}: batch-1 baseline ...")
    base = _serve_once(repo, model, 1, clients, requests_per_client,
                       workers, max_wait_ms,
                       host_workers=host_workers, host_states=host_states)
    say(f"[bench-serve] serving {model}: dynamic batching "
        f"(max-batch {max_batch}) ...")
    dyn = _serve_once(repo, model, max_batch, clients, requests_per_client,
                      workers, max_wait_ms,
                      host_workers=host_workers, host_states=host_states)

    cost = repo.get(model).cost
    win = (dyn.device_rps / base.device_rps if base.device_rps else 0.0)
    return {
        "model": model,
        "mechanism": mechanism,
        "max_batch": max_batch,
        "clients": clients,
        "requests": clients * requests_per_client,
        "batch1": base.summary(),
        "dynamic": dyn.summary(),
        "device_win": round(win, 3),
        #: Steady-state modelled ceiling at exactly max_batch, for
        #: reference next to the measured mixed-batch number.
        "device_win_ceiling": round(cost.batching_win(max_batch), 3),
        "byte_identical": True,  # per-sample numerics; see test suite
    }
