"""Inference serving over compiled execution plans.

The serving layer sits above the runtime: a
:class:`~repro.serve.repository.ModelRepository` maps names to
compiled :class:`~repro.plan.artifact.ExecutionPlan` artifacts, an
:class:`~repro.serve.server.InferenceServer` coalesces single-sample
requests into micro-batches over a bounded admission queue, and a
:class:`~repro.serve.metrics.ServerMetrics` layer exposes request
counts, batch-size histograms, queue depth, and tail latencies as one
JSON-able snapshot.  See ``docs/serving.md``.
"""

from repro.serve.batching import BatchingQueue
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServerClosed,
    UnknownModel,
)
from repro.serve.loadgen import (
    LoadResult,
    bench_serve,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.pricing import BatchCostModel, batch_scaled_graph
from repro.serve.repository import LoadedModel, ModelRepository
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    PendingResult,
)
from repro.serve.server import InferenceServer, ServerConfig, serve_plans

__all__ = [
    "BatchCostModel",
    "BatchingQueue",
    "DeadlineExceeded",
    "InferenceRequest",
    "InferenceResponse",
    "InferenceServer",
    "LoadResult",
    "LoadedModel",
    "ModelRepository",
    "Overloaded",
    "PendingResult",
    "ServeError",
    "ServerClosed",
    "ServerConfig",
    "ServerMetrics",
    "UnknownModel",
    "batch_scaled_graph",
    "bench_serve",
    "run_closed_loop",
    "run_open_loop",
    "serve_plans",
]
