"""Runtime breakdown and arithmetic intensity (paper Fig. 1)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_depthwise, is_pim_candidate
from repro.gpu.device import GpuDevice
from repro.gpu.kernels import node_flops_bytes
from repro.search.profiler import extract_subgraph


def op_category(node: Node, graph: Graph) -> str:
    """Kernel category used by the Fig. 1 runtime breakdown."""
    if node.op_type == "Conv":
        in_shape = graph.tensors[node.inputs[0]].shape
        if is_depthwise(node, [in_shape]):
            return "dwconv"
        kh, kw = node.attr("kernel_shape")
        if kh == 1 and kw == 1 and int(node.attr("group", 1)) == 1:
            return "conv1x1"
        return "conv"
    if node.op_type in ("Gemm", "MatMul"):
        return "fc"
    return "other"


def runtime_breakdown(graph: Graph, gpu: GpuDevice) -> Dict[str, float]:
    """GPU time per kernel category, in microseconds."""
    result = gpu.run_graph(graph)
    breakdown: Dict[str, float] = {}
    for node in graph.nodes:
        cat = op_category(node, graph)
        breakdown[cat] = breakdown.get(cat, 0.0) + result.per_node[node.name].time_us
    return breakdown


def arithmetic_intensities(graph: Graph) -> List[Tuple[str, float]]:
    """MACs per DRAM byte for every convolution layer (Fig. 1 right)."""
    out: List[Tuple[str, float]] = []
    for node in graph.nodes:
        if node.op_type != "Conv":
            continue
        flops, dram_bytes = node_flops_bytes(node, graph)
        out.append((node.name, (flops / 2.0) / max(dram_bytes, 1.0)))
    return out


def conv_only_graph(graph: Graph) -> Graph:
    """Region graph containing only the PIM-candidate CONV layers.

    Used to report "execution time of all PIM-candidate CONV layers"
    (Fig. 9 top): the candidate convolutions execute back-to-back with
    their original shapes, inputs fed from region inputs.
    """
    names = []
    for node in graph.nodes:
        if node.op_type != "Conv":
            continue
        input_shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, input_shapes):
            names.append(node.name)
    if not names:
        raise ValueError("graph has no PIM-candidate convolutions")
    return extract_subgraph(graph, names)
