"""Text Gantt rendering of execution-engine schedules."""

from __future__ import annotations

from typing import List

from repro.runtime.engine import RunResult

DEVICE_MARKS = {"gpu": "#", "pim": "="}


def render_gantt(result: RunResult, width: int = 64,
                 devices: tuple = ("gpu", "pim")) -> List[str]:
    """Render a schedule as one text row per device.

    GPU kernels render as ``#``, PIM kernels as ``=``; elided nodes
    occupy no space.  The chart is proportional to the makespan.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    span = max(result.makespan_us, 1e-9)
    lines = []
    for device in devices:
        row = [" "] * width
        mark = DEVICE_MARKS.get(device, "*")
        for e in result.events:
            if e.device != device or e.duration_us <= 0:
                continue
            lo = int(e.start_us / span * (width - 1))
            hi = max(lo + 1, round(e.finish_us / span * (width - 1)))
            for i in range(lo, min(hi, width)):
                row[i] = mark
        busy = sum(e.duration_us for e in result.events if e.device == device)
        lines.append(f"{device.upper():4s} |{''.join(row)}| "
                     f"{busy:8.1f} us busy")
    return lines


def utilization(result: RunResult) -> dict:
    """Busy fraction per device over the makespan."""
    span = max(result.makespan_us, 1e-9)
    return {
        "gpu": result.gpu_busy_us / span,
        "pim": result.pim_busy_us / span,
        "overlap": result.overlap_us / span,
    }
