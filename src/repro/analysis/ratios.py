"""MD-DP split-ratio distribution (paper Table 2)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.graph.graph import Graph
from repro.graph.ops import is_pim_candidate
from repro.search.solver import Decision


def candidate_layer_names(graph: Graph) -> Set[str]:
    """Names of all PIM-candidate nodes in a graph."""
    names: Set[str] = set()
    for node in graph.nodes:
        input_shapes = [graph.tensors[t].shape for t in node.inputs]
        if is_pim_candidate(node, input_shapes):
            names.add(node.name)
    return names


def mddp_ratio_distribution(decisions: Iterable[Decision],
                            candidates: Optional[Set[str]] = None,
                            step: float = 0.1) -> Dict[int, float]:
    """Fraction of PIM-candidate layers per GPU-split-ratio bucket.

    Buckets are percentage points (0, 10, ..., 100): 0 means total PIM
    offload and 100 means the candidate stayed fully on the GPU,
    matching Table 2's axis.  ``candidates`` restricts which
    ``gpu``-mode decisions count toward the 100 bucket (non-candidate
    ops are not part of the paper's distribution); pipeline decisions
    are excluded, as in the paper.
    """
    buckets = {int(round(i * step * 100)): 0
               for i in range(int(round(1 / step)) + 1)}
    total = 0
    for d in decisions:
        if d.mode == "split":
            bucket = int(round((d.ratio_gpu or 0.0) * 100))
            buckets[bucket] = buckets.get(bucket, 0) + 1
            total += 1
        elif d.mode == "gpu" and candidates is not None:
            for name in d.nodes:
                if name in candidates:
                    buckets[100] += 1
                    total += 1
    if total == 0:
        return {k: 0.0 for k in buckets}
    return {k: v / total for k, v in sorted(buckets.items())}
