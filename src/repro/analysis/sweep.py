"""Design-space sweep helpers (artifact Appendix A.7).

Library-level versions of the sweeps the benchmarks and examples run:
mechanism comparisons and hardware-knob sweeps, each returning plain
dicts ready for tabulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.graph.graph import Graph
from repro.memsys.system import MemorySystem
from repro.pimflow import PimFlow, PimFlowConfig


def mechanism_comparison(graph: Graph,
                         mechanisms: Sequence[str] = ("gpu", "newton+",
                                                      "newton++",
                                                      "pimflow-md",
                                                      "pimflow-pl",
                                                      "pimflow"),
                         base_config: Optional[PimFlowConfig] = None,
                         ) -> Dict[str, Dict[str, float]]:
    """Makespan/energy of ``graph`` under each offloading mechanism.

    Returns ``{mechanism: {"time_us", "energy_mj", "speedup"}}`` with
    speedups normalized to the first mechanism listed.
    """
    from dataclasses import replace

    base = base_config or PimFlowConfig()
    rows: Dict[str, Dict[str, float]] = {}
    reference = None
    for mechanism in mechanisms:
        flow = PimFlow(replace(base, mechanism=mechanism))
        result = flow.run(graph)
        if reference is None:
            reference = result.makespan_us
        rows[mechanism] = {
            "time_us": result.makespan_us,
            "energy_mj": result.energy.total_mj,
            "speedup": reference / result.makespan_us,
        }
    return rows


def channel_split_sweep(graph: Graph, pim_channels: Iterable[int],
                        mechanism: str = "pimflow",
                        total_channels: int = 32) -> Dict[int, float]:
    """Speedup vs. the all-channel GPU baseline per PIM-channel count.

    The Fig. 13 sweep as a reusable helper.
    """
    baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(graph).makespan_us
    out: Dict[int, float] = {}
    for pc in pim_channels:
        cfg = PimFlowConfig(mechanism=mechanism,
                            memory=MemorySystem(total_channels, pc))
        out[pc] = baseline / PimFlow(cfg).run(graph).makespan_us
    return out


def stage_count_sweep(graph: Graph, stage_counts: Iterable[int],
                      mechanism: str = "pimflow") -> Dict[int, float]:
    """End-to-end time per configured pipeline stage count (Fig. 15)."""
    out: Dict[int, float] = {}
    for stages in stage_counts:
        cfg = PimFlowConfig(mechanism=mechanism, pipeline_stages=stages)
        out[stages] = PimFlow(cfg).run(graph).makespan_us
    return out
