"""Structured compilation reports.

Summarizes a compiled model — decisions, per-region times, device
placement, energy — as a JSON-compatible dict and a human-readable
text block.  This is the library-level equivalent of the artifact's
result-plotting scripts.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.pimflow import CompiledModel
from repro.runtime.engine import RunResult


def compilation_report(compiled: CompiledModel,
                       result: RunResult) -> Dict:
    """JSON-compatible summary of a compiled model and its run."""
    modes = Counter(d.mode for d in compiled.decisions)
    splits = [d for d in compiled.decisions if d.mode == "split"]
    full_offloads = sum(1 for d in splits if d.ratio_gpu == 0.0)
    regions = [
        {
            "nodes": list(d.nodes),
            "mode": d.mode,
            "ratio_gpu": d.ratio_gpu,
            "stages": d.stages if d.mode == "pipeline" else None,
            "measured_us": d.time_us,
        }
        for d in compiled.decisions
    ]
    return {
        "predicted_time_us": compiled.predicted_time_us,
        "makespan_us": result.makespan_us,
        "gpu_busy_us": result.gpu_busy_us,
        "pim_busy_us": result.pim_busy_us,
        "overlap_us": result.overlap_us,
        "energy": result.energy.as_dict(),
        "decision_counts": {
            "gpu": modes.get("gpu", 0),
            "split": len(splits) - full_offloads,
            "full_offload": full_offloads,
            "pipeline": modes.get("pipeline", 0),
        },
        "regions": regions,
    }


def format_report(report: Dict, max_regions: int = 12) -> List[str]:
    """Render a report dict as text lines."""
    counts = report["decision_counts"]
    lines = [
        f"predicted {report['predicted_time_us']:.1f} us, "
        f"scheduled {report['makespan_us']:.1f} us "
        f"(gpu {report['gpu_busy_us']:.1f} / pim {report['pim_busy_us']:.1f} "
        f"/ overlap {report['overlap_us']:.1f})",
        f"energy {report['energy']['total_mj']:.2f} mJ",
        f"decisions: {counts['gpu']} gpu, {counts['split']} splits, "
        f"{counts['full_offload']} full offloads, "
        f"{counts['pipeline']} pipelines",
    ]
    shown = 0
    for region in report["regions"]:
        if region["mode"] == "gpu":
            continue
        if shown >= max_regions:
            lines.append("  ...")
            break
        label = region["mode"]
        if region["mode"] == "split":
            label += (" 0/100 (full PIM)" if region["ratio_gpu"] == 0.0 else
                      f" {int(region['ratio_gpu'] * 100)}/"
                      f"{int((1 - region['ratio_gpu']) * 100)}")
        lines.append(f"  {region['nodes'][0]:30s} {label} "
                     f"({region['measured_us']:.1f} us)")
        shown += 1
    return lines
