"""Analysis helpers behind the paper's descriptive figures."""

from repro.analysis.breakdown import (
    runtime_breakdown,
    arithmetic_intensities,
    conv_only_graph,
    op_category,
)
from repro.analysis.ratios import mddp_ratio_distribution, candidate_layer_names
from repro.analysis.gantt import render_gantt, utilization
from repro.analysis.report import compilation_report, format_report
from repro.analysis.sweep import (
    channel_split_sweep,
    mechanism_comparison,
    stage_count_sweep,
)

__all__ = [
    "runtime_breakdown",
    "arithmetic_intensities",
    "conv_only_graph",
    "op_category",
    "mddp_ratio_distribution",
    "candidate_layer_names",
    "render_gantt",
    "utilization",
    "compilation_report",
    "format_report",
    "channel_split_sweep",
    "mechanism_comparison",
    "stage_count_sweep",
]
