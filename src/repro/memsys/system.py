"""Channel grouping of the PIM-enabled GPU memory (paper Section 4.1).

A single 32-channel GDDR6 memory serves as both GPU memory and PIM
device: a contiguous subset of channels is PIM-enabled, the rest remain
regular load/store channels for GPU kernels.  The split trades GPU
bandwidth against PIM compute power; Fig. 13 sweeps it and lands on
16/16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.pim.config import PimConfig


@dataclass(frozen=True)
class MemorySystem:
    """A channel split of the shared GPU/PIM memory."""

    total_channels: int = 32
    pim_channels: int = 16

    def __post_init__(self) -> None:
        if not 0 <= self.pim_channels <= self.total_channels:
            raise ValueError(
                f"pim_channels must be in [0, {self.total_channels}], "
                f"got {self.pim_channels}")

    @property
    def gpu_channels(self) -> int:
        """Channels left for regular GPU traffic."""
        return self.total_channels - self.pim_channels

    def gpu_config(self, base: GpuConfig) -> GpuConfig:
        """GPU config restricted to the non-PIM channels."""
        if self.gpu_channels == 0:
            raise ValueError("cannot run GPU kernels with zero memory channels")
        return base.with_channels(self.gpu_channels)

    def pim_config(self, base: PimConfig) -> PimConfig:
        """PIM config over the PIM-enabled channels."""
        if self.pim_channels == 0:
            raise ValueError("no PIM-enabled channels in this configuration")
        return base.with_channels(self.pim_channels)

    def with_pim_channels(self, pim_channels: int) -> "MemorySystem":
        return MemorySystem(self.total_channels, pim_channels)
