"""Inter-channel data movement over the memory network.

GPU and PIM channels are connected by a direct memory interconnect
(paper Section 4.1, following the memory-network design of [33]); the
PIM command model already charges GWRITE/READRES transfers, so this
helper only prices bulk moves that bypass the command path (e.g. data
returned to the host, Fig. 4 steps 3-4) and the per-edge sync cost the
execution engine applies at device boundaries.
"""

from __future__ import annotations

#: Aggregate interconnect bandwidth between the channel groups, in
#: bytes per microsecond (256 GB/s crossbar).
INTERCONNECT_BYTES_PER_US = 256e3

#: Fixed cost of initiating a transfer between channel groups.
TRANSFER_LATENCY_US = 0.2


def transfer_time_us(num_bytes: float,
                     bandwidth_bytes_per_us: float = INTERCONNECT_BYTES_PER_US) -> float:
    """Latency of moving ``num_bytes`` between GPU and PIM channels."""
    if num_bytes <= 0:
        return 0.0
    return TRANSFER_LATENCY_US + num_bytes / bandwidth_bytes_per_us
