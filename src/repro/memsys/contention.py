"""Memory-controller contention between GPU and PIM command streams.

While a PIM channel reads activation data from GPU channels, the shared
controller cannot accept GPU memory commands (paper Section 7).  The
paper measures the resulting slowdown by interleaving Accel-Sim memory
commands with PIM command sequences and reports 0.15-0.22%; we model
the same effect as the fraction of the run during which the controller
is occupied by PIM-side I/O, scaled by the probability that a GPU
command arrives in that window.
"""

from __future__ import annotations

#: Fraction of PIM I/O occupancy that actually blocks a GPU command
#: (most GPU requests hit other banks/queues).
BLOCKING_PROBABILITY = 0.02


def controller_contention_slowdown(pim_io_bytes: float, window_us: float,
                                   io_bytes_per_us: float = 32e3) -> float:
    """Multiplicative GPU slowdown from sharing the controller.

    ``pim_io_bytes`` is the PIM-side GWRITE/READRES traffic during a
    window of ``window_us``; ``io_bytes_per_us`` the per-channel I/O
    rate.  Returns a factor >= 1.0.
    """
    if window_us <= 0 or pim_io_bytes <= 0:
        return 1.0
    occupancy = min(1.0, (pim_io_bytes / io_bytes_per_us) / window_us)
    return 1.0 + BLOCKING_PROBABILITY * occupancy
