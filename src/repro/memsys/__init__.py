"""PIM-enabled GPU memory: channel grouping, movement, contention."""

from repro.memsys.system import MemorySystem
from repro.memsys.movement import transfer_time_us
from repro.memsys.contention import controller_contention_slowdown

__all__ = ["MemorySystem", "transfer_time_us", "controller_contention_slowdown"]
