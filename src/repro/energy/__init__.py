"""Energy accounting shared by the GPU and PIM simulators."""

from repro.energy.constants import GpuEnergyModel, PimEnergyModel
from repro.energy.accumulator import EnergyBreakdown

__all__ = ["GpuEnergyModel", "PimEnergyModel", "EnergyBreakdown"]
