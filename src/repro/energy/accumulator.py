"""Mutable energy breakdown accumulated over a model run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class EnergyBreakdown:
    """Per-component energy totals (millijoules) for one inference."""

    gpu_dynamic_mj: float = 0.0
    gpu_static_mj: float = 0.0
    pim_dynamic_mj: float = 0.0
    pim_static_mj: float = 0.0
    movement_mj: float = 0.0

    @property
    def total_mj(self) -> float:
        return (self.gpu_dynamic_mj + self.gpu_static_mj + self.pim_dynamic_mj
                + self.pim_static_mj + self.movement_mj)

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.gpu_dynamic_mj += other.gpu_dynamic_mj
        self.gpu_static_mj += other.gpu_static_mj
        self.pim_dynamic_mj += other.pim_dynamic_mj
        self.pim_static_mj += other.pim_static_mj
        self.movement_mj += other.movement_mj

    def as_dict(self) -> Dict[str, float]:
        return {
            "gpu_dynamic_mj": self.gpu_dynamic_mj,
            "gpu_static_mj": self.gpu_static_mj,
            "pim_dynamic_mj": self.pim_dynamic_mj,
            "pim_static_mj": self.pim_static_mj,
            "movement_mj": self.movement_mj,
            "total_mj": self.total_mj,
        }
