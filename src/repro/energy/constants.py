"""Energy-model constants.

The paper measures GPU energy with AccelWattch and PIM energy with
CACTI 7 using parameters adapted from Spafford et al.  Neither tool is
available here, so we use event-based models with constants drawn from
the public literature for Turing-class GPUs and GDDR6 DRAM:

* GPU fp16 MAC datapath + register/operand delivery: ~1.5 pJ/FLOP.
* GDDR6 interface + array access: ~16 pJ/byte.
* GPU static (leakage + constant) power: ~55 W for an RTX-2060 class
  die.
* DRAM row activation: ~2 nJ per multi-bank G_ACT (GDDR6 2 KB rows).
* PIM MAC after BLSA including buffer operand read: ~0.5 pJ/FLOP — the
  fixed-function reduction tree is far cheaper than the GPU datapath,
  the key driver of Fig. 12.
* Global buffer fill: ~0.8 pJ/byte (CACTI-class 4 KB SRAM write).
* Inter-channel I/O: ~8 pJ/byte over the memory network.

Only *relative* energy across offloading mechanisms matters for the
reproduction; these constants put PIMFlow's savings in the paper's
reported range (18-26% vs. the GPU baseline).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuEnergyModel:
    """Event-energy model for GPU kernels (AccelWattch substitute)."""

    pj_per_flop: float = 1.5
    pj_per_dram_byte: float = 16.0
    static_watts: float = 55.0

    def dynamic_mj(self, flops: float, dram_bytes: float) -> float:
        """Dynamic energy of one kernel in millijoules."""
        return (self.pj_per_flop * flops + self.pj_per_dram_byte * dram_bytes) * 1e-9

    def static_mj(self, time_us: float) -> float:
        """Static energy over a time window in millijoules."""
        return self.static_watts * time_us * 1e-3

    def kernel_energy_mj(self, flops: float, dram_bytes: float, time_us: float) -> float:
        """Total (dynamic + static) energy of one kernel."""
        return self.dynamic_mj(flops, dram_bytes) + self.static_mj(time_us)


@dataclass(frozen=True)
class PimEnergyModel:
    """Event-energy model for DRAM-PIM commands (CACTI substitute)."""

    nj_per_activation: float = 2.0
    pj_per_mac: float = 0.5
    pj_per_buffer_byte: float = 0.8
    pj_per_io_byte: float = 8.0     # inter-channel data movement
    static_watts_per_channel: float = 0.25

    def dynamic_mj(self, activations: int, macs: float, buffer_bytes: float,
                   io_bytes: float) -> float:
        """Dynamic energy of one PIM kernel in millijoules."""
        pj = (self.nj_per_activation * 1e3 * activations
              + self.pj_per_mac * macs
              + self.pj_per_buffer_byte * buffer_bytes
              + self.pj_per_io_byte * io_bytes)
        return pj * 1e-9

    def static_mj(self, time_us: float, channels: int) -> float:
        """Static energy of the PIM channels over a time window."""
        return self.static_watts_per_channel * channels * time_us * 1e-3

    def trace_energy_mj(self, activations: int, macs: float, buffer_bytes: float,
                        io_bytes: float, time_us: float, channels: int) -> float:
        """Total (dynamic + static) energy of one PIM command trace."""
        return (self.dynamic_mj(activations, macs, buffer_bytes, io_bytes)
                + self.static_mj(time_us, channels))
