"""Apply solver decisions to a model graph.

Routes through the pass manager: decision application and the
memory-layout optimizer run as the registered ``apply_decisions`` and
``optimize_memory`` passes (the :data:`repro.transform.passes.APPLY`
pipeline), so every invocation is instrumented and — under
``--verify-passes`` — structurally and numerically verified.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.graph import Graph
from repro.search.solver import Decision
from repro.transform.passes import APPLY, PassContext, PassManager


def apply_decisions(graph: Graph, decisions: Sequence[Decision],
                    manager: Optional[PassManager] = None,
                    ctx: Optional[PassContext] = None) -> Graph:
    """Transform ``graph`` according to the solver's decisions.

    Decisions cover disjoint node regions, so they are applied
    sequentially; names of untouched nodes are stable across passes.
    The memory-layout optimizer runs last so every Slice/Concat the
    transformations introduced is elision-checked.

    Pass an existing ``manager`` (e.g. the compiler's) to accumulate
    the per-pass instrumentation records alongside the front-end
    passes; by default a throwaway un-instrumented manager is used.
    """
    manager = manager or PassManager()
    ctx = ctx or PassContext()
    ctx.options["decisions"] = list(decisions)
    return manager.run(APPLY, graph, ctx)
