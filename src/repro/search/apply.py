"""Apply solver decisions to a model graph."""

from __future__ import annotations

from typing import Sequence

from repro.graph.graph import Graph
from repro.search.solver import Decision
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp


def apply_decisions(graph: Graph, decisions: Sequence[Decision]) -> Graph:
    """Transform ``graph`` according to the solver's decisions.

    Decisions cover disjoint node regions, so they are applied
    sequentially; names of untouched nodes are stable across passes.
    The memory-layout optimizer runs last so every Slice/Concat the
    transformations introduced is elision-checked.
    """
    g = graph
    for d in decisions:
        if d.mode == "gpu":
            g = g.clone()
            for name in d.nodes:
                g.node(name).device = "gpu"
        elif d.mode == "split":
            assert len(d.nodes) == 1, "split decisions cover exactly one node"
            g = apply_mddp(g, d.nodes[0], d.ratio_gpu)
        elif d.mode == "pipeline":
            g = pipeline_chain(g, list(d.nodes), num_stages=d.stages)
        else:
            raise ValueError(f"unknown decision mode {d.mode!r}")
    return optimize_memory(g)
