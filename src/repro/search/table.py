"""Measurement table ``T`` of Algorithm 1, with on-disk persistence.

The search phase runs once per model prior to compilation; results are
stored as a metadata log (JSON) so later compilations can skip straight
to the solve step, mirroring the artifact workflow.  Each entry may
carry the content fingerprint of the profile-cache slot it came from
(see :mod:`repro.plan.fingerprint`), which records provenance and lets
tools trace a measurement back to its cache entry.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RegionMeasurement:
    """One measured execution option for a region of the graph.

    ``start`` is the first node of the region in topological order and
    ``span`` the number of consecutive nodes covered.  ``mode`` is one
    of ``"gpu"`` (no transformation), ``"split"`` (MD-DP at
    ``ratio_gpu``; 0.0 means full PIM offload), or ``"pipeline"``
    (chain pipelined with ``stages`` stages).  ``fingerprint``, when
    set, is the content-addressed profile-cache key this measurement
    was stored under.
    """

    start: str
    span: int
    mode: str
    time_us: float
    ratio_gpu: Optional[float] = None
    chain: Tuple[str, ...] = ()
    stages: int = 2
    fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("gpu", "split", "pipeline"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode == "split" and self.ratio_gpu is None:
            raise ValueError("split measurements need a ratio_gpu")
        if self.mode == "pipeline" and len(self.chain) != self.span:
            raise ValueError("pipeline measurements need chain == span nodes")

    @property
    def identity(self) -> Tuple:
        """What the measurement is *of* — everything but the time.

        Two measurements with equal identity are duplicate samples of
        the same execution option; only the better one matters.
        """
        return (self.start, self.span, self.mode, self.ratio_gpu,
                self.chain, self.stages)

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "span": self.span,
            "mode": self.mode,
            "time_us": self.time_us,
            "ratio_gpu": self.ratio_gpu,
            "chain": list(self.chain),
            "stages": self.stages,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionMeasurement":
        return cls(
            start=data["start"], span=data["span"], mode=data["mode"],
            time_us=data["time_us"], ratio_gpu=data.get("ratio_gpu"),
            chain=tuple(data.get("chain", ())), stages=data.get("stages", 2),
            fingerprint=data.get("fingerprint"))


class MeasurementTable:
    """All measured options, indexed by (start node, span)."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], List[RegionMeasurement]] = {}

    def add(self, measurement: RegionMeasurement) -> None:
        key = (measurement.start, measurement.span)
        self._entries.setdefault(key, []).append(measurement)

    def options(self, start: str, span: int) -> List[RegionMeasurement]:
        """All measurements for a region, best first."""
        return sorted(self._entries.get((start, span), []),
                      key=lambda m: m.time_us)

    def best(self, start: str, span: int) -> Optional[RegionMeasurement]:
        opts = self.options(start, span)
        return opts[0] if opts else None

    def spans_at(self, start: str) -> List[int]:
        """Region lengths measured from ``start``."""
        return sorted(span for (s, span) in self._entries if s == start)

    def all_measurements(self) -> List[RegionMeasurement]:
        """Every measurement, in insertion order per region."""
        return [m for group in self._entries.values() for m in group]

    def merge(self, other: "MeasurementTable") -> None:
        """Absorb another table's measurements.

        Duplicate samples of the same execution option — same (start,
        span, mode, ratio, chain, stages) — collapse to the
        lower-latency one instead of piling up; collisions are logged
        (at warning level when the two timings disagree materially,
        e.g. profiles taken under different simulator versions).
        """
        for m in other.all_measurements():
            self._add_preferring_better(m)

    def _add_preferring_better(self, measurement: RegionMeasurement) -> None:
        key = (measurement.start, measurement.span)
        group = self._entries.setdefault(key, [])
        for i, existing in enumerate(group):
            if existing.identity != measurement.identity:
                continue
            keep, drop = ((measurement, existing)
                          if measurement.time_us < existing.time_us
                          else (existing, measurement))
            level = (logging.WARNING
                     if abs(existing.time_us - measurement.time_us)
                     > 1e-9 * max(abs(existing.time_us), 1.0)
                     else logging.DEBUG)
            logger.log(
                level,
                "duplicate measurement for %s span=%d mode=%s: keeping "
                "%.3f us, dropping %.3f us",
                measurement.start, measurement.span, measurement.mode,
                keep.time_us, drop.time_us)
            group[i] = keep
            return
        group.append(measurement)

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    # ------------------------------------------------------------------
    # Persistence (the paper's metadata log file)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"entries": [m.to_dict() for m in self.all_measurements()]}

    @classmethod
    def from_dict(cls, data: dict) -> "MeasurementTable":
        table = cls()
        for e in data["entries"]:
            table.add(RegionMeasurement.from_dict(e))
        return table

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MeasurementTable":
        return cls.from_dict(json.loads(Path(path).read_text()))
