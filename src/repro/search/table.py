"""Measurement table ``T`` of Algorithm 1, with on-disk persistence.

The search phase runs once per model prior to compilation; results are
stored as a metadata log (JSON) so later compilations can skip straight
to the solve step, mirroring the artifact workflow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class RegionMeasurement:
    """One measured execution option for a region of the graph.

    ``start`` is the first node of the region in topological order and
    ``span`` the number of consecutive nodes covered.  ``mode`` is one
    of ``"gpu"`` (no transformation), ``"split"`` (MD-DP at
    ``ratio_gpu``; 0.0 means full PIM offload), or ``"pipeline"``
    (chain pipelined with ``stages`` stages).
    """

    start: str
    span: int
    mode: str
    time_us: float
    ratio_gpu: Optional[float] = None
    chain: Tuple[str, ...] = ()
    stages: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ("gpu", "split", "pipeline"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode == "split" and self.ratio_gpu is None:
            raise ValueError("split measurements need a ratio_gpu")
        if self.mode == "pipeline" and len(self.chain) != self.span:
            raise ValueError("pipeline measurements need chain == span nodes")


class MeasurementTable:
    """All measured options, indexed by (start node, span)."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], List[RegionMeasurement]] = {}

    def add(self, measurement: RegionMeasurement) -> None:
        key = (measurement.start, measurement.span)
        self._entries.setdefault(key, []).append(measurement)

    def options(self, start: str, span: int) -> List[RegionMeasurement]:
        """All measurements for a region, best first."""
        return sorted(self._entries.get((start, span), []),
                      key=lambda m: m.time_us)

    def best(self, start: str, span: int) -> Optional[RegionMeasurement]:
        opts = self.options(start, span)
        return opts[0] if opts else None

    def spans_at(self, start: str) -> List[int]:
        """Region lengths measured from ``start``."""
        return sorted(span for (s, span) in self._entries if s == start)

    def all_measurements(self) -> List[RegionMeasurement]:
        """Every measurement, in insertion order per region."""
        return [m for group in self._entries.values() for m in group]

    def merge(self, other: "MeasurementTable") -> None:
        """Absorb another table's measurements."""
        for m in other.all_measurements():
            self.add(m)

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    # ------------------------------------------------------------------
    # Persistence (the paper's metadata log file)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "entries": [
                {
                    "start": m.start,
                    "span": m.span,
                    "mode": m.mode,
                    "time_us": m.time_us,
                    "ratio_gpu": m.ratio_gpu,
                    "chain": list(m.chain),
                    "stages": m.stages,
                }
                for group in self._entries.values()
                for m in group
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MeasurementTable":
        table = cls()
        for e in data["entries"]:
            table.add(RegionMeasurement(
                start=e["start"], span=e["span"], mode=e["mode"],
                time_us=e["time_us"], ratio_gpu=e.get("ratio_gpu"),
                chain=tuple(e.get("chain", ())), stages=e.get("stages", 2)))
        return table

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MeasurementTable":
        return cls.from_dict(json.loads(Path(path).read_text()))
