"""Execution mode and task size search (paper Section 4.2.2, Algorithm 1).

Profiles every PIM-candidate layer at the configured split ratios and
every pipelining candidate subgraph on the simulators, records the
measurements in a table, and solves for the optimal per-node execution
mode with dynamic programming.
"""

from repro.search.profiler import (
    RegionProfiler,
    extract_subgraph,
    profile_pipeline,
    profile_split,
)
from repro.search.table import MeasurementTable, RegionMeasurement
from repro.search.solver import Decision, solve
from repro.search.apply import apply_decisions
from repro.search.refine import refine_decisions

__all__ = [
    "RegionProfiler",
    "extract_subgraph",
    "profile_split",
    "profile_pipeline",
    "MeasurementTable",
    "RegionMeasurement",
    "Decision",
    "solve",
    "apply_decisions",
    "refine_decisions",
]
