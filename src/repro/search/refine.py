"""Makespan-aware refinement of solver decisions (paper Section 9).

Algorithm 1 assumes region times compose additively, which ignores
cross-region device overlap in the final schedule.  The paper leaves
"an auto-tuning approach to our execution mode and task size search"
as future work; this module implements a simple variant: hill-climbing
over the per-node split ratios, evaluating every candidate by running
the *whole transformed model* through the execution engine and keeping
changes that reduce the true makespan.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.graph import Graph
from repro.runtime.engine import ExecutionEngine
from repro.search.apply import apply_decisions
from repro.search.solver import Decision


def _with_ratio(decisions: Sequence[Decision], index: int,
                ratio: float) -> List[Decision]:
    out = list(decisions)
    d = out[index]
    if ratio <= 0.0:
        ratio = 0.0
    if ratio >= 1.0:
        ratio = 1.0
    out[index] = Decision(nodes=d.nodes, mode="split", time_us=d.time_us,
                          ratio_gpu=round(ratio, 4), stages=d.stages)
    return out


def refine_decisions(graph: Graph, decisions: Sequence[Decision],
                     engine: ExecutionEngine, step: float = 0.1,
                     rounds: int = 2) -> Tuple[List[Decision], float]:
    """Hill-climb split ratios against the true engine makespan.

    Returns the refined decisions and the final makespan.  Each round
    perturbs every split decision by ±``step`` and keeps improvements;
    stops early when a round changes nothing.  Non-split decisions are
    left untouched — their structure came from the DP and re-deriving
    it is the DP's job.
    """
    current = list(decisions)
    best_time = engine.run(apply_decisions(graph, current)).makespan_us

    for _ in range(rounds):
        improved = False
        for i, d in enumerate(current):
            if d.mode != "split" or d.ratio_gpu is None:
                continue
            for delta in (-step, step):
                ratio = d.ratio_gpu + delta
                if not 0.0 <= ratio <= 1.0:
                    continue
                candidate = _with_ratio(current, i, ratio)
                time_us = engine.run(
                    apply_decisions(graph, candidate)).makespan_us
                if time_us < best_time - 1e-9:
                    best_time = time_us
                    current = candidate
                    d = current[i]
                    improved = True
        if not improved:
            break
    return current, best_time
