"""Hardware-measurement-based profiling of execution modes.

For each PIM-candidate layer, the profiler extracts the layer into an
isolated region graph, applies the MD-DP transformation at each split
ratio (the original graph serves for the 0/100 and 100/0 samples, as in
the paper), runs the memory-layout optimizer, and measures the region
makespan on the simulators.  Pipelining candidates are measured the
same way on their extracted chains.

Profiling is embarrassingly parallel — every region measurement is
independent — so :class:`RegionProfiler` supports two execution paths
with identical results:

* ``jobs=1`` (default): the historical serial loop — extract, check
  the cache, measure inline, store.
* ``jobs>1``: enumerate all requests, consult the
  :class:`~repro.plan.cache.ProfileCache` up front, deduplicate misses
  by content fingerprint, fan the unique misses out through a
  :class:`~repro.exec.engine.JobEngine`, and merge results back in
  canonical request order.  The parent process is the cache's single
  writer; workers never touch it.  Jobs that crash or time out are
  recorded on :attr:`RegionProfiler.failed_jobs` and yield empty
  measurement lists — a dead worker never aborts the search.

Determinism guarantee: the simulators are deterministic functions of
the region structure, so serial and parallel profiling produce
byte-identical measurement tables (the test suite asserts this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.engine import JobEngine, resolve_worker_count
from repro.exec.job import JobResult, JobSpec
from repro.exec.progress import ProgressReporter
from repro.graph.graph import Graph
from repro.graph.serialize import graph_to_dict
from repro.plan.cache import ProfileCache
from repro.plan.fingerprint import region_fingerprint
from repro.runtime.engine import ExecutionEngine
from repro.search.table import RegionMeasurement
from repro.transform.base import TransformError
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp


def extract_subgraph(graph: Graph, node_names: Sequence[str]) -> Graph:
    """Isolate ``node_names`` into a standalone region graph.

    Tensors consumed from outside the region become graph inputs;
    initializers are carried over; tensors produced in the region and
    consumed outside (or that are graph outputs) become outputs.
    """
    wanted = set(node_names)
    region = Graph(f"{graph.name}__region")
    produced = set()
    for node in graph.toposort():
        if node.name not in wanted:
            continue
        for t in node.inputs:
            if t in graph.initializers:
                if t not in region.tensors:
                    region.add_initializer(t, graph.initializers[t],
                                           graph.tensors[t].dtype)
            elif t not in produced and t not in region.inputs:
                region.add_tensor(graph.tensors[t])
                region.inputs.append(t)
        for t in node.outputs:
            region.add_tensor(graph.tensors[t])
            produced.add(t)
        region.add_node(node.clone())
    if len(region.nodes) != len(wanted):
        missing = wanted - {n.name for n in region.nodes}
        raise KeyError(f"nodes not found in graph: {sorted(missing)}")
    # One tensor->consumers index for the whole graph instead of an
    # O(graph_nodes) scan per region output tensor.
    outside_consumers: Dict[str, bool] = {}
    for consumer in graph.nodes:
        if consumer.name in wanted:
            continue
        for t in consumer.inputs:
            outside_consumers[t] = True
    for node in region.nodes:
        for t in node.outputs:
            if outside_consumers.get(t, False) or t in graph.outputs:
                region.outputs.append(t)
    if not region.outputs:
        region.outputs.append(region.nodes[-1].outputs[0])
    region.touch()
    return region


def profile_split(graph: Graph, node_name: str, engine: ExecutionEngine,
                  ratios: Iterable[float]) -> Dict[float, float]:
    """Region makespan (us) of ``node_name`` at each GPU split ratio."""
    region = extract_subgraph(graph, [node_name])
    results: Dict[float, float] = {}
    for ratio in ratios:
        try:
            transformed = optimize_memory(apply_mddp(region, node_name, ratio))
        except TransformError:
            # Interior ratio not realizable for this layer (e.g. halo
            # consumes a piece, or non-constant FC weights); the 0/100
            # and 100/0 samples always succeed.
            continue
        results[ratio] = engine.run(transformed).makespan_us
    return results


def profile_pipeline(graph: Graph, chain: Sequence[str], engine: ExecutionEngine,
                     num_stages: int = 2) -> Optional[float]:
    """Region makespan (us) of a pipelined chain, or None if unsplittable."""
    region = extract_subgraph(graph, chain)
    try:
        transformed = optimize_memory(
            pipeline_chain(region, chain, num_stages=num_stages))
    except TransformError:
        return None
    return engine.run(transformed).makespan_us


def profile_gpu(graph: Graph, node_names: Sequence[str],
                engine: ExecutionEngine) -> float:
    """Region makespan of nodes executed GPU-only (no transformation)."""
    region = extract_subgraph(graph, node_names)
    for node in region.nodes:
        node.device = "gpu"
    return engine.run(region).makespan_us


def measure_region(region: Graph, kind: str, target: Sequence[str],
                   engine: ExecutionEngine, ratios: Sequence[float] = (),
                   stages: int = 2,
                   fingerprint: Optional[str] = None) -> List[RegionMeasurement]:
    """Measure one extracted region — the single code path shared by the
    serial profiler and the job-engine workers, so parallel profiling
    cannot diverge from serial profiling."""
    if kind == "split":
        name = target[0]
        measurements: List[RegionMeasurement] = []
        for ratio, time_us in sorted(
                profile_split(region, name, engine,
                              sorted(set(ratios))).items()):
            if ratio >= 1.0:
                measurements.append(RegionMeasurement(
                    name, 1, "gpu", time_us, fingerprint=fingerprint))
            else:
                measurements.append(RegionMeasurement(
                    name, 1, "split", time_us, ratio_gpu=ratio,
                    fingerprint=fingerprint))
        return measurements
    if kind == "gpu":
        for node in region.nodes:
            node.device = "gpu"
        time_us = engine.run(region).makespan_us
        return [RegionMeasurement(target[0], 1, "gpu", time_us,
                                  fingerprint=fingerprint)]
    if kind == "pipeline":
        time_us = profile_pipeline(region, list(target), engine,
                                   num_stages=stages)
        if time_us is None:
            return []
        return [RegionMeasurement(
            target[0], len(target), "pipeline", time_us,
            chain=tuple(target), stages=stages, fingerprint=fingerprint)]
    raise ValueError(f"unknown profiling kind {kind!r}")


@dataclass(frozen=True)
class ProfileRequest:
    """One region the search wants measured.

    ``kind`` selects the pass (``"split"``, ``"gpu"``, ``"pipeline"``),
    ``nodes`` the target node (single-element tuple) or chain, and
    ``ratios``/``stages`` the pass knobs.
    """

    kind: str
    nodes: Tuple[str, ...]
    ratios: Tuple[float, ...] = ()
    stages: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("split", "gpu", "pipeline"):
            raise ValueError(f"unknown profiling kind {self.kind!r}")
        if not self.nodes:
            raise ValueError("a profile request needs at least one node")


class RegionProfiler:
    """Measures regions with optional content-addressed caching.

    Each profiled region is fingerprinted structurally (canonical
    names, so two identical layers of a model share one cache slot) and
    looked up under the toolchain's configuration fingerprint before
    any simulator runs.  On a hit, the stored measurements are rebound
    to the current node names; on a miss, the simulators run and the
    result — including the *negative* result of an unsplittable
    pipeline chain — is stored for every later profile of the same
    structure.

    With ``jobs > 1`` the batch entry point
    (:meth:`profile_requests`) fans cache misses out over worker
    processes; see the module docstring for the execution model.
    ``engine_spec`` (default: ``engine.to_spec()``) tells workers how
    to rebuild the engine; ``worker_fn`` exists for fault-injection
    tests.  Simulator invocations performed by workers are credited to
    ``engine.run_count`` when results merge, so the engine's accounting
    is mode-independent.
    """

    def __init__(self, engine: ExecutionEngine,
                 cache: Optional[ProfileCache] = None,
                 config_fingerprint: str = "uncached",
                 jobs: int = 1,
                 engine_spec: Optional[Dict[str, Any]] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 progress: Optional[ProgressReporter] = None,
                 worker_fn=None) -> None:
        self.engine = engine
        self.cache = cache
        self.config_fingerprint = config_fingerprint
        self.jobs = resolve_worker_count(jobs)
        self.engine_spec = engine_spec
        self.timeout_s = timeout_s
        self.retries = retries
        self.progress = progress
        self.worker_fn = worker_fn
        #: Terminal failures of the most recent batch (never aborts the
        #: search; the affected requests yield no measurements).
        self.failed_jobs: List[JobResult] = []
        #: Summary of the most recent :meth:`profile_requests` batch.
        self.last_stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _lookup(self, fingerprint: str) -> Optional[List[dict]]:
        if self.cache is None:
            return None
        return self.cache.lookup(self.config_fingerprint, fingerprint)

    def _store(self, fingerprint: str,
               measurements: List[RegionMeasurement]) -> None:
        if self.cache is None:
            return
        self.cache.store(self.config_fingerprint, fingerprint,
                         [m.to_dict() for m in measurements])

    @staticmethod
    def _rebind(entry: dict, start: str,
                chain: Sequence[str] = ()) -> RegionMeasurement:
        """Rebind a cached entry to the current region's node names."""
        data = dict(entry)
        data["start"] = start
        if chain:
            data["chain"] = list(chain)
        return RegionMeasurement.from_dict(data)

    def _bind(self, entries: Sequence[dict],
              request: ProfileRequest) -> List[RegionMeasurement]:
        chain = request.nodes if request.kind == "pipeline" else ()
        return [self._rebind(e, start=request.nodes[0], chain=chain)
                for e in entries]

    def _fingerprint(self, region: Graph, request: ProfileRequest) -> str:
        if request.kind == "split":
            return region_fingerprint(region, "split",
                                      ratios=sorted(set(request.ratios)))
        if request.kind == "gpu":
            return region_fingerprint(region, "gpu")
        return region_fingerprint(region, "pipeline", stages=request.stages)

    # ------------------------------------------------------------------
    # Batch profiling
    # ------------------------------------------------------------------
    def profile_requests(self, graph: Graph,
                         requests: Sequence[ProfileRequest],
                         ) -> List[List[RegionMeasurement]]:
        """Measure every request; one result list per request, in order.

        The canonical merge order is the request order, so callers
        building a :class:`~repro.search.table.MeasurementTable` get
        identical tables from serial and parallel execution.
        """
        requests = list(requests)
        t0 = time.perf_counter()
        self.failed_jobs = []
        if self.jobs <= 1:
            jobs_run = 0
            hits = 0
            results: List[List[RegionMeasurement]] = []
            for request in requests:
                measurements, was_hit = self._profile_one(graph, request)
                jobs_run += 0 if was_hit else 1
                hits += 1 if was_hit else 0
                results.append(measurements)
            self._record_stats(requests, hits, jobs_run, 1, t0)
            return results
        results = self._profile_parallel(graph, requests, t0)
        return results

    def _profile_one(self, graph: Graph, request: ProfileRequest,
                     ) -> Tuple[List[RegionMeasurement], bool]:
        """The serial path: extract, consult cache, measure, store."""
        region = extract_subgraph(graph, request.nodes)
        fp = self._fingerprint(region, request)
        cached = self._lookup(fp)
        if cached is not None:
            return self._bind(cached, request), True
        measurements = measure_region(
            region, request.kind, request.nodes, self.engine,
            ratios=request.ratios, stages=request.stages, fingerprint=fp)
        self._store(fp, measurements)
        return measurements, False

    def _profile_parallel(self, graph: Graph,
                          requests: List[ProfileRequest],
                          t0: float) -> List[List[RegionMeasurement]]:
        # Phase 1: enumerate regions and consult the cache up front.
        prepared: List[Tuple[ProfileRequest, Graph, str]] = []
        hit_entries: Dict[int, List[dict]] = {}
        owner_of_fp: Dict[str, int] = {}
        specs: List[JobSpec] = []
        engine_spec = self.engine_spec or self.engine.to_spec()
        dup_hits = 0
        for i, request in enumerate(requests):
            region = extract_subgraph(graph, request.nodes)
            fp = self._fingerprint(region, request)
            prepared.append((request, region, fp))
            if fp in owner_of_fp:
                # Duplicate structure of a pending job: it rebinds the
                # owner's entries at merge time, which is exactly what
                # the serial path would have served as a cache hit —
                # count it as one so the statistics are mode-independent.
                dup_hits += 1
                if self.cache is not None:
                    self.cache.hits += 1
                continue
            cached = self._lookup(fp)
            if cached is not None:
                hit_entries[i] = cached
            else:
                # First miss of this structure owns the job.
                owner_of_fp[fp] = i
                specs.append(JobSpec(
                    job_id=len(specs), kind=request.kind, fingerprint=fp,
                    config_fingerprint=self.config_fingerprint,
                    region=graph_to_dict(region, include_weights=False),
                    target=request.nodes,
                    ratios=tuple(sorted(set(request.ratios))),
                    stages=request.stages,
                    engine_spec=engine_spec))

        # Phase 2: fan the unique misses out across workers.
        worker_fn = self.worker_fn
        if worker_fn is None:
            from repro.exec.worker import execute_job
            worker_fn = execute_job
        job_engine = JobEngine(
            worker_fn, jobs=self.jobs, timeout_s=self.timeout_s,
            retries=self.retries, progress=self.progress)
        job_results = job_engine.run(specs, cached=len(hit_entries) + dup_hits)

        # Phase 3: single-writer merge back in the parent, in canonical
        # (submission) order — workers never write the cache.
        entries_by_fp: Dict[str, List[dict]] = {}
        for result in job_results:
            if result.ok:
                entries_by_fp[result.fingerprint] = list(result.entries)
                self.engine.run_count += result.runs
                if self.cache is not None:
                    self.cache.store(self.config_fingerprint,
                                     result.fingerprint,
                                     list(result.entries))
            else:
                self.failed_jobs.append(result)

        results: List[List[RegionMeasurement]] = []
        for i, (request, _region, fp) in enumerate(prepared):
            if i in hit_entries:
                results.append(self._bind(hit_entries[i], request))
            elif fp in entries_by_fp:
                results.append(self._bind(entries_by_fp[fp], request))
            else:
                results.append([])  # recorded failure; search continues
        self._record_stats(requests, len(hit_entries) + dup_hits,
                           len(specs), self.jobs, t0)
        return results

    def _record_stats(self, requests: Sequence[ProfileRequest], hits: int,
                      jobs_run: int, workers: int, t0: float) -> None:
        self.last_stats = {
            "requests": len(requests),
            "cache_hits": hits,
            "jobs_run": jobs_run,
            "failed": len(self.failed_jobs),
            "workers": workers,
            "wall_s": time.perf_counter() - t0,
        }

    # ------------------------------------------------------------------
    # Per-region entry points (serial semantics, shared with the batch)
    # ------------------------------------------------------------------
    def profile_node(self, graph: Graph, name: str,
                     ratios: Sequence[float]) -> List[RegionMeasurement]:
        """All split-ratio measurements for one PIM-candidate node."""
        request = ProfileRequest("split", (name,), tuple(ratios))
        return self._profile_one(graph, request)[0]

    def profile_gpu_node(self, graph: Graph,
                         name: str) -> List[RegionMeasurement]:
        """The GPU-only measurement for a non-candidate node."""
        return self._profile_one(graph, ProfileRequest("gpu", (name,)))[0]

    def profile_chain(self, graph: Graph, chain: Sequence[str],
                      stages: int) -> List[RegionMeasurement]:
        """The pipelined measurement for a chain (empty if unsplittable)."""
        request = ProfileRequest("pipeline", tuple(chain), stages=stages)
        return self._profile_one(graph, request)[0]
