"""Hardware-measurement-based profiling of execution modes.

For each PIM-candidate layer, the profiler extracts the layer into an
isolated region graph, applies the MD-DP transformation at each split
ratio (the original graph serves for the 0/100 and 100/0 samples, as in
the paper), runs the memory-layout optimizer, and measures the region
makespan on the simulators.  Pipelining candidates are measured the
same way on their extracted chains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.plan.cache import ProfileCache
from repro.plan.fingerprint import region_fingerprint
from repro.runtime.engine import ExecutionEngine
from repro.search.table import RegionMeasurement
from repro.transform.base import TransformError
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp


def extract_subgraph(graph: Graph, node_names: Sequence[str]) -> Graph:
    """Isolate ``node_names`` into a standalone region graph.

    Tensors consumed from outside the region become graph inputs;
    initializers are carried over; tensors produced in the region and
    consumed outside (or that are graph outputs) become outputs.
    """
    wanted = set(node_names)
    region = Graph(f"{graph.name}__region")
    produced = set()
    for node in graph.toposort():
        if node.name not in wanted:
            continue
        for t in node.inputs:
            if t in graph.initializers:
                if t not in region.tensors:
                    region.add_initializer(t, graph.initializers[t],
                                           graph.tensors[t].dtype)
            elif t not in produced and t not in region.inputs:
                region.add_tensor(graph.tensors[t])
                region.inputs.append(t)
        for t in node.outputs:
            region.add_tensor(graph.tensors[t])
            produced.add(t)
        region.add_node(node.clone())
    if len(region.nodes) != len(wanted):
        missing = wanted - {n.name for n in region.nodes}
        raise KeyError(f"nodes not found in graph: {sorted(missing)}")
    for node in region.nodes:
        for t in node.outputs:
            consumers_outside = any(
                t in c.inputs for c in graph.nodes if c.name not in wanted)
            if consumers_outside or t in graph.outputs:
                region.outputs.append(t)
    if not region.outputs:
        region.outputs.append(region.nodes[-1].outputs[0])
    return region


def profile_split(graph: Graph, node_name: str, engine: ExecutionEngine,
                  ratios: Iterable[float]) -> Dict[float, float]:
    """Region makespan (us) of ``node_name`` at each GPU split ratio."""
    region = extract_subgraph(graph, [node_name])
    results: Dict[float, float] = {}
    for ratio in ratios:
        try:
            transformed = optimize_memory(apply_mddp(region, node_name, ratio))
        except TransformError:
            # Interior ratio not realizable for this layer (e.g. halo
            # consumes a piece, or non-constant FC weights); the 0/100
            # and 100/0 samples always succeed.
            continue
        results[ratio] = engine.run(transformed).makespan_us
    return results


def profile_pipeline(graph: Graph, chain: Sequence[str], engine: ExecutionEngine,
                     num_stages: int = 2) -> Optional[float]:
    """Region makespan (us) of a pipelined chain, or None if unsplittable."""
    region = extract_subgraph(graph, chain)
    try:
        transformed = optimize_memory(
            pipeline_chain(region, chain, num_stages=num_stages))
    except TransformError:
        return None
    return engine.run(transformed).makespan_us


def profile_gpu(graph: Graph, node_names: Sequence[str],
                engine: ExecutionEngine) -> float:
    """Region makespan of nodes executed GPU-only (no transformation)."""
    region = extract_subgraph(graph, node_names)
    for node in region.nodes:
        node.device = "gpu"
    return engine.run(region).makespan_us


class RegionProfiler:
    """Measures regions with optional content-addressed caching.

    Each profiled region is fingerprinted structurally (canonical
    names, so two identical layers of a model share one cache slot) and
    looked up under the toolchain's configuration fingerprint before
    any simulator runs.  On a hit, the stored measurements are rebound
    to the current node names; on a miss, the simulators run and the
    result — including the *negative* result of an unsplittable
    pipeline chain — is stored for every later profile of the same
    structure.
    """

    def __init__(self, engine: ExecutionEngine,
                 cache: Optional[ProfileCache] = None,
                 config_fingerprint: str = "uncached") -> None:
        self.engine = engine
        self.cache = cache
        self.config_fingerprint = config_fingerprint

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _lookup(self, fingerprint: str) -> Optional[List[dict]]:
        if self.cache is None:
            return None
        return self.cache.lookup(self.config_fingerprint, fingerprint)

    def _store(self, fingerprint: str,
               measurements: List[RegionMeasurement]) -> None:
        if self.cache is None:
            return
        self.cache.store(self.config_fingerprint, fingerprint,
                         [m.to_dict() for m in measurements])

    @staticmethod
    def _rebind(entry: dict, start: str,
                chain: Sequence[str] = ()) -> RegionMeasurement:
        """Rebind a cached entry to the current region's node names."""
        data = dict(entry)
        data["start"] = start
        if chain:
            data["chain"] = list(chain)
        return RegionMeasurement.from_dict(data)

    # ------------------------------------------------------------------
    # Profiling entry points
    # ------------------------------------------------------------------
    def profile_node(self, graph: Graph, name: str,
                     ratios: Sequence[float]) -> List[RegionMeasurement]:
        """All split-ratio measurements for one PIM-candidate node."""
        region = extract_subgraph(graph, [name])
        ratio_list = sorted(set(ratios))
        fp = region_fingerprint(region, "split", ratios=ratio_list)
        cached = self._lookup(fp)
        if cached is not None:
            return [self._rebind(e, start=name) for e in cached]
        measurements: List[RegionMeasurement] = []
        for ratio, time_us in sorted(
                profile_split(region, name, self.engine, ratio_list).items()):
            if ratio >= 1.0:
                measurements.append(RegionMeasurement(
                    name, 1, "gpu", time_us, fingerprint=fp))
            else:
                measurements.append(RegionMeasurement(
                    name, 1, "split", time_us, ratio_gpu=ratio,
                    fingerprint=fp))
        self._store(fp, measurements)
        return measurements

    def profile_gpu_node(self, graph: Graph,
                         name: str) -> List[RegionMeasurement]:
        """The GPU-only measurement for a non-candidate node."""
        region = extract_subgraph(graph, [name])
        fp = region_fingerprint(region, "gpu")
        cached = self._lookup(fp)
        if cached is not None:
            return [self._rebind(e, start=name) for e in cached]
        for node in region.nodes:
            node.device = "gpu"
        time_us = self.engine.run(region).makespan_us
        measurements = [RegionMeasurement(name, 1, "gpu", time_us,
                                          fingerprint=fp)]
        self._store(fp, measurements)
        return measurements

    def profile_chain(self, graph: Graph, chain: Sequence[str],
                      stages: int) -> List[RegionMeasurement]:
        """The pipelined measurement for a chain (empty if unsplittable)."""
        region = extract_subgraph(graph, chain)
        fp = region_fingerprint(region, "pipeline", stages=stages)
        cached = self._lookup(fp)
        if cached is not None:
            return [self._rebind(e, start=chain[0], chain=chain)
                    for e in cached]
        time_us = profile_pipeline(graph, chain, self.engine,
                                   num_stages=stages)
        measurements = ([] if time_us is None else [RegionMeasurement(
            chain[0], len(chain), "pipeline", time_us, chain=tuple(chain),
            stages=stages, fingerprint=fp)])
        self._store(fp, measurements)
        return measurements
