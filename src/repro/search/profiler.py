"""Hardware-measurement-based profiling of execution modes.

For each PIM-candidate layer, the profiler extracts the layer into an
isolated region graph, applies the MD-DP transformation at each split
ratio (the original graph serves for the 0/100 and 100/0 samples, as in
the paper), runs the memory-layout optimizer, and measures the region
makespan on the simulators.  Pipelining candidates are measured the
same way on their extracted chains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.runtime.engine import ExecutionEngine
from repro.transform.base import TransformError
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp


def extract_subgraph(graph: Graph, node_names: Sequence[str]) -> Graph:
    """Isolate ``node_names`` into a standalone region graph.

    Tensors consumed from outside the region become graph inputs;
    initializers are carried over; tensors produced in the region and
    consumed outside (or that are graph outputs) become outputs.
    """
    wanted = set(node_names)
    region = Graph(f"{graph.name}__region")
    produced = set()
    for node in graph.toposort():
        if node.name not in wanted:
            continue
        for t in node.inputs:
            if t in graph.initializers:
                if t not in region.tensors:
                    region.add_initializer(t, graph.initializers[t],
                                           graph.tensors[t].dtype)
            elif t not in produced and t not in region.inputs:
                region.add_tensor(graph.tensors[t])
                region.inputs.append(t)
        for t in node.outputs:
            region.add_tensor(graph.tensors[t])
            produced.add(t)
        region.add_node(node.clone())
    if len(region.nodes) != len(wanted):
        missing = wanted - {n.name for n in region.nodes}
        raise KeyError(f"nodes not found in graph: {sorted(missing)}")
    for node in region.nodes:
        for t in node.outputs:
            consumers_outside = any(
                t in c.inputs for c in graph.nodes if c.name not in wanted)
            if consumers_outside or t in graph.outputs:
                region.outputs.append(t)
    if not region.outputs:
        region.outputs.append(region.nodes[-1].outputs[0])
    return region


def profile_split(graph: Graph, node_name: str, engine: ExecutionEngine,
                  ratios: Iterable[float]) -> Dict[float, float]:
    """Region makespan (us) of ``node_name`` at each GPU split ratio."""
    region = extract_subgraph(graph, [node_name])
    results: Dict[float, float] = {}
    for ratio in ratios:
        try:
            transformed = optimize_memory(apply_mddp(region, node_name, ratio))
        except TransformError:
            # Interior ratio not realizable for this layer (e.g. halo
            # consumes a piece, or non-constant FC weights); the 0/100
            # and 100/0 samples always succeed.
            continue
        results[ratio] = engine.run(transformed).makespan_us
    return results


def profile_pipeline(graph: Graph, chain: Sequence[str], engine: ExecutionEngine,
                     num_stages: int = 2) -> Optional[float]:
    """Region makespan (us) of a pipelined chain, or None if unsplittable."""
    region = extract_subgraph(graph, chain)
    try:
        transformed = optimize_memory(
            pipeline_chain(region, chain, num_stages=num_stages))
    except TransformError:
        return None
    return engine.run(transformed).makespan_us


def profile_gpu(graph: Graph, node_names: Sequence[str],
                engine: ExecutionEngine) -> float:
    """Region makespan of nodes executed GPU-only (no transformation)."""
    region = extract_subgraph(graph, node_names)
    for node in region.nodes:
        node.device = "gpu"
    return engine.run(region).makespan_us
