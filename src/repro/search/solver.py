"""Dynamic-programming solve of Algorithm 1 (lines 23-28).

Given the measurement table over a topologically sorted node sequence,
computes the minimum total time assignment of execution modes, where a
region of ``span`` nodes starting at position ``i`` can be covered by
any measured option for that region.  Region times compose additively —
regions are serialized at their dataflow boundaries, exactly the
assumption the paper's DP makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.search.table import MeasurementTable, RegionMeasurement


@dataclass(frozen=True)
class Decision:
    """One region's chosen execution mode.

    Decisions round-trip through JSON (``to_dict``/``from_dict``) so an
    :class:`~repro.plan.artifact.ExecutionPlan` can carry the solver's
    output verbatim across processes.
    """

    nodes: Tuple[str, ...]
    mode: str                      # "gpu" | "split" | "pipeline"
    time_us: float
    ratio_gpu: Optional[float] = None
    stages: int = 2

    def to_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "mode": self.mode,
            "time_us": self.time_us,
            "ratio_gpu": self.ratio_gpu,
            "stages": self.stages,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Decision":
        return cls(
            nodes=tuple(data["nodes"]),
            mode=data["mode"],
            time_us=data["time_us"],
            ratio_gpu=data.get("ratio_gpu"),
            stages=data.get("stages", 2),
        )


def solve(order: Sequence[str], table: MeasurementTable) -> Tuple[float, List[Decision]]:
    """Optimal total time and per-region decisions.

    ``order`` is the topologically sorted node-name sequence of the
    model graph.  Every position must have at least a span-1
    measurement (the GPU fallback); pipeline options are only used when
    their measured chain matches the order slice exactly.
    """
    n = len(order)
    best = [float("inf")] * (n + 1)
    best[n] = 0.0
    choice: List[Optional[RegionMeasurement]] = [None] * n

    for i in range(n - 1, -1, -1):
        start = order[i]
        for span in table.spans_at(start):
            if i + span > n:
                continue
            for meas in table.options(start, span):
                if meas.chain and tuple(order[i:i + span]) != meas.chain:
                    continue
                total = meas.time_us + best[i + span]
                if total < best[i]:
                    best[i] = total
                    choice[i] = meas
                break  # options are sorted; only the best valid one matters
        if choice[i] is None:
            raise ValueError(
                f"no measurement covers node {start!r}; profile it first")

    decisions: List[Decision] = []
    i = 0
    while i < n:
        meas = choice[i]
        decisions.append(Decision(
            nodes=tuple(order[i:i + meas.span]),
            mode=meas.mode,
            time_us=meas.time_us,
            ratio_gpu=meas.ratio_gpu,
            stages=meas.stages,
        ))
        i += meas.span
    return best[0], decisions
