"""PIMFlow reproduction: compiler and runtime support for CNN models on
processing-in-memory DRAM (Shin et al., CGO 2023).

Quickstart::

    from repro import PimFlow, PimFlowConfig, build_model

    model = build_model("mobilenet-v2")
    baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(model)
    pimflow = PimFlow(PimFlowConfig(mechanism="pimflow")).run(model)
    print(baseline.makespan_us / pimflow.makespan_us, "x speedup")

See :mod:`repro.pimflow` for the toolchain API, :mod:`repro.transform`
for the graph passes, :mod:`repro.pim` / :mod:`repro.gpu` for the
device simulators, and the ``pimflow`` CLI for the artifact-style
workflow.
"""

from repro.graph import Graph, GraphBuilder, Node, TensorInfo
from repro.models import build_model, list_models
from repro.pimflow import (
    MECHANISMS,
    CompiledModel,
    PimFlow,
    PimFlowConfig,
    run_mechanism,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "Node",
    "TensorInfo",
    "build_model",
    "list_models",
    "MECHANISMS",
    "CompiledModel",
    "PimFlow",
    "PimFlowConfig",
    "run_mechanism",
    "__version__",
]
