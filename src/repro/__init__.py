"""PIMFlow reproduction: compiler and runtime support for CNN models on
processing-in-memory DRAM (Shin et al., CGO 2023).

Quickstart::

    from repro import PimFlow, PimFlowConfig, build_model

    model = build_model("mobilenet-v2")
    baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(model)
    pimflow = PimFlow(PimFlowConfig(mechanism="pimflow")).run(model)
    print(baseline.makespan_us / pimflow.makespan_us, "x speedup")

Compile-once/run-many::

    from repro import Compiler, PimFlowConfig, PlanExecutor, build_model

    plan = Compiler(PimFlowConfig(cache_dir=".pimflow_cache")).build_plan(
        build_model("resnet-50"))
    plan.save("resnet50.plan.json")
    result = PlanExecutor("resnet50.plan.json").run()   # no search imports

See :mod:`repro.pimflow` for the toolchain API, :mod:`repro.plan` for
the plan artifact and profile cache, :mod:`repro.transform` for the
graph passes, :mod:`repro.pim` / :mod:`repro.gpu` for the device
simulators, and the ``pimflow`` CLI for the artifact-style workflow.

Top-level names resolve lazily (PEP 562) so that importing a runtime
module — e.g. :mod:`repro.runtime.executor` to serve a saved plan —
never drags the compile-time search subsystem into the process.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Lazy export table: attribute name -> providing module.
_EXPORTS = {
    "Graph": "repro.graph",
    "GraphBuilder": "repro.graph",
    "Node": "repro.graph",
    "TensorInfo": "repro.graph",
    "build_model": "repro.models",
    "list_models": "repro.models",
    "MECHANISMS": "repro.pimflow",
    "CompiledModel": "repro.pimflow",
    "Compiler": "repro.pimflow",
    "PimFlow": "repro.pimflow",
    "PimFlowConfig": "repro.pimflow",
    "run_mechanism": "repro.pimflow",
    "ExecutionPlan": "repro.plan",
    "ProfileCache": "repro.plan",
    "PlanExecutor": "repro.runtime.executor",
    "JobEngine": "repro.exec",
    "JobResult": "repro.exec",
    "JobSpec": "repro.exec",
    "ProgressReporter": "repro.exec",
}

__all__ = [*_EXPORTS, "__version__"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.exec import JobEngine, JobResult, JobSpec, ProgressReporter
    from repro.graph import Graph, GraphBuilder, Node, TensorInfo
    from repro.models import build_model, list_models
    from repro.pimflow import (
        MECHANISMS,
        CompiledModel,
        Compiler,
        PimFlow,
        PimFlowConfig,
        run_mechanism,
    )
    from repro.plan import ExecutionPlan, ProfileCache
    from repro.runtime.executor import PlanExecutor


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache: resolve each name at most once
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
