"""GPU device configurations."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuConfig:
    """Parameters of the roofline GPU model.

    ``mem_channels`` is the number of memory channels visible to GPU
    kernels.  The PIM-enabled GPU memory dedicates a subset of the 32
    channels to PIM, shrinking this number (paper Section 4.1); Fig. 3
    and Fig. 13 sweep it.
    """

    name: str = "rtx2060"
    num_sms: int = 30
    clock_ghz: float = 1.68
    fp16_flops_per_sm_per_cycle: int = 256
    mem_channels: int = 32
    gbps_per_channel: float = 14.0
    l2_bytes: int = 3 * 1024 * 1024
    launch_overhead_us: float = 2.0
    #: Launch cost for elementwise/batchnorm kernels, which the TVM
    #: back-end fuses into their producing kernel; only a small epilogue
    #: cost remains.
    fused_launch_overhead_us: float = 0.3
    #: GEMM-row count at which the device saturates (tile quantization
    #: derate below this; small-M kernels run far from peak on cuDNN).
    saturation_rows: int = 512
    #: Utilization floor for the GEMM tile model: a kernel with a single
    #: 64x64 output tile still keeps a few SMs busy.  Calibrated so that
    #: split-off small GPU shares behave like cuDNN on tiny problems,
    #: which drives the paper's Table 2 (41% of candidate layers prefer
    #: full PIM offload over keeping a sliver on the GPU).
    min_utilization: float = 0.03
    base_compute_efficiency: float = 0.60
    base_memory_efficiency: float = 0.70
    #: Multiplicative slowdown for the write-through cache mode required
    #: for GPU/PIM coherence (paper Section 5 reports ~2.8%).
    write_through_penalty: float = 1.028

    @property
    def peak_flops_per_us(self) -> float:
        """Peak fp16 FLOPs per microsecond."""
        return self.num_sms * self.fp16_flops_per_sm_per_cycle * self.clock_ghz * 1e3

    @property
    def bandwidth_bytes_per_us(self) -> float:
        """Aggregate DRAM bandwidth in bytes per microsecond."""
        return self.mem_channels * self.gbps_per_channel * 1e3

    def with_channels(self, mem_channels: int) -> "GpuConfig":
        """Copy of this config with a different channel count."""
        if mem_channels <= 0:
            raise ValueError("mem_channels must be positive")
        return replace(self, mem_channels=mem_channels)


#: Baseline device of the evaluation (Section 5): GeForce RTX 2060.
RTX2060 = GpuConfig()

#: Device used only for the Fig. 8 simulator validation, matching the
#: Newton paper's setup: Titan V with 24 memory channels (HBM2).
TITAN_V = GpuConfig(
    name="titanv",
    num_sms=80,
    clock_ghz=1.46,
    fp16_flops_per_sm_per_cycle=256,
    mem_channels=24,
    gbps_per_channel=27.0,
    l2_bytes=4608 * 1024,
    launch_overhead_us=2.5,
)
