"""GPU device: runs whole graphs and reports latency/energy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.energy.constants import GpuEnergyModel
from repro.gpu.config import GpuConfig, RTX2060
from repro.gpu.kernels import KernelCost, node_cost
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import node_structural_key

#: Per-device memo entries before the cache resets (safety valve for
#: pathological long-lived devices; real models need a few hundred).
COST_CACHE_LIMIT = 65536


@dataclass(frozen=True)
class GraphCost:
    """Aggregate cost of executing a graph serially on the GPU."""

    time_us: float
    flops: float
    dram_bytes: float
    energy_mj: float
    per_node: Dict[str, KernelCost]


class GpuDevice:
    """Serial (heterogeneous-parallel baseline) GPU executor model.

    The DL-framework baseline launches one kernel per graph node in
    topological order; end-to-end latency is the sum of kernel
    latencies.  ``run_graph`` reproduces that behaviour; the
    mixed-parallel engine in :mod:`repro.runtime.engine` instead calls
    ``run_node`` for the GPU side of each parallel region.
    """

    def __init__(self, config: GpuConfig = RTX2060,
                 energy_model: Optional[GpuEnergyModel] = None,
                 write_through: bool = False) -> None:
        self.config = config
        self.energy_model = energy_model or GpuEnergyModel()
        self.write_through = write_through
        #: Structural-key -> KernelCost memo.  ``node_cost`` is a pure
        #: function of the node structure and this device's (immutable)
        #: config, so the same layer shape — re-priced at every split
        #: ratio and refine perturbation — computes once.
        self._cost_cache: Dict[tuple, KernelCost] = {}
        self.cost_cache_hits = 0

    def run_node(self, node: Node, graph: Graph) -> KernelCost:
        """Cost of one node as a GPU kernel (memoized structurally)."""
        key = node_structural_key(node, graph.tensors)
        cost = self._cost_cache.get(key)
        if cost is not None:
            self.cost_cache_hits += 1
            return cost
        if len(self._cost_cache) >= COST_CACHE_LIMIT:
            self._cost_cache.clear()
        cost = node_cost(node, graph, self.config, self.write_through)
        self._cost_cache[key] = cost
        return cost

    def node_energy_mj(self, cost: KernelCost) -> float:
        """Energy of one kernel."""
        return self.energy_model.kernel_energy_mj(cost.flops, cost.dram_bytes,
                                                  cost.time_us)

    def run_graph(self, graph: Graph,
                  only_nodes: Optional[List[str]] = None) -> GraphCost:
        """Serial execution cost of (a subset of) a graph."""
        wanted = set(only_nodes) if only_nodes is not None else None
        per_node: Dict[str, KernelCost] = {}
        time = flops = dram = energy = 0.0
        for n in graph.toposort():
            if wanted is not None and n.name not in wanted:
                continue
            cost = self.run_node(n, graph)
            per_node[n.name] = cost
            time += cost.time_us
            flops += cost.flops
            dram += cost.dram_bytes
            energy += self.node_energy_mj(cost)
        return GraphCost(time, flops, dram, energy, per_node)

    def with_channels(self, mem_channels: int) -> "GpuDevice":
        """Device copy with a different number of memory channels."""
        return GpuDevice(self.config.with_channels(mem_channels),
                         self.energy_model, self.write_through)
