"""Block-level SIMT GPU simulator.

A step below the roofline model toward Accel-Sim: kernels launch a grid
of thread blocks; the SM scheduler runs them in waves of
``num_sms x max_blocks_per_sm`` resident blocks; each wave's duration is
the max of its aggregate compute time (SM throughput shared by resident
blocks) and its aggregate memory time (DRAM bandwidth shared by
resident blocks).  This makes tail-wave quantization — the effect the
roofline model folds into its utilization factor — explicit, and the
two models are cross-validated in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.config import GpuConfig, RTX2060
from repro.gpu.kernels import TILE_K, TILE_M, TILE_N, WAVES_PER_SM, gemm_dims
from repro.graph.graph import Graph
from repro.graph.node import Node


@dataclass(frozen=True)
class KernelLaunch:
    """A grid of homogeneous thread blocks.

    ``flops_per_block`` and ``bytes_per_block`` are each block's compute
    work and DRAM traffic; ``max_blocks_per_sm`` is the occupancy bound
    (register/shared-memory limited).
    """

    num_blocks: int
    flops_per_block: float
    bytes_per_block: float
    max_blocks_per_sm: int = WAVES_PER_SM

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.max_blocks_per_sm <= 0:
            raise ValueError("max_blocks_per_sm must be positive")


@dataclass(frozen=True)
class SimtResult:
    """Timing of one kernel on the block scheduler."""

    time_us: float
    waves: int
    compute_bound_waves: int
    memory_bound_waves: int

    @property
    def bound(self) -> str:
        if self.compute_bound_waves >= self.memory_bound_waves:
            return "compute"
        return "memory"


class SimtGpu:
    """Wave-based block scheduler over the configured device."""

    def __init__(self, config: GpuConfig = RTX2060) -> None:
        self.config = config

    @property
    def concurrent_blocks(self) -> int:
        return self.config.num_sms * WAVES_PER_SM

    def simulate(self, launch: KernelLaunch) -> SimtResult:
        """Run a launch; returns wall time plus wave statistics."""
        capacity = self.config.num_sms * min(launch.max_blocks_per_sm,
                                             WAVES_PER_SM)
        waves = math.ceil(launch.num_blocks / capacity)
        peak_flops = self.config.peak_flops_per_us * \
            self.config.base_compute_efficiency
        peak_bw = self.config.bandwidth_bytes_per_us * \
            self.config.base_memory_efficiency

        total_us = 0.0
        compute_bound = memory_bound = 0
        remaining = launch.num_blocks
        while remaining > 0:
            resident = min(capacity, remaining)
            # SM throughput scales with how many SMs actually host blocks.
            active_sms = min(self.config.num_sms,
                             math.ceil(resident / launch.max_blocks_per_sm))
            wave_flops = resident * launch.flops_per_block
            wave_bytes = resident * launch.bytes_per_block
            compute_us = wave_flops / (peak_flops * active_sms
                                       / self.config.num_sms)
            memory_us = wave_bytes / peak_bw
            if compute_us >= memory_us:
                compute_bound += 1
            else:
                memory_bound += 1
            total_us += max(compute_us, memory_us)
            remaining -= resident
        total_us += self.config.launch_overhead_us
        return SimtResult(time_us=total_us, waves=waves,
                          compute_bound_waves=compute_bound,
                          memory_bound_waves=memory_bound)


def launch_from_gemm(m: int, n: int, k: int) -> KernelLaunch:
    """Build the CUTLASS-style tiled launch for an (M, N, K) GEMM.

    Output tiles of TILE_M x TILE_N with split-K every TILE_K: each
    block computes a partial tile, loading its A and B slices and
    writing its C slice (plus partial-sum traffic under split-K).
    """
    tiles_m = math.ceil(m / TILE_M)
    tiles_n = math.ceil(n / TILE_N)
    tiles_k = math.ceil(k / TILE_K)
    num_blocks = tiles_m * tiles_n * tiles_k

    eff_m = min(m, TILE_M)
    eff_n = min(n, TILE_N)
    eff_k = min(k, TILE_K)
    flops_per_block = 2.0 * eff_m * eff_n * eff_k
    a_bytes = eff_m * eff_k * 2
    b_bytes = eff_k * eff_n * 2
    c_bytes = eff_m * eff_n * 2 * (2 if tiles_k > 1 else 1)
    return KernelLaunch(num_blocks=num_blocks,
                        flops_per_block=flops_per_block,
                        bytes_per_block=float(a_bytes + b_bytes + c_bytes))


def simulate_gemm_node(node: Node, graph: Graph,
                       config: GpuConfig = RTX2060) -> SimtResult:
    """Simulate a Conv/Gemm/MatMul node as its implicit-GEMM launch."""
    m, n, k = gemm_dims(node, graph)
    return SimtGpu(config).simulate(launch_from_gemm(m, n, k))
