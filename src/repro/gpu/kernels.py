"""Roofline cost model for GPU kernels.

``node_cost`` maps a graph node to a :class:`KernelCost` with latency,
FLOPs, and DRAM traffic.  The model distinguishes three kernel classes:

* **GEMM-class** (Conv, Gemm, MatMul): compute throughput derated by a
  tile-quantization utilization factor.  cuDNN/CUTLASS decompose a GEMM
  of (M, N, K) into output tiles (with split-K for deep reductions);
  when the tile count cannot fill the SMs, throughput drops.  Small-M
  kernels — late CNN layers, batch-1 FC — therefore run far below peak,
  which is exactly the regime where DRAM-PIM competes (paper Section 3,
  observation 2).
* **Depthwise convolutions**: effectively memory-bound on GPUs; they
  stay on the GPU and act as the pipeline partner for 1x1 PIM layers.
* **Memory-bound ops** (activations, pools, batchnorm, data movement):
  cost is traffic over derated bandwidth.

Data-movement nodes carrying the ``elided`` attribute (set by the
memory-layout optimizer) cost nothing: with co-allocated NHWC buffers
the Slice/Concat/Pad operators are no-ops (paper Section 4.3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.ops import is_depthwise
from repro.gpu.config import GpuConfig

#: Ops that only move or trivially transform data.
MOVEMENT_OPS = ("Slice", "Concat", "Pad", "Reshape", "Flatten", "Identity", "Transpose")

#: Memory-bandwidth efficiency by kernel class.
MEMORY_EFFICIENCY = {
    "gemm": 0.70,
    "dwconv": 0.50,
    "elementwise": 0.85,
    "pool": 0.60,
    "movement": 0.80,
}

#: GEMM tile decomposition used by the utilization model: output tiles
#: of 64x64 with split-K every 512 reduction elements; the device
#: saturates at ~4 concurrent tiles ("waves") per SM.
TILE_M = 64
TILE_N = 64
TILE_K = 512
WAVES_PER_SM = 4


@dataclass(frozen=True)
class KernelCost:
    """Latency and resource usage of one GPU kernel."""

    time_us: float
    flops: float
    dram_bytes: float
    bound: str  # "compute" | "memory" | "latency" | "elided"

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of DRAM traffic (paper Fig. 1 metric)."""
        if self.dram_bytes == 0:
            return 0.0
        return (self.flops / 2.0) / self.dram_bytes


def _tensor_bytes(graph: Graph, names) -> int:
    return sum(graph.tensors[t].num_bytes for t in names)


def gemm_dims(node: Node, graph: Graph) -> Tuple[int, int, int]:
    """(M, N, K) of the GEMM a Conv/Gemm/MatMul node lowers to."""
    if node.op_type == "Conv":
        out_shape = graph.tensors[node.outputs[0]].shape
        kh, kw, cin_g, cout = graph.tensors[node.inputs[1]].shape
        n, oh, ow, _ = out_shape
        return n * oh * ow, cout, kh * kw * cin_g
    if node.op_type in ("Gemm", "MatMul"):
        a = graph.tensors[node.inputs[0]].shape
        b = graph.tensors[node.inputs[1]].shape
        m = 1
        for d in a[:-1]:
            m *= d
        return m, b[-1], a[-1]
    raise ValueError(f"{node.op_type} is not a GEMM-class op")


def gemm_utilization(m: int, n: int, k: int, config: GpuConfig) -> float:
    """Fraction of peak throughput reachable for an (M, N, K) GEMM."""
    tiles = (math.ceil(m / TILE_M) * math.ceil(n / TILE_N) * math.ceil(k / TILE_K))
    util = tiles / (WAVES_PER_SM * config.num_sms)
    return max(config.min_utilization, min(1.0, util))


def node_flops_bytes(node: Node, graph: Graph) -> Tuple[float, float]:
    """FLOPs and DRAM bytes for a node.

    DRAM traffic assumes each operand is streamed once (on-chip reuse
    captures the im2col expansion), which reproduces the
    arithmetic-intensity separation of Fig. 1: deep 3x3 convs land high,
    1x1 convs in the middle, FC and depthwise layers at the bottom.
    """
    in_bytes = _tensor_bytes(graph, node.inputs)
    out_bytes = _tensor_bytes(graph, node.outputs)
    bytes_total = float(in_bytes + out_bytes)

    if node.op_type in ("Conv", "Gemm", "MatMul"):
        m, n, k = gemm_dims(node, graph)
        if node.op_type == "Conv":
            # Grouped convs do K=cin/g work per output but produce cout
            # outputs per position; gemm_dims already uses cin_g.
            pass
        return 2.0 * m * n * k, bytes_total

    if node.op_type in ("MaxPool", "AveragePool"):
        out = graph.tensors[node.outputs[0]]
        kh, kw = node.attr("kernel_shape")
        return float(out.num_elements * kh * kw), bytes_total

    if node.op_type == "BatchNormalization":
        data = graph.tensors[node.inputs[0]]
        return 4.0 * data.num_elements, bytes_total

    if node.op_type in MOVEMENT_OPS:
        return 0.0, bytes_total

    if node.op_type == "FusedElementwise":
        # One flop per element per fused entry (four for the BN
        # normalize sequence), priced over the common group shape.
        out = graph.tensors[node.outputs[0]]
        expr = node.attr("expr") or []
        ops = sum(4.0 if entry.get("op") == "BatchNormalization" else 1.0
                  for entry in expr)
        return max(1.0, ops) * out.num_elements, bytes_total

    # Elementwise / activation / softmax / reductions.
    out = graph.tensors[node.outputs[0]]
    return float(out.num_elements), bytes_total


def _kernel_class(node: Node, graph: Graph) -> str:
    if node.op_type == "Conv":
        in_shape = graph.tensors[node.inputs[0]].shape
        return "dwconv" if is_depthwise(node, [in_shape]) else "gemm"
    if node.op_type in ("Gemm", "MatMul"):
        return "gemm"
    if node.op_type in ("MaxPool", "AveragePool", "GlobalAveragePool"):
        return "pool"
    if node.op_type in MOVEMENT_OPS:
        return "movement"
    return "elementwise"


def node_cost(node: Node, graph: Graph, config: GpuConfig,
              write_through: bool = False) -> KernelCost:
    """Latency of ``node`` as one GPU kernel under ``config``.

    ``write_through`` applies the coherence-mode penalty the paper
    enables when GPU kernels share memory with PIM commands.
    """
    if node.attr("elided", False):
        return KernelCost(0.0, 0.0, 0.0, "elided")

    flops, dram_bytes = node_flops_bytes(node, graph)
    kclass = _kernel_class(node, graph)

    mem_eff = MEMORY_EFFICIENCY.get(kclass, 0.7) * config.base_memory_efficiency / 0.70
    mem_time = dram_bytes / (config.bandwidth_bytes_per_us * mem_eff)

    if kclass == "gemm":
        m, n, k = gemm_dims(node, graph)
        compute_eff = config.base_compute_efficiency * gemm_utilization(m, n, k, config)
    elif kclass == "dwconv":
        compute_eff = 0.10
    else:
        compute_eff = 0.30
    compute_time = flops / (config.peak_flops_per_us * compute_eff) if flops else 0.0

    busy = max(compute_time, mem_time)
    if write_through:
        busy *= config.write_through_penalty
    if kclass in ("elementwise", "movement"):
        launch = config.fused_launch_overhead_us
    else:
        launch = config.launch_overhead_us
    time = busy + launch
    if compute_time >= mem_time and flops:
        bound = "compute"
    elif dram_bytes:
        bound = "memory"
    else:
        bound = "latency"
    if busy < config.launch_overhead_us:
        bound = "latency"
    return KernelCost(time, flops, dram_bytes, bound)
