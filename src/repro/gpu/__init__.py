"""Analytical GPU timing simulator (Accel-Sim substitute).

The original evaluation replays NVBit traces of cuDNN/CUTLASS kernels
through Accel-Sim.  This package reproduces the quantities the paper
consumes — per-kernel latency, FLOP count, DRAM traffic, and energy —
with a calibrated roofline model: kernels are the max of compute time
(peak throughput derated by an occupancy-style utilization factor) and
memory time (bandwidth proportional to the number of memory channels),
plus a fixed launch overhead.
"""

from repro.gpu.config import GpuConfig, RTX2060, TITAN_V
from repro.gpu.kernels import KernelCost, node_cost, node_flops_bytes
from repro.gpu.device import GpuDevice
from repro.gpu.simt import KernelLaunch, SimtGpu, SimtResult, launch_from_gemm, simulate_gemm_node

__all__ = [
    "GpuConfig",
    "RTX2060",
    "TITAN_V",
    "KernelCost",
    "node_cost",
    "node_flops_bytes",
    "GpuDevice",
    "KernelLaunch",
    "SimtGpu",
    "SimtResult",
    "launch_from_gemm",
    "simulate_gemm_node",
]
