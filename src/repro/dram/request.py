"""Memory requests and synthetic request-stream generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class Request:
    """One DRAM column access (a 32-byte burst).

    ``arrival`` is the cycle at which the request enters the controller
    queue; ``bank``/``row``/``column`` address one column burst.
    """

    arrival: int
    bank: int
    row: int
    column: int
    is_write: bool = False


def _bytes_to_bursts(num_bytes: int, burst_bytes: int = 32) -> int:
    return max(1, (num_bytes + burst_bytes - 1) // burst_bytes)


def streaming_trace(num_bytes: int, banks: int = 16, row_bytes: int = 2048,
                    arrival_rate: float = 1.0,
                    burst_bytes: int = 32) -> List[Request]:
    """Sequential read stream: maximal row-buffer locality.

    Consecutive bursts walk each row before moving on, interleaving
    across banks at row granularity — the access pattern of a
    well-coalesced GPU kernel streaming a tensor.
    """
    bursts = _bytes_to_bursts(num_bytes, burst_bytes)
    per_row = row_bytes // burst_bytes
    requests = []
    for i in range(bursts):
        row_index = i // per_row
        requests.append(Request(
            arrival=int(i / arrival_rate),
            bank=row_index % banks,
            row=row_index // banks,
            column=i % per_row,
        ))
    return requests


def strided_trace(num_bytes: int, stride_bursts: int = 16, banks: int = 16,
                  row_bytes: int = 2048, arrival_rate: float = 1.0,
                  burst_bytes: int = 32) -> List[Request]:
    """Strided stream: consecutive bursts ``stride_bursts`` columns apart.

    Models partially-coalesced access (e.g. spatially-strided reads):
    each activated row serves ``row_bytes / burst_bytes / stride_bursts``
    bursts instead of the full row, so locality sits between streaming
    and random.
    """
    bursts = _bytes_to_bursts(num_bytes, burst_bytes)
    per_row = row_bytes // burst_bytes
    requests = []
    for i in range(bursts):
        linear = i * stride_bursts
        row_index = linear // per_row
        requests.append(Request(
            arrival=int(i / arrival_rate),
            bank=row_index % banks,
            row=row_index // banks,
            column=linear % per_row,
        ))
    return requests


def random_trace(num_bytes: int, banks: int = 16, row_bytes: int = 2048,
                 num_rows: int = 4096, arrival_rate: float = 1.0,
                 burst_bytes: int = 32, seed: int = 0) -> List[Request]:
    """Uniformly random bursts: worst-case row-buffer behaviour."""
    bursts = _bytes_to_bursts(num_bytes, burst_bytes)
    rng = np.random.default_rng(seed)
    per_row = row_bytes // burst_bytes
    requests = []
    for i in range(bursts):
        requests.append(Request(
            arrival=int(i / arrival_rate),
            bank=int(rng.integers(banks)),
            row=int(rng.integers(num_rows)),
            column=int(rng.integers(per_row)),
        ))
    return requests
