"""Request-level DRAM channel simulator (Ramulator-style substrate).

The paper extends Ramulator's DRAM controller to process both regular
GPU memory commands and PIM commands, and measures controller
contention by interleaving Accel-Sim memory request streams with PIM
command sequences (Section 7).  This package provides that substrate:

* :mod:`repro.dram.request` — memory requests and synthetic request
  stream generators (streaming / strided / random), standing in for
  Accel-Sim traces.
* :mod:`repro.dram.bank` — per-bank row-buffer state machine with
  ACT/PRE/RD/WR timing.
* :mod:`repro.dram.controller` — per-channel controller: FR-FCFS-lite
  scheduling (row hits first within a lookahead window), statistics,
  and support for *blocked intervals* during which the controller
  services PIM traffic and regular requests stall.
"""

from repro.dram.request import Request, streaming_trace, strided_trace, random_trace
from repro.dram.bank import Bank, DramTiming
from repro.dram.controller import ChannelController, ChannelStats, BlockedInterval
from repro.dram.memory import MemoryStats, MultiChannelMemory

__all__ = [
    "Request",
    "streaming_trace",
    "strided_trace",
    "random_trace",
    "Bank",
    "DramTiming",
    "ChannelController",
    "ChannelStats",
    "BlockedInterval",
    "MemoryStats",
    "MultiChannelMemory",
]
