"""Multi-channel memory: address-interleaved channel simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dram.bank import DramTiming
from repro.dram.controller import BlockedInterval, ChannelController, ChannelStats
from repro.dram.request import Request


@dataclass(frozen=True)
class MemoryStats:
    """Aggregate outcome across channels."""

    finish_cycle: int
    per_channel: Dict[int, ChannelStats]

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.per_channel.values())

    def aggregate_bandwidth_bytes_per_cycle(self, burst_bytes: int = 32) -> float:
        if self.finish_cycle == 0:
            return 0.0
        return self.total_requests * burst_bytes / self.finish_cycle


class MultiChannelMemory:
    """N independent channels with burst-granularity address interleave.

    The GPU memory side of the PIM-enabled DRAM: requests round-robin
    across channels (the standard interleave that gives streaming
    kernels their aggregate bandwidth), each channel running its own
    banks and controller.
    """

    def __init__(self, channels: int = 16, banks: int = 16,
                 timing: Optional[DramTiming] = None) -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels
        self.banks = banks
        self.timing = timing or DramTiming()

    def simulate(self, requests: Sequence[Request],
                 blocked: Sequence[BlockedInterval] = ()) -> MemoryStats:
        """Distribute a request stream over the channels and simulate.

        Request ``i`` maps to channel ``i mod channels`` (the stream is
        assumed address-ordered); ``blocked`` intervals apply to every
        channel (the shared-controller PIM windows of Section 7).
        """
        per_channel_requests: Dict[int, List[Request]] = {
            ch: [] for ch in range(self.channels)}
        for i, req in enumerate(requests):
            per_channel_requests[i % self.channels].append(req)
        per_channel: Dict[int, ChannelStats] = {}
        finish = 0
        for ch, reqs in per_channel_requests.items():
            controller = ChannelController(banks=self.banks, timing=self.timing)
            stats = controller.simulate(reqs, blocked=blocked)
            per_channel[ch] = stats
            finish = max(finish, stats.finish_cycle)
        return MemoryStats(finish_cycle=finish, per_channel=per_channel)
