"""Per-bank row-buffer state machine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DramTiming:
    """Core DRAM timing constraints in command-clock cycles.

    Defaults align with the PIM side's Table 1 constants (GDDR6-class).
    """

    t_rcd: int = 11   # ACT -> RD/WR
    t_rp: int = 11    # PRE -> ACT
    t_cl: int = 11    # RD -> data
    t_ccd: int = 2    # back-to-back column bursts (same bank group)
    t_ras: int = 25   # ACT -> PRE minimum
    t_wr: int = 12    # write recovery


class Bank:
    """Open-page bank: tracks the open row and the next-ready cycle."""

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_at = 0          # cycle at which a new column op may issue
        self.activated_at = 0      # for tRAS accounting
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    def access(self, row: int, now: int, is_write: bool = False) -> int:
        """Issue a column access to ``row`` at or after ``now``.

        Returns the cycle at which the burst's data completes.  Handles
        row-hit (CAS only), row-miss on a closed bank (ACT + CAS), and
        row-conflict (PRE + ACT + CAS) with tRAS respected.
        """
        t = self.timing
        start = max(now, self.ready_at)
        if self.open_row == row:
            self.row_hits += 1
            issue = start
        elif self.open_row is None:
            self.row_misses += 1
            issue = start + t.t_rcd
            self.open_row = row
            self.activated_at = start
        else:
            self.row_conflicts += 1
            # Respect tRAS before precharging the old row.
            pre_at = max(start, self.activated_at + t.t_ras)
            act_at = pre_at + t.t_rp
            issue = act_at + t.t_rcd
            self.open_row = row
            self.activated_at = act_at
        done = issue + (t.t_wr if is_write else t.t_cl)
        self.ready_at = issue + t.t_ccd
        return done
