"""Per-channel memory controller with FR-FCFS-lite scheduling.

Processes a request stream against the channel's banks, sharing one
command/data bus (one column burst per ``t_ccd`` cycles).  The
controller can be handed *blocked intervals* — windows during which it
services PIM traffic (GWRITE/READRES streaming through the shared
controller) and regular requests stall — which is exactly how the paper
measures GPU/PIM controller contention (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dram.bank import Bank, DramTiming
from repro.dram.request import Request


@dataclass(frozen=True)
class BlockedInterval:
    """A window [start, end) during which the controller serves PIM."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty blocked interval [{self.start}, {self.end})")


@dataclass
class ChannelStats:
    """Outcome of simulating one request stream."""

    finish_cycle: int
    requests: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    stalled_cycles: int

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    def bandwidth_bytes_per_cycle(self, burst_bytes: int = 32) -> float:
        if self.finish_cycle == 0:
            return 0.0
        return self.requests * burst_bytes / self.finish_cycle


class ChannelController:
    """One channel: banks plus a shared data bus."""

    def __init__(self, banks: int = 16,
                 timing: Optional[DramTiming] = None,
                 lookahead: int = 8) -> None:
        if banks <= 0:
            raise ValueError("banks must be positive")
        self.timing = timing or DramTiming()
        self.banks = [Bank(self.timing) for _ in range(banks)]
        self.lookahead = lookahead

    def _advance_past_blocks(self, now: int, blocks: Sequence[BlockedInterval],
                             stalled: List[int]) -> int:
        """Move ``now`` out of any blocked window, accumulating stall."""
        for interval in blocks:
            if interval.start <= now < interval.end:
                stalled[0] += interval.end - now
                now = interval.end
        return now

    def simulate(self, requests: Sequence[Request],
                 blocked: Sequence[BlockedInterval] = ()) -> ChannelStats:
        """Process a request stream; returns timing and locality stats.

        Scheduling is FR-FCFS-lite: within a small lookahead window of
        the queue head, row-buffer hits issue first; otherwise FIFO.
        The data bus serializes bursts at ``t_ccd``.
        """
        queue = sorted(requests, key=lambda r: r.arrival)
        blocks = sorted(blocked, key=lambda b: b.start)
        bus_free = 0
        stalled = [0]
        index = 0
        pending: List[Request] = []
        finish = 0
        served = 0

        while index < len(queue) or pending:
            # Refill the pending window.
            now = bus_free
            while index < len(queue) and (queue[index].arrival <= now
                                          or not pending):
                pending.append(queue[index])
                index += 1
                if len(pending) >= self.lookahead * 4:
                    break
            if not pending:
                continue

            window = pending[:self.lookahead]
            # Row hits first (FR), then oldest (FCFS).
            chosen = None
            for req in window:
                if self.banks[req.bank % len(self.banks)].open_row == req.row:
                    chosen = req
                    break
            if chosen is None:
                chosen = window[0]
            pending.remove(chosen)

            now = max(bus_free, chosen.arrival)
            now = self._advance_past_blocks(now, blocks, stalled)
            bank = self.banks[chosen.bank % len(self.banks)]
            done = bank.access(chosen.row, now, chosen.is_write)
            bus_free = max(now + self.timing.t_ccd, bank.ready_at)
            finish = max(finish, done)
            served += 1

        return ChannelStats(
            finish_cycle=finish,
            requests=served,
            row_hits=sum(b.row_hits for b in self.banks),
            row_misses=sum(b.row_misses for b in self.banks),
            row_conflicts=sum(b.row_conflicts for b in self.banks),
            stalled_cycles=stalled[0],
        )
