"""Compile-once/run-many: the execution-plan artifact and profile cache.

Algorithm-1 profiling dominates the toolchain's cost: every
PIM-candidate layer at 11 split ratios plus every pipeline candidate,
each a full simulator evaluation.  This example compiles ResNet-50 into
a serializable :class:`~repro.plan.ExecutionPlan` once, then shows the
two reuse paths:

* re-running the saved plan needs no compiler at all (the executor
  never imports the search subsystem), and
* re-compiling against the same profile cache replays every
  measurement from disk — zero simulator invocations.

Run:  python examples/compile_once.py [model-name]
"""

import sys
import tempfile
from pathlib import Path

from repro import Compiler, PimFlowConfig, PlanExecutor, build_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "resnet-50"
    workdir = Path(tempfile.mkdtemp(prefix="pimflow_compile_once_"))
    cache_dir = workdir / "cache"
    plan_path = workdir / f"{model_name}.plan.json"

    print(f"Building {model_name} ...")
    model = build_model(model_name)

    print(f"\nCold compile (profile cache at {cache_dir}) ...")
    compiler = Compiler(PimFlowConfig(mechanism="pimflow",
                                      cache_dir=cache_dir))
    plan = compiler.build_plan(model, model_name=model_name)
    cold_sims = compiler.engine.run_count
    plan.save(plan_path, include_weights=False)
    print(f"  {cold_sims} simulator invocations, "
          f"{len(plan.decisions)} regions, "
          f"predicted {plan.predicted_time_us:.1f} us")
    print(f"  plan saved to {plan_path} "
          f"({plan_path.stat().st_size / 1e3:.0f} kB, weights excluded)")

    print("\nFirst run from the plan file ...")
    first = PlanExecutor(plan_path).run()
    print(f"  {first.makespan_us:.1f} us")

    print("\nSecond run from the same plan file ...")
    second = PlanExecutor(plan_path).run()
    assert second.makespan_us == first.makespan_us
    print(f"  {second.makespan_us:.1f} us -- identical makespan, "
          "and the executor never imports the search subsystem")

    print("\nRe-compile with a fresh toolchain over the same cache ...")
    warm = Compiler(PimFlowConfig(mechanism="pimflow", cache_dir=cache_dir))
    replayed = warm.build_plan(model, model_name=model_name)
    stats = warm.cache.stats()
    print(f"  {warm.engine.run_count} simulator invocations "
          f"(cold compile needed {cold_sims}): second compile skips "
          "profiling entirely")
    print(f"  cache: {stats['entries']} entries, {stats['hits']} hits, "
          f"{stats['misses']} misses")
    assert warm.engine.run_count == 0
    assert replayed.predicted_time_us == plan.predicted_time_us
    print(f"  predicted {replayed.predicted_time_us:.1f} us -- "
          "same plan as the cold compile")


if __name__ == "__main__":
    main()
