"""Layer exploration: how one convolution behaves across split ratios.

Reproduces, for a single 1x1 convolution, the measurement the search
engine performs: the MD-DP execution time at every GPU/PIM split ratio,
shown as a text chart next to the pure-GPU and pure-PIM anchors.  Also
verifies numerically that the split transformation computes exactly
what the original layer computes.

Run:  python examples/layer_exploration.py
"""

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.numerical import execute
from repro.search.profiler import profile_split
from repro.transform.memopt import optimize_memory
from repro.transform.split import apply_mddp

# A mid-network MobileNet-style pointwise layer: the regime where
# neither GPU nor PIM dominates and MD-DP pays off.
H, CIN, COUT = 14, 192, 1152


def build_layer():
    b = GraphBuilder("layer", seed=42)
    x = b.input("x", (1, H, H, CIN))
    y = b.conv(x, cout=COUT, kernel=1, name="conv")
    b.output(y)
    return b.build()


def main() -> None:
    graph = build_layer()
    flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))

    print(f"Profiling a 1x1 conv ({H}x{H}x{CIN} -> {COUT}) at 10% ratio "
          f"intervals ...\n")
    ratios = [round(0.1 * i, 1) for i in range(11)]
    times = profile_split(graph, "conv", flow.engine, ratios)

    worst = max(times.values())
    print("GPU share   time (us)")
    for ratio in ratios:
        t = times[ratio]
        bar = "#" * int(40 * t / worst)
        tag = {0.0: "  <- full PIM", 1.0: "  <- full GPU"}.get(ratio, "")
        print(f"  {int(ratio * 100):3d}%    {t:8.2f}  {bar}{tag}")

    best = min(times, key=times.get)
    print(f"\nBest: {int(best * 100)}% GPU / {int((1 - best) * 100)}% PIM "
          f"at {times[best]:.2f} us "
          f"({times[1.0] / times[best]:.2f}x vs GPU, "
          f"{times[0.0] / times[best]:.2f}x vs PIM)")

    print("\nVerifying the transformation is semantics-preserving ...")
    rng = np.random.default_rng(0)
    feed = {"x": rng.standard_normal((1, H, H, CIN))}
    reference = execute(graph, feed)
    transformed = optimize_memory(apply_mddp(graph, "conv", best))
    result = execute(transformed, feed)
    for name in reference:
        np.testing.assert_allclose(reference[name], result[name],
                                   rtol=1e-3, atol=1e-3)
    elided = sum(1 for n in transformed.nodes if n.attr("elided"))
    print(f"  outputs match; {elided} Slice/Concat ops elided by the "
          f"memory-layout optimizer")


if __name__ == "__main__":
    main()
