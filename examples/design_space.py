"""Hardware design-space exploration (artifact Appendix A.7).

Sweeps the two main hardware knobs the paper studies:

1. The GPU/PIM memory-channel split of the 32-channel memory (Fig. 13).
2. The PIM command-level optimizations (Fig. 14): GWRITE latency
   hiding and the number of global buffers.

Run:  python examples/design_space.py
"""

from repro.analysis.sweep import channel_split_sweep
from repro.models import build_model
from repro.pim.config import PimOptimizations
from repro.pimflow import PimFlow, PimFlowConfig


def channel_sweep(model, baseline_us):
    print("\n--- GPU/PIM channel split (32 channels total) ---")
    print("PIM channels   speedup vs 32-channel GPU")
    sweep = channel_split_sweep(model, (4, 8, 12, 16, 20, 24, 28))
    for pim_channels, speedup in sweep.items():
        bar = "#" * int(30 * speedup / 2.0)
        print(f"    {pim_channels:4d}        {speedup:5.2f}x  {bar}")
    best = max(sweep, key=sweep.get)
    print(f"  -> best split: {best} PIM channels "
          f"(the paper lands on 16)")


def command_opt_sweep(model, baseline_us):
    print("\n--- PIM command optimizations (Newton+ offloading) ---")
    configs = {
        "1 buffer, serial commands   ": PimOptimizations(),
        "1 buffer, latency hiding    ": PimOptimizations(
            gwrite_latency_hiding=True),
        "4 buffers, serial commands  ": PimOptimizations(
            num_gwrite_buffers=4),
        "4 buffers + hiding (Newton++)": PimOptimizations(
            num_gwrite_buffers=4, gwrite_latency_hiding=True,
            strided_gwrite=True),
    }
    for label, opts in configs.items():
        cfg = PimFlowConfig(mechanism="newton+", pim_opts=opts)
        t = PimFlow(cfg).run(model).makespan_us
        print(f"  {label} {baseline_us / t:5.2f}x vs GPU")


def main() -> None:
    model = build_model("mobilenet-v2")
    print("Model: MobileNetV2 (batch 1)")
    baseline_us = PimFlow(PimFlowConfig(mechanism="gpu")).run(model).makespan_us
    print(f"GPU baseline: {baseline_us:.1f} us")
    channel_sweep(model, baseline_us)
    command_opt_sweep(model, baseline_us)


if __name__ == "__main__":
    main()
