"""Model-type study: BERT FC layers on DRAM-PIM (paper Fig. 16).

Transformer encoders are FC-dominated — the original sweet spot for
DRAM-PIM.  This example compares Newton++-style full offloading with
PIMFlow's MD-DP splitting for two sequence lengths and prints the
per-layer-class decisions, reproducing the paper's observation that
short inputs are fully-offload territory while longer inputs open room
for GPU/PIM splits.

Run:  python examples/bert_offload.py
"""

from collections import Counter

from repro import PimFlow, PimFlowConfig, build_model


def classify(name: str) -> str:
    for tag in ("_q", "_k", "_v", "_attn_out", "_ff1", "_ff2"):
        if tag in name:
            return tag.lstrip("_")
    return "classifier"


def study(model_name: str) -> None:
    print(f"\n=== {model_name} ===")
    model = build_model(model_name)
    baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(model)

    for mechanism in ("newton++", "pimflow"):
        flow = PimFlow(PimFlowConfig(mechanism=mechanism))
        compiled = flow.compile(model)
        result = flow.engine.run(compiled.graph)
        speedup = baseline.makespan_us / result.makespan_us
        print(f"{mechanism:10s}: {result.makespan_us:9.1f} us "
              f"({speedup:.2f}x vs GPU)")
        if mechanism == "pimflow":
            placement = Counter()
            for d in compiled.decisions:
                if d.mode != "split":
                    continue
                kind = classify(d.nodes[0])
                if d.ratio_gpu == 0.0:
                    placement[f"{kind}: full PIM"] += 1
                else:
                    placement[f"{kind}: split {int(d.ratio_gpu * 100)}/"
                              f"{int((1 - d.ratio_gpu) * 100)}"] += 1
            for key, count in sorted(placement.items()):
                print(f"    {key:28s} x{count}")


def main() -> None:
    print("BERT-base encoder stack, batch 1 "
          "(q/k/v/attn_out: 768x768, ff1: 768x3072, ff2: 3072x768)")
    study("bert-seq3")
    study("bert-seq64")


if __name__ == "__main__":
    main()
