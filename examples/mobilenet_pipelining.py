"""Pipelined execution of a MobileNetV2 inverted-residual block.

Finds the 1x1-DW pipelining patterns in MobileNetV2, pipelines one
across GPU and DRAM-PIM, and prints the resulting two-device schedule
as a text Gantt chart — the stage of the depthwise conv on the GPU
overlapping the 1x1 stages on PIM is exactly the paper's Fig. 5/11
mechanism.

Run:  python examples/mobilenet_pipelining.py
"""

import numpy as np

from repro.analysis.gantt import render_gantt
from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.numerical import execute
from repro.search.profiler import extract_subgraph
from repro.transform.memopt import optimize_memory
from repro.transform.patterns import find_pipeline_candidates
from repro.transform.pipeline import pipeline_chain


def main() -> None:
    flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
    model = flow.prepare(build_model("mobilenet-v2"))

    patterns = find_pipeline_candidates(model)
    print(f"MobileNetV2 has {len(patterns)} pipelining candidate subgraphs")
    kinds = {}
    for p in patterns:
        kinds[p.kind] = kinds.get(p.kind, 0) + 1
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:12s} x{count}")

    # Scan the Type 1 (1x1-DW) patterns — the winning kind — and pick
    # the instance where pipelining pays off most, as the search would.
    type1 = [p for p in patterns if p.kind == "1x1-dw"]
    best = None
    for pattern in type1[len(type1) // 2:]:
        region = extract_subgraph(model, pattern.chain)
        serial = region.clone()
        for node in serial.nodes:
            node.device = "gpu"
        serial_time = flow.engine.run(serial).makespan_us
        pipelined = optimize_memory(pipeline_chain(region, pattern.chain,
                                                   num_stages=2))
        result = flow.engine.run(pipelined)
        gain = serial_time / result.makespan_us
        if best is None or gain > best[0]:
            best = (gain, pattern, serial_time, pipelined, result)
    gain, pattern, serial_time, pipelined, result = best
    print(f"\nBest pipelining instance: {' -> '.join(pattern.chain)} "
          f"(2 stages)")

    print(f"\n  GPU-only chain: {serial_time:7.2f} us")
    print(f"  pipelined:      {result.makespan_us:7.2f} us "
          f"({serial_time / result.makespan_us:.2f}x)")
    print("\nSchedule ('#' GPU kernels, '=' PIM kernels):")
    for line in render_gantt(result):
        print("  " + line)

    print("\nVerifying numerical equivalence of the pipelined subgraph ...")
    rng = np.random.default_rng(1)
    region = extract_subgraph(model, pattern.chain)
    feed = {name: rng.standard_normal(region.tensors[name].shape)
            for name in region.inputs}
    ref = execute(region, feed)
    out = execute(pipelined, feed)
    for name in ref:
        np.testing.assert_allclose(ref[name], out[name], rtol=1e-3, atol=1e-3)
    print("  outputs match")


if __name__ == "__main__":
    main()
