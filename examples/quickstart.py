"""Quickstart: compile and run a CNN model on the PIM-enabled GPU memory.

Builds MobileNetV2, runs the GPU-only baseline and the full PIMFlow
toolchain (profile -> Algorithm-1 solve -> graph transformation ->
mixed-parallel execution), and reports the speedup, energy saving, and
a summary of the execution-mode decisions.

Run:  python examples/quickstart.py [model-name]
"""

import sys
from collections import Counter

from repro import PimFlow, PimFlowConfig, build_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "mobilenet-v2"
    print(f"Building {model_name} ...")
    model = build_model(model_name)
    print(f"  {len(model)} nodes, "
          f"{sum(v.num_bytes for k, v in model.tensors.items() if k in model.initializers) / 1e6:.1f} MB weights")

    print("\nGPU-only baseline (32-channel memory) ...")
    baseline = PimFlow(PimFlowConfig(mechanism="gpu")).run(model)
    print(f"  {baseline.makespan_us:8.1f} us, "
          f"{baseline.energy.total_mj:6.2f} mJ")

    print("\nPIMFlow (16 GPU + 16 PIM channels) ...")
    flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
    compiled = flow.compile(model)
    result = flow.engine.run(compiled.graph)
    print(f"  {result.makespan_us:8.1f} us, {result.energy.total_mj:6.2f} mJ")
    print(f"  GPU busy {result.gpu_busy_us:.1f} us | "
          f"PIM busy {result.pim_busy_us:.1f} us | "
          f"overlap {result.overlap_us:.1f} us")

    modes = Counter(d.mode for d in compiled.decisions)
    splits = [d for d in compiled.decisions if d.mode == "split"]
    offloads = sum(1 for d in splits if d.ratio_gpu == 0.0)
    print("\nExecution-mode decisions:")
    print(f"  {modes.get('gpu', 0)} regions on GPU, "
          f"{len(splits) - offloads} MD-DP splits, "
          f"{offloads} full PIM offloads, "
          f"{modes.get('pipeline', 0)} pipelined chains")

    speedup = baseline.makespan_us / result.makespan_us
    saving = 1 - result.energy.total_mj / baseline.energy.total_mj
    print(f"\n==> {speedup:.2f}x speedup, {saving * 100:.0f}% energy saving")


if __name__ == "__main__":
    main()
