"""Tests for the weight-placement planner."""

import pytest

from repro.models import build_model
from repro.pim.config import NEWTON_PLUS_PLUS, PimConfig
from repro.pim.placement import (
    PlacementError,
    PlacementPlan,
    layer_rows,
    plan_placement,
)
from repro.pimflow import PimFlow, PimFlowConfig


class TestLayerRows:
    def test_rows_cover_weights(self, small_conv_graph):
        cfg = PimConfig()
        rows = layer_rows("c0", small_conv_graph, cfg, NEWTON_PLUS_PLUS)
        gemv_elems = 3 * 3 * 8 * 16  # K x N of the lowered filter
        covered = sum(rows.values()) * cfg.weights_per_activation
        assert covered >= gemv_elems

    def test_wide_layer_spreads_channels(self, fc_graph):
        rows = layer_rows("fc0", fc_graph, PimConfig(), NEWTON_PLUS_PLUS)
        assert len(rows) == 16  # 48 output columns over 16 channels

    def test_at_least_one_row_per_used_channel(self, small_conv_graph):
        rows = layer_rows("c0", small_conv_graph, PimConfig(), NEWTON_PLUS_PLUS)
        assert all(r >= 1 for r in rows.values())


class TestPlan:
    def test_capacity_enforced(self):
        plan = PlacementPlan(config=PimConfig())
        cap = plan.rows_per_channel_capacity
        plan.place("a", {0: cap})
        with pytest.raises(PlacementError):
            plan.place("b", {0: 1})

    def test_partial_failure_leaves_state_clean(self):
        plan = PlacementPlan(config=PimConfig())
        cap = plan.rows_per_channel_capacity
        plan.place("a", {0: cap - 1})
        with pytest.raises(PlacementError):
            plan.place("b", {0: 5, 1: 5})
        # Channel 1 must not have been charged by the failed placement.
        assert plan.used_rows.get(1, 0) == 0

    def test_utilization_monotone(self):
        plan = PlacementPlan(config=PimConfig())
        assert plan.utilization() == 0.0
        plan.place("a", {0: 100})
        u1 = plan.utilization()
        plan.place("b", {0: 100})
        assert plan.utilization() > u1


class TestModelPlacement:
    @pytest.mark.parametrize("model", ["toy", "mobilenet-v2", "resnet-50"])
    def test_evaluated_models_fit(self, model):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        graph = flow.prepare(build_model(model))
        plan = plan_placement(graph, flow.pim.config, flow.pim.opts)
        assert plan.utilization() < 1.0
        assert len(plan.layers) > 0

    def test_vgg16_fc_heavy_but_fits(self):
        # VGG16's 25088x4096 FC is the stress case: ~100M fp16 weights.
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        graph = flow.prepare(build_model("vgg-16"))
        plan = plan_placement(graph, flow.pim.config, flow.pim.opts)
        assert 0.0 < plan.utilization() < 1.0


class TestCompileIntegration:
    def test_compile_checks_placement(self):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     check_placement=True))
        compiled = flow.compile(build_model("toy"))  # must not raise
        assert compiled.graph is not None

    def test_placement_check_can_be_disabled(self):
        flow = PimFlow(PimFlowConfig(mechanism="pimflow",
                                     check_placement=False))
        compiled = flow.compile(build_model("toy"))
        assert compiled.graph is not None
