"""Tests for makespan-aware decision refinement."""

import pytest

from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.search.apply import apply_decisions
from repro.search.refine import refine_decisions
from repro.search.solver import Decision


@pytest.fixture(scope="module")
def compiled_toy():
    flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))
    toy = flow.prepare(build_model("toy"))
    return flow, toy, flow.compile(toy)


class TestRefine:
    def test_never_worse(self, compiled_toy):
        flow, toy, compiled = compiled_toy
        baseline = flow.engine.run(compiled.graph).makespan_us
        refined, time_us = refine_decisions(toy, compiled.decisions,
                                            flow.engine)
        assert time_us <= baseline + 1e-9

    def test_refined_decisions_apply_cleanly(self, compiled_toy):
        flow, toy, compiled = compiled_toy
        refined, time_us = refine_decisions(toy, compiled.decisions,
                                            flow.engine)
        g = apply_decisions(toy, refined)
        g.validate()
        assert flow.engine.run(g).makespan_us == pytest.approx(time_us)

    def test_ratios_stay_in_range(self, compiled_toy):
        flow, toy, compiled = compiled_toy
        refined, _ = refine_decisions(toy, compiled.decisions, flow.engine,
                                      step=0.1, rounds=3)
        for d in refined:
            if d.mode == "split":
                assert 0.0 <= d.ratio_gpu <= 1.0

    def test_non_split_decisions_untouched(self, compiled_toy):
        flow, toy, compiled = compiled_toy
        refined, _ = refine_decisions(toy, compiled.decisions, flow.engine)
        for before, after in zip(compiled.decisions, refined):
            if before.mode != "split":
                assert before == after

    def test_finds_obvious_improvement(self):
        """Start from a deliberately bad ratio; refinement must recover."""
        flow = PimFlow(PimFlowConfig(mechanism="pimflow-md"))
        toy = flow.prepare(build_model("toy"))
        compiled = flow.compile(toy)
        worsened = []
        for d in compiled.decisions:
            if d.mode == "split" and d.ratio_gpu is not None and \
                    0.0 < d.ratio_gpu < 1.0:
                worsened.append(Decision(d.nodes, "split", d.time_us,
                                         ratio_gpu=0.9, stages=d.stages))
            else:
                worsened.append(d)
        bad_time = flow.engine.run(apply_decisions(toy, worsened)).makespan_us
        refined, good_time = refine_decisions(toy, worsened, flow.engine,
                                              rounds=8)
        assert good_time < bad_time
