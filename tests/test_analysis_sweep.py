"""Tests for the design-space sweep helpers."""

import pytest

from repro.analysis.sweep import (
    channel_split_sweep,
    mechanism_comparison,
    stage_count_sweep,
)
from repro.models import build_model


@pytest.fixture(scope="module")
def toy():
    return build_model("toy")


class TestMechanismComparison:
    def test_rows_complete(self, toy):
        rows = mechanism_comparison(toy, mechanisms=("gpu", "newton++",
                                                     "pimflow"))
        assert set(rows) == {"gpu", "newton++", "pimflow"}
        for row in rows.values():
            assert row["time_us"] > 0
            assert row["energy_mj"] > 0

    def test_speedup_normalized_to_first(self, toy):
        rows = mechanism_comparison(toy, mechanisms=("gpu", "pimflow"))
        assert rows["gpu"]["speedup"] == pytest.approx(1.0)
        assert rows["pimflow"]["speedup"] > 0


class TestChannelSplitSweep:
    def test_sweep_shape(self, toy):
        sweep = channel_split_sweep(toy, (8, 16, 24))
        assert set(sweep) == {8, 16, 24}
        assert all(v > 0 for v in sweep.values())


class TestStageCountSweep:
    def test_two_stages_best_or_equal(self, toy):
        sweep = stage_count_sweep(toy, (2, 4))
        assert sweep[2] <= sweep[4] * 1.05
