"""Tests for the measurement table."""

import pytest

from repro.search.table import MeasurementTable, RegionMeasurement


def _m(start="n0", span=1, mode="gpu", time_us=10.0, **kw):
    return RegionMeasurement(start=start, span=span, mode=mode,
                             time_us=time_us, **kw)


class TestRegionMeasurement:
    def test_split_requires_ratio(self):
        with pytest.raises(ValueError):
            RegionMeasurement("n", 1, "split", 1.0)

    def test_pipeline_requires_chain(self):
        with pytest.raises(ValueError):
            RegionMeasurement("n", 2, "pipeline", 1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RegionMeasurement("n", 1, "magic", 1.0)


class TestTable:
    def test_best_sorted_by_time(self):
        t = MeasurementTable()
        t.add(_m(time_us=10.0))
        t.add(_m(mode="split", ratio_gpu=0.5, time_us=4.0))
        t.add(_m(mode="split", ratio_gpu=0.3, time_us=6.0))
        assert t.best("n0", 1).time_us == 4.0
        assert [m.time_us for m in t.options("n0", 1)] == [4.0, 6.0, 10.0]

    def test_missing_region(self):
        assert MeasurementTable().best("x", 1) is None

    def test_spans_at(self):
        t = MeasurementTable()
        t.add(_m(span=1))
        t.add(_m(span=3, mode="pipeline", chain=("n0", "n1", "n2")))
        assert t.spans_at("n0") == [1, 3]

    def test_merge(self):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(time_us=5.0))
        b.add(_m(start="n1", time_us=7.0))
        a.merge(b)
        assert len(a) == 2

    def test_round_trip(self, tmp_path):
        t = MeasurementTable()
        t.add(_m(time_us=5.0))
        t.add(_m(mode="split", ratio_gpu=0.2, time_us=3.0))
        t.add(_m(span=2, mode="pipeline", chain=("n0", "n1"), stages=3,
                 time_us=2.0))
        path = tmp_path / "table.json"
        t.save(path)
        loaded = MeasurementTable.load(path)
        assert len(loaded) == 3
        best = loaded.best("n0", 2)
        assert best.mode == "pipeline"
        assert best.chain == ("n0", "n1")
        assert best.stages == 3


class TestMergeCollisions:
    def test_merge_keeps_lower_latency_duplicate(self):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(mode="split", ratio_gpu=0.5, time_us=9.0))
        b.add(_m(mode="split", ratio_gpu=0.5, time_us=4.0))
        a.merge(b)
        assert len(a) == 1
        assert a.best("n0", 1).time_us == 4.0

    def test_merge_keeps_existing_when_better(self):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(time_us=3.0))
        b.add(_m(time_us=8.0))
        a.merge(b)
        assert len(a) == 1
        assert a.best("n0", 1).time_us == 3.0

    def test_merge_logs_material_collision(self, caplog):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(time_us=9.0))
        b.add(_m(time_us=4.0))
        with caplog.at_level("WARNING", logger="repro.search.table"):
            a.merge(b)
        assert any("duplicate measurement" in r.message for r in caplog.records)

    def test_merge_identical_times_logged_quietly(self, caplog):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(time_us=5.0))
        b.add(_m(time_us=5.0))
        with caplog.at_level("WARNING", logger="repro.search.table"):
            a.merge(b)
        assert not caplog.records
        assert len(a) == 1

    def test_different_options_are_not_duplicates(self):
        a, b = MeasurementTable(), MeasurementTable()
        a.add(_m(mode="split", ratio_gpu=0.3, time_us=5.0))
        b.add(_m(mode="split", ratio_gpu=0.5, time_us=5.0))
        a.merge(b)
        assert len(a) == 2


class TestFingerprintField:
    def test_fingerprint_round_trips(self, tmp_path):
        t = MeasurementTable()
        t.add(_m(fingerprint="abc123"))
        t.add(_m(start="n1", time_us=2.0))
        path = tmp_path / "table.json"
        t.save(path)
        loaded = MeasurementTable.load(path)
        by_start = {m.start: m for m in loaded.all_measurements()}
        assert by_start["n0"].fingerprint == "abc123"
        assert by_start["n1"].fingerprint is None

    def test_fingerprint_not_part_of_identity(self):
        a = _m(fingerprint="aaa", time_us=5.0)
        b = _m(fingerprint="bbb", time_us=3.0)
        assert a.identity == b.identity
        t = MeasurementTable()
        t.add(a)
        other = MeasurementTable()
        other.add(b)
        t.merge(other)
        assert len(t) == 1
        assert t.best("n0", 1).fingerprint == "bbb"


class TestTableErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MeasurementTable.load(tmp_path / "missing.json")
