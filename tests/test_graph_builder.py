"""Unit tests for the GraphBuilder."""

import numpy as np
from repro.graph.builder import GraphBuilder


class TestBuilder:
    def test_builds_valid_graph(self, small_conv_graph):
        small_conv_graph.validate()

    def test_conv_shapes(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        y = b.conv(x, cout=16, kernel=3, stride=2)
        assert b.graph.tensors[y].shape == (1, 7, 7, 16)

    def test_conv_same_padding_default(self):
        b = GraphBuilder()
        x = b.input("x", (1, 15, 15, 4))
        for k in (1, 3, 5, 7):
            y = b.conv(x, cout=4, kernel=k)
            assert b.graph.tensors[y].shape == (1, 15, 15, 4)

    def test_dwconv_is_depthwise(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 8, 6))
        b.dwconv(x, kernel=3, name="dw")
        node = b.graph.node("dw")
        assert node.attr("group") == 6
        w = b.graph.tensors[node.inputs[1]]
        assert w.shape == (3, 3, 1, 6)

    def test_gemm_bias_optional(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8))
        b.gemm(x, 4, bias=False, name="g0")
        b.gemm(x, 4, bias=True, name="g1")
        assert len(b.graph.node("g0").inputs) == 2
        assert len(b.graph.node("g1").inputs) == 3

    def test_weights_are_deterministic(self):
        def build():
            b = GraphBuilder(seed=11)
            x = b.input("x", (1, 4, 4, 2))
            b.conv(x, cout=3, kernel=3, name="c")
            return b.graph
        g1, g2 = build(), build()
        w1 = g1.initializers[g1.node("c").inputs[1]]
        w2 = g2.initializers[g2.node("c").inputs[1]]
        np.testing.assert_array_equal(w1, w2)

    def test_named_nodes(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 4, 2))
        out = b.conv(x, cout=2, name="myconv")
        assert out == "myconv_out"
        assert b.graph.node("myconv").op_type == "Conv"

    def test_relu6_is_clip(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        b.gemm(x, 4, name="g")
        b.relu6("g_out", name="r6")
        node = b.graph.node("r6")
        assert node.op_type == "Clip"
        assert node.attr("min") == 0.0 and node.attr("max") == 6.0

    def test_swish_is_fused_silu(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 4, 2))
        b.swish(x, name="sw")
        assert b.graph.node("sw").op_type == "Silu"

    def test_concat_and_slice(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 4, 2))
        a = b.slice(x, axis=1, start=0, end=3)
        c = b.slice(x, axis=1, start=3, end=8)
        y = b.concat([a, c], axis=1)
        assert b.graph.tensors[y].shape == (1, 8, 4, 2)

    def test_build_validates(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        y = b.gemm(x, 2)
        b.output(y)
        g = b.build()
        assert g.outputs == [y]
