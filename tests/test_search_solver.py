"""Tests for the Algorithm-1 DP solver."""

import pytest

from repro.search.solver import solve
from repro.search.table import MeasurementTable, RegionMeasurement


def _table(entries):
    t = MeasurementTable()
    for e in entries:
        t.add(RegionMeasurement(**e))
    return t


class TestSolver:
    def test_picks_cheapest_per_node(self):
        order = ["a", "b"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=10.0),
            dict(start="a", span=1, mode="split", ratio_gpu=0.5, time_us=6.0),
            dict(start="b", span=1, mode="gpu", time_us=3.0),
            dict(start="b", span=1, mode="split", ratio_gpu=0.0, time_us=5.0),
        ])
        total, decisions = solve(order, t)
        assert total == pytest.approx(9.0)
        assert decisions[0].mode == "split" and decisions[0].ratio_gpu == 0.5
        assert decisions[1].mode == "gpu"

    def test_pipeline_chosen_when_cheaper(self):
        order = ["a", "b", "c"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=5.0),
            dict(start="b", span=1, mode="gpu", time_us=5.0),
            dict(start="c", span=1, mode="gpu", time_us=5.0),
            dict(start="a", span=3, mode="pipeline", chain=("a", "b", "c"),
                 time_us=9.0),
        ])
        total, decisions = solve(order, t)
        assert total == pytest.approx(9.0)
        assert len(decisions) == 1
        assert decisions[0].mode == "pipeline"
        assert decisions[0].nodes == ("a", "b", "c")

    def test_pipeline_skipped_when_more_expensive(self):
        order = ["a", "b"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=2.0),
            dict(start="b", span=1, mode="gpu", time_us=2.0),
            dict(start="a", span=2, mode="pipeline", chain=("a", "b"),
                 time_us=10.0),
        ])
        total, decisions = solve(order, t)
        assert total == pytest.approx(4.0)
        assert all(d.mode == "gpu" for d in decisions)

    def test_overlapping_pipelines_resolved_optimally(self):
        # Two overlapping pipeline options; DP must pick the best tiling.
        order = ["a", "b", "c"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=4.0),
            dict(start="b", span=1, mode="gpu", time_us=4.0),
            dict(start="c", span=1, mode="gpu", time_us=4.0),
            dict(start="a", span=2, mode="pipeline", chain=("a", "b"),
                 time_us=5.0),
            dict(start="b", span=2, mode="pipeline", chain=("b", "c"),
                 time_us=3.0),
        ])
        total, decisions = solve(order, t)
        # a alone (4) + pipeline b-c (3) = 7 beats pipeline a-b (5) + c (4).
        assert total == pytest.approx(7.0)
        assert decisions[0].mode == "gpu"
        assert decisions[1].nodes == ("b", "c")

    def test_pipeline_with_mismatched_chain_ignored(self):
        order = ["a", "x", "b"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=2.0),
            dict(start="x", span=1, mode="gpu", time_us=2.0),
            dict(start="b", span=1, mode="gpu", time_us=2.0),
            # Chain (a, b) is not contiguous in the order; must be skipped.
            dict(start="a", span=2, mode="pipeline", chain=("a", "b"),
                 time_us=0.1),
        ])
        total, decisions = solve(order, t)
        assert total == pytest.approx(6.0)

    def test_uncovered_node_rejected(self):
        t = _table([dict(start="a", span=1, mode="gpu", time_us=1.0)])
        with pytest.raises(ValueError):
            solve(["a", "b"], t)

    def test_decisions_cover_order_exactly(self):
        order = [f"n{i}" for i in range(10)]
        entries = [dict(start=n, span=1, mode="gpu", time_us=1.0)
                   for n in order]
        entries.append(dict(start="n2", span=3, mode="pipeline",
                            chain=("n2", "n3", "n4"), time_us=1.5))
        total, decisions = solve(order, _table(entries))
        covered = [n for d in decisions for n in d.nodes]
        assert covered == order

    def test_dp_is_globally_optimal_vs_greedy(self):
        # A greedy left-to-right chooser would take the first pipeline
        # (a, b) since 4 < 3+3; DP sees the better (b, c) option.
        order = ["a", "b", "c"]
        t = _table([
            dict(start="a", span=1, mode="gpu", time_us=3.0),
            dict(start="b", span=1, mode="gpu", time_us=3.0),
            dict(start="c", span=1, mode="gpu", time_us=3.0),
            dict(start="a", span=2, mode="pipeline", chain=("a", "b"),
                 time_us=4.0),
            dict(start="b", span=2, mode="pipeline", chain=("b", "c"),
                 time_us=1.0),
        ])
        total, _ = solve(order, t)
        assert total == pytest.approx(4.0)  # a(3) + pipeline b-c (1)
