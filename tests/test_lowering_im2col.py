"""Tests for convolution lowering (im2col)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.ops import ShapeError
from repro.lowering.im2col import (
    im2col_matrix,
    lower_conv,
    lower_gemm,
    lower_node,
    lowered_weight_matrix,
)
from repro.runtime.numerical import conv2d_nhwc


def _conv_graph(h=8, w=8, cin=4, cout=6, kernel=3, stride=1, pad=None,
                group=1):
    b = GraphBuilder(seed=2)
    x = b.input("x", (1, h, w, cin))
    y = b.conv(x, cout=cout, kernel=kernel, stride=stride, pad=pad,
               group=group, bias=False, name="c")
    b.output(y)
    return b.build()


class TestLowerConv:
    def test_pointwise_descriptor(self):
        g = _conv_graph(kernel=1, cin=16, cout=32)
        gemv = lower_conv(g.node("c"), g)
        assert gemv.rows == 64
        assert gemv.k == 16
        assert gemv.n == 32
        assert not gemv.strided
        assert gemv.contiguous_k == 16

    def test_3x3_descriptor(self):
        g = _conv_graph(kernel=3, cin=4, cout=8)
        gemv = lower_conv(g.node("c"), g)
        assert gemv.k == 3 * 3 * 4
        assert gemv.strided
        assert gemv.contiguous_k == 4

    def test_macs(self):
        g = _conv_graph(kernel=3, cin=4, cout=8)
        gemv = lower_conv(g.node("c"), g)
        assert gemv.macs == 64 * 36 * 8

    def test_stride_reduces_rows(self):
        g = _conv_graph(kernel=3, stride=2)
        gemv = lower_conv(g.node("c"), g)
        assert gemv.rows == 16

    def test_depthwise_rejected(self):
        g = _conv_graph(cin=4, cout=4, group=4)
        with pytest.raises(ShapeError):
            lower_conv(g.node("c"), g)

    def test_wrong_op_rejected(self, fc_graph):
        with pytest.raises(ValueError):
            lower_conv(fc_graph.node("fc0"), fc_graph)


class TestLowerGemm:
    def test_descriptor(self, fc_graph):
        gemv = lower_gemm(fc_graph.node("fc0"), fc_graph)
        assert (gemv.rows, gemv.k, gemv.n) == (1, 64, 48)
        assert not gemv.strided

    def test_lower_node_dispatch(self, fc_graph, small_conv_graph):
        assert lower_node(fc_graph.node("fc0"), fc_graph).k == 64
        assert lower_node(small_conv_graph.node("c0"), small_conv_graph).k == 72


class TestIm2colNumerics:
    def test_matches_direct_convolution(self, rng):
        x = rng.standard_normal((1, 8, 8, 4)).astype(np.float32)
        w = rng.standard_normal((3, 3, 4, 6)).astype(np.float32)
        direct = conv2d_nhwc(x, w, None, (1, 1), (1, 1, 1, 1), 1)
        cols = im2col_matrix(x, (3, 3), (1, 1), (1, 1, 1, 1))
        flat = cols @ lowered_weight_matrix(w)
        np.testing.assert_allclose(flat.reshape(direct.shape), direct,
                                   rtol=1e-4, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(3, 10),
        cin=st.integers(1, 5),
        cout=st.integers(1, 6),
        kernel=st.sampled_from([1, 2, 3, 5]),
        stride=st.sampled_from([1, 2]),
        pad=st.integers(0, 2),
    )
    def test_property_equivalence(self, h, cin, cout, kernel, stride, pad):
        if h + 2 * pad < kernel:
            return
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, h, h, cin)).astype(np.float32)
        w = rng.standard_normal((kernel, kernel, cin, cout)).astype(np.float32)
        direct = conv2d_nhwc(x, w, None, (stride, stride),
                             (pad, pad, pad, pad), 1)
        cols = im2col_matrix(x, (kernel, kernel), (stride, stride),
                             (pad, pad, pad, pad))
        flat = cols @ lowered_weight_matrix(w)
        np.testing.assert_allclose(flat.reshape(direct.shape), direct,
                                   rtol=1e-3, atol=1e-3)

    def test_column_ordering_is_khkwcin(self, rng):
        # Column index (i, j, c) must map to i*kw*cin + j*cin + c.
        x = np.zeros((1, 3, 3, 2), dtype=np.float32)
        x[0, 1, 2, 1] = 7.0
        cols = im2col_matrix(x, (3, 3), (1, 1), (1, 1, 1, 1))
        # Output position (1, 1) (center) sees x[1, 2, 1] at kernel
        # offset (i=1, j=2, c=1) -> column 1*3*2 + 2*2 + 1 = 11.
        row = 1 * 3 + 1
        assert cols[row, 11] == 7.0
