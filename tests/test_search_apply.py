"""Tests for applying solver decisions."""

import numpy as np
import pytest

from repro.runtime.numerical import execute
from repro.search.apply import apply_decisions
from repro.search.solver import Decision


class TestApplyDecisions:
    def test_gpu_decision_sets_devices(self, pointwise_chain_graph):
        decisions = [Decision(nodes=(n.name,), mode="gpu", time_us=1.0)
                     for n in pointwise_chain_graph.nodes]
        g = apply_decisions(pointwise_chain_graph, decisions)
        assert all(n.device == "gpu" for n in g.nodes)

    def test_split_decision_transforms(self, pointwise_chain_graph):
        decisions = [
            Decision(nodes=("pw1",), mode="split", time_us=1.0, ratio_gpu=0.5),
            Decision(nodes=("act1",), mode="gpu", time_us=1.0),
            Decision(nodes=("dw1",), mode="gpu", time_us=1.0),
            Decision(nodes=("act2",), mode="gpu", time_us=1.0),
            Decision(nodes=("pw2",), mode="split", time_us=1.0, ratio_gpu=0.0),
        ]
        g = apply_decisions(pointwise_chain_graph, decisions)
        g.validate()
        assert g.node("pw1__gpu").device == "gpu"
        assert g.node("pw1__pim").device == "pim"
        assert g.node("pw2").device == "pim"

    def test_pipeline_decision_transforms(self, pointwise_chain_graph):
        decisions = [
            Decision(nodes=("pw1", "act1", "dw1"), mode="pipeline",
                     time_us=1.0, stages=2),
            Decision(nodes=("act2",), mode="gpu", time_us=1.0),
            Decision(nodes=("pw2",), mode="gpu", time_us=1.0),
        ]
        g = apply_decisions(pointwise_chain_graph, decisions)
        g.validate()
        assert any("__pl_" in n.name for n in g.nodes)

    def test_memopt_applied_last(self, pointwise_chain_graph):
        decisions = [
            Decision(nodes=("pw1",), mode="split", time_us=1.0, ratio_gpu=0.5),
            Decision(nodes=("act1",), mode="gpu", time_us=1.0),
            Decision(nodes=("dw1",), mode="gpu", time_us=1.0),
            Decision(nodes=("act2",), mode="gpu", time_us=1.0),
            Decision(nodes=("pw2",), mode="gpu", time_us=1.0),
        ]
        g = apply_decisions(pointwise_chain_graph, decisions)
        movement = [n for n in g.nodes if n.op_type in ("Slice", "Concat")]
        assert movement and all(n.attr("elided") for n in movement)

    def test_combined_decisions_preserve_semantics(self, pointwise_chain_graph,
                                                   rng):
        decisions = [
            Decision(nodes=("pw1", "act1", "dw1"), mode="pipeline",
                     time_us=1.0, stages=2),
            Decision(nodes=("act2",), mode="gpu", time_us=1.0),
            Decision(nodes=("pw2",), mode="split", time_us=1.0, ratio_gpu=0.4),
        ]
        g = apply_decisions(pointwise_chain_graph, decisions)
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(pointwise_chain_graph, feed)
        out = execute(g, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

def test_unknown_mode_rejected(pointwise_chain_graph):
    bad = Decision(nodes=("pw1",), mode="gpu", time_us=1.0)
    object.__setattr__(bad, "mode", "teleport")
    with pytest.raises(ValueError):
        apply_decisions(pointwise_chain_graph, [bad])
