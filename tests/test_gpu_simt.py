"""Tests for the block-level SIMT simulator and its agreement with the
roofline model."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.gpu.config import RTX2060
from repro.gpu.kernels import node_cost
from repro.gpu.simt import (
    KernelLaunch,
    SimtGpu,
    launch_from_gemm,
    simulate_gemm_node,
)


def _gemm_graph(m, n, k):
    b = GraphBuilder(seed=1)
    x = b.input("x", (m, k))
    b.output(b.gemm(x, n, name="g"))
    return b.build()


class TestLaunchConstruction:
    def test_tile_counts(self):
        launch = launch_from_gemm(128, 128, 1024)
        assert launch.num_blocks == 2 * 2 * 2

    def test_small_gemm_single_block(self):
        launch = launch_from_gemm(1, 64, 64)
        assert launch.num_blocks == 1
        assert launch.flops_per_block == 2 * 1 * 64 * 64

    def test_invalid_launch_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(num_blocks=0, flops_per_block=1, bytes_per_block=1)


class TestScheduler:
    def test_single_wave(self):
        gpu = SimtGpu()
        launch = KernelLaunch(num_blocks=10, flops_per_block=1e6,
                              bytes_per_block=1e3)
        assert gpu.simulate(launch).waves == 1

    def test_wave_count(self):
        gpu = SimtGpu()
        cap = gpu.concurrent_blocks
        launch = KernelLaunch(num_blocks=cap * 3 + 1, flops_per_block=1e5,
                              bytes_per_block=1e2)
        assert gpu.simulate(launch).waves == 4

    def test_tail_wave_quantization(self):
        """cap+1 blocks cost nearly two full waves of a compute-bound
        kernel — the effect the roofline's utilization factor models."""
        gpu = SimtGpu()
        cap = gpu.concurrent_blocks
        per = KernelLaunch(num_blocks=cap, flops_per_block=1e6,
                           bytes_per_block=10.0)
        spill = KernelLaunch(num_blocks=cap + 1, flops_per_block=1e6,
                             bytes_per_block=10.0)
        t_full = gpu.simulate(per).time_us
        t_spill = gpu.simulate(spill).time_us
        assert t_spill > t_full * 1.2

    def test_compute_vs_memory_bound_classification(self):
        gpu = SimtGpu()
        compute = KernelLaunch(num_blocks=120, flops_per_block=1e7,
                               bytes_per_block=1e2)
        memory = KernelLaunch(num_blocks=120, flops_per_block=1e3,
                              bytes_per_block=1e6)
        assert gpu.simulate(compute).bound == "compute"
        assert gpu.simulate(memory).bound == "memory"

    def test_more_sms_faster_compute_bound(self):
        import dataclasses
        launch = KernelLaunch(num_blocks=600, flops_per_block=1e6,
                              bytes_per_block=1e2)
        small = SimtGpu(dataclasses.replace(RTX2060, num_sms=15))
        big = SimtGpu(dataclasses.replace(RTX2060, num_sms=60))
        assert big.simulate(launch).time_us < small.simulate(launch).time_us

    def test_fewer_channels_slower_memory_bound(self):
        launch = KernelLaunch(num_blocks=120, flops_per_block=1e3,
                              bytes_per_block=1e6)
        full = SimtGpu(RTX2060)
        half = SimtGpu(RTX2060.with_channels(16))
        assert half.simulate(launch).time_us > full.simulate(launch).time_us


class TestRooflineAgreement:
    """The SIMT scheduler and the roofline model must agree on regime
    and rough magnitude across the paper's kernel population."""

    @pytest.mark.parametrize("m,n,k", [
        (1, 4096, 4096),       # batch-1 FC
        (196, 1152, 192),      # mid-network 1x1 conv
        (784, 128, 1152),      # 3x3 conv, mid ResNet
        (12544, 96, 16),       # early mobile 1x1
        (196, 512, 4608),      # deep VGG conv
        (64, 3072, 768),       # BERT ff1 @ seq 64
    ])
    def test_magnitude_agreement(self, m, n, k):
        g = _gemm_graph(m, n, k)
        node = g.node("g")
        roofline = node_cost(node, g, RTX2060).time_us
        simt = simulate_gemm_node(node, g, RTX2060).time_us
        assert 0.3 < simt / roofline < 3.0, (m, n, k, simt, roofline)

    def test_memory_bound_gemv_agrees_on_bound(self):
        g = _gemm_graph(1, 4096, 4096)
        node = g.node("g")
        assert node_cost(node, g, RTX2060).bound == "memory"
        assert simulate_gemm_node(node, g, RTX2060).bound == "memory"

    def test_compute_bound_conv_agrees_on_bound(self):
        g = _gemm_graph(784, 512, 4608)
        node = g.node("g")
        assert node_cost(node, g, RTX2060).bound == "compute"
        assert simulate_gemm_node(node, g, RTX2060).bound == "compute"
