"""Unit tests for the operator registry and shape inference."""

import pytest

from repro.graph.node import Node
from repro.graph.ops import (
    OP_REGISTRY,
    ShapeError,
    conv_out_dim,
    infer_shapes,
    is_depthwise,
    is_pim_candidate,
)


def _conv_node(kernel=3, stride=1, pads=(1, 1, 1, 1), group=1):
    return Node("c", "Conv", ["x", "w"], ["y"], {
        "kernel_shape": (kernel, kernel),
        "strides": (stride, stride),
        "pads": pads,
        "group": group,
    })


class TestConvOutDim:
    def test_same_padding(self):
        assert conv_out_dim(14, 3, 1, 1, 1) == 14

    def test_stride_two(self):
        assert conv_out_dim(224, 3, 2, 1, 1) == 112

    def test_no_padding(self):
        assert conv_out_dim(14, 3, 1, 0, 0) == 12

    def test_kernel_seven(self):
        assert conv_out_dim(224, 7, 2, 3, 3) == 112

    def test_rejects_empty_output(self):
        with pytest.raises(ShapeError):
            conv_out_dim(2, 5, 1, 0, 0)


class TestConvInference:
    def test_basic(self):
        shapes = infer_shapes(_conv_node(), [(1, 14, 14, 8), (3, 3, 8, 16)])
        assert shapes == [(1, 14, 14, 16)]

    def test_stride(self):
        shapes = infer_shapes(_conv_node(stride=2),
                              [(1, 14, 14, 8), (3, 3, 8, 16)])
        assert shapes == [(1, 7, 7, 16)]

    def test_depthwise(self):
        shapes = infer_shapes(_conv_node(group=8),
                              [(1, 14, 14, 8), (3, 3, 1, 8)])
        assert shapes == [(1, 14, 14, 8)]

    def test_asymmetric_pads(self):
        node = _conv_node(pads=(1, 1, 0, 0))
        shapes = infer_shapes(node, [(1, 14, 14, 8), (3, 3, 8, 16)])
        assert shapes == [(1, 13, 13, 16)]

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ShapeError):
            infer_shapes(_conv_node(), [(1, 14, 14, 8), (3, 3, 4, 16)])

    def test_rejects_kernel_attr_mismatch(self):
        node = _conv_node(kernel=5)
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 14, 14, 8), (3, 3, 8, 16)])

    def test_bias_shape_checked(self):
        node = Node("c", "Conv", ["x", "w", "b"], ["y"],
                    {"kernel_shape": (1, 1), "strides": (1, 1),
                     "pads": (0, 0, 0, 0), "group": 1})
        infer_shapes(node, [(1, 4, 4, 8), (1, 1, 8, 16), (16,)])
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8), (1, 1, 8, 16), (8,)])


class TestGemmMatmul:
    def test_gemm(self):
        node = Node("g", "Gemm", ["x", "w"], ["y"])
        assert infer_shapes(node, [(1, 64), (64, 10)]) == [(1, 10)]

    def test_gemm_inner_mismatch(self):
        node = Node("g", "Gemm", ["x", "w"], ["y"])
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 64), (32, 10)])

    def test_matmul_batched(self):
        node = Node("m", "MatMul", ["a", "b"], ["y"])
        assert infer_shapes(node, [(2, 3, 8), (8, 5)]) == [(2, 3, 5)]


class TestElementwiseAndShape:
    def test_unary_preserves_shape(self):
        for op in ("Relu", "Sigmoid", "Clip", "Silu", "Identity", "Softmax"):
            node = Node("u", op, ["x"], ["y"])
            assert infer_shapes(node, [(1, 4, 4, 8)]) == [(1, 4, 4, 8)]

    def test_broadcast_binary(self):
        node = Node("a", "Add", ["x", "y"], ["z"])
        assert infer_shapes(node, [(1, 4, 4, 8), (8,)]) == [(1, 4, 4, 8)]
        assert infer_shapes(node, [(1, 1, 1, 8), (1, 4, 4, 8)]) == [(1, 4, 4, 8)]

    def test_broadcast_incompatible(self):
        node = Node("a", "Add", ["x", "y"], ["z"])
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8), (1, 4, 4, 7)])

    def test_batchnorm(self):
        node = Node("bn", "BatchNormalization",
                    ["x", "s", "b", "m", "v"], ["y"], {"epsilon": 1e-5})
        shapes = infer_shapes(node, [(1, 4, 4, 8), (8,), (8,), (8,), (8,)])
        assert shapes == [(1, 4, 4, 8)]
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8), (4,), (8,), (8,), (8,)])


class TestPoolsAndReductions:
    def test_maxpool(self):
        node = Node("p", "MaxPool", ["x"], ["y"],
                    {"kernel_shape": (2, 2), "strides": (2, 2)})
        assert infer_shapes(node, [(1, 8, 8, 4)]) == [(1, 4, 4, 4)]

    def test_maxpool_padded(self):
        node = Node("p", "MaxPool", ["x"], ["y"],
                    {"kernel_shape": (3, 3), "strides": (2, 2),
                     "pads": (1, 1, 1, 1)})
        assert infer_shapes(node, [(1, 112, 112, 64)]) == [(1, 56, 56, 64)]

    def test_global_average_pool(self):
        node = Node("g", "GlobalAveragePool", ["x"], ["y"])
        assert infer_shapes(node, [(1, 7, 7, 128)]) == [(1, 1, 1, 128)]

    def test_reduce_mean(self):
        node = Node("r", "ReduceMean", ["x"], ["y"],
                    {"axes": (1, 2), "keepdims": True})
        assert infer_shapes(node, [(1, 7, 7, 128)]) == [(1, 1, 1, 128)]
        node2 = Node("r", "ReduceMean", ["x"], ["y"],
                     {"axes": (1, 2), "keepdims": False})
        assert infer_shapes(node2, [(1, 7, 7, 128)]) == [(1, 128)]


class TestDataMovement:
    def test_flatten(self):
        node = Node("f", "Flatten", ["x"], ["y"])
        assert infer_shapes(node, [(1, 7, 7, 128)]) == [(1, 7 * 7 * 128)]

    def test_reshape_with_minus_one(self):
        node = Node("r", "Reshape", ["x"], ["y"], {"shape": (2, -1)})
        assert infer_shapes(node, [(1, 4, 4, 8)]) == [(2, 64)]

    def test_reshape_rejects_mismatch(self):
        node = Node("r", "Reshape", ["x"], ["y"], {"shape": (3, 5)})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8)])

    def test_transpose(self):
        node = Node("t", "Transpose", ["x"], ["y"], {"perm": (0, 3, 1, 2)})
        assert infer_shapes(node, [(1, 4, 5, 8)]) == [(1, 8, 4, 5)]

    def test_concat(self):
        node = Node("c", "Concat", ["a", "b"], ["y"], {"axis": 1})
        assert infer_shapes(node, [(1, 4, 4, 8), (1, 3, 4, 8)]) == [(1, 7, 4, 8)]

    def test_concat_rejects_mismatch(self):
        node = Node("c", "Concat", ["a", "b"], ["y"], {"axis": 1})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4, 4, 8), (1, 3, 5, 8)])

    def test_slice(self):
        node = Node("s", "Slice", ["x"], ["y"], {"axis": 1, "start": 2, "end": 5})
        assert infer_shapes(node, [(1, 8, 4, 8)]) == [(1, 3, 4, 8)]

    def test_slice_rejects_empty(self):
        node = Node("s", "Slice", ["x"], ["y"], {"axis": 1, "start": 5, "end": 5})
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 8, 4, 8)])

    def test_pad(self):
        node = Node("p", "Pad", ["x"], ["y"],
                    {"pads": ((0, 0), (1, 2), (0, 0), (0, 0))})
        assert infer_shapes(node, [(1, 4, 4, 8)]) == [(1, 7, 4, 8)]


class TestCandidateClassification:
    def test_regular_conv_is_candidate(self):
        node = _conv_node()
        assert is_pim_candidate(node, [(1, 14, 14, 8), (3, 3, 8, 16)])

    def test_depthwise_is_not_candidate(self):
        node = _conv_node(group=8)
        assert is_depthwise(node, [(1, 14, 14, 8)])
        assert not is_pim_candidate(node, [(1, 14, 14, 8), (3, 3, 1, 8)])

    def test_grouped_but_not_depthwise(self):
        node = _conv_node(group=2)
        assert not is_depthwise(node, [(1, 14, 14, 8)])
        assert is_pim_candidate(node, [(1, 14, 14, 8), (3, 3, 4, 16)])

    def test_gemm_is_candidate(self):
        node = Node("g", "Gemm", ["x", "w"], ["y"])
        assert is_pim_candidate(node, [(1, 64), (64, 10)])

    def test_relu_is_not_candidate(self):
        node = Node("r", "Relu", ["x"], ["y"])
        assert not is_pim_candidate(node, [(1, 4)])


class TestRegistry:
    def test_unregistered_op_rejected(self):
        node = Node("n", "NotAnOp", ["x"], ["y"])
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4)])

    def test_registry_covers_model_ops(self):
        for op in ("Conv", "Gemm", "MatMul", "Relu", "Clip", "Silu", "Add",
                   "Mul", "BatchNormalization", "MaxPool", "AveragePool",
                   "GlobalAveragePool", "Flatten", "Gemm", "Concat", "Slice",
                   "Pad", "Softmax"):
            assert op in OP_REGISTRY

    def test_input_count_checked(self):
        node = Node("n", "Relu", ["x"], ["y"])
        with pytest.raises(ShapeError):
            infer_shapes(node, [(1, 4), (1, 4)])
