"""Tests for the mixed-parallel execution engine."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.gpu.device import GpuDevice
from repro.pim.device import PimDevice
from repro.runtime.engine import ExecutionEngine
from repro.transform.memopt import optimize_memory
from repro.transform.split import apply_mddp


@pytest.fixture
def engine():
    return ExecutionEngine(GpuDevice(), PimDevice())


def _parallel_graph():
    """Two independent convs joined by Add: one GPU, one PIM."""
    b = GraphBuilder(seed=30)
    x = b.input("x", (1, 14, 14, 64))
    a = b.conv(x, cout=64, kernel=1, name="ca")
    c = b.conv(x, cout=64, kernel=1, name="cb")
    b.output(b.add(a, c, name="join"))
    g = b.build()
    g.node("ca").device = "gpu"
    g.node("cb").device = "pim"
    return g


class TestScheduling:
    def test_independent_nodes_overlap(self, engine):
        g = _parallel_graph()
        result = engine.run(g)
        ca = result.event("ca")
        cb = result.event("cb")
        # Both start immediately on their own devices; the PIM node pays
        # only the cross-device sync for its GPU-resident input.
        assert ca.start_us == 0.0
        assert cb.start_us == engine.sync_overhead_us
        assert result.overlap_us > 0

    def test_serial_when_same_device(self, engine):
        g = _parallel_graph()
        g.node("cb").device = "gpu"
        result = engine.run(g)
        ca, cb = result.event("ca"), result.event("cb")
        assert cb.start_us >= ca.finish_us or ca.start_us >= cb.finish_us

    def test_dependencies_respected(self, engine):
        g = _parallel_graph()
        result = engine.run(g)
        join = result.event("join")
        assert join.start_us >= result.event("ca").finish_us
        assert join.start_us >= result.event("cb").finish_us

    def test_makespan_is_max_output_time(self, engine):
        g = _parallel_graph()
        result = engine.run(g)
        assert result.makespan_us == result.event("join").finish_us

    def test_pim_placement_requires_candidate(self, engine):
        b = GraphBuilder(seed=31)
        x = b.input("x", (1, 14, 14, 8))
        y = b.relu(x, name="r")
        b.output(y)
        g = b.build()
        g.node("r").device = "pim"  # relu cannot run on PIM
        result = engine.run(g)
        assert result.event("r").device == "gpu"

    def test_engine_without_pim_runs_all_on_gpu(self):
        engine = ExecutionEngine(GpuDevice(), None)
        g = _parallel_graph()
        result = engine.run(g)
        assert result.pim_busy_us == 0.0
        assert result.event("cb").device == "gpu"


class TestElision:
    def test_elided_nodes_take_no_time(self, engine):
        b = GraphBuilder(seed=32)
        x = b.input("x", (1, 14, 14, 8))
        b.output(b.conv(x, cout=16, kernel=3, name="c"))
        g = optimize_memory(apply_mddp(b.build(), "c", 0.5))
        result = engine.run(g)
        for event in result.events:
            node = g.node(event.node)
            if node.attr("elided"):
                assert event.duration_us == 0.0
                assert event.device == "none"

    def test_memopt_improves_makespan(self, engine):
        b = GraphBuilder(seed=33)
        x = b.input("x", (1, 56, 56, 64))
        b.output(b.conv(x, cout=64, kernel=3, name="c"))
        split = apply_mddp(b.build(), "c", 0.5)
        with_opt = engine.run(optimize_memory(split)).makespan_us
        without_opt = engine.run(split).makespan_us
        assert with_opt < without_opt


class TestSyncAndEpilogue:
    def test_cross_device_sync_cost(self):
        g = _parallel_graph()
        fast = ExecutionEngine(GpuDevice(), PimDevice(), sync_overhead_us=0.0)
        slow = ExecutionEngine(GpuDevice(), PimDevice(), sync_overhead_us=5.0)
        assert slow.run(g).makespan_us > fast.run(g).makespan_us

    def test_pim_activation_epilogue_charged(self, engine):
        b = GraphBuilder(seed=34)
        x = b.input("x", (1, 14, 14, 64))
        b.output(b.conv(x, cout=64, kernel=1, name="c"))
        g = b.build()
        g.node("c").device = "pim"
        plain = engine.run(g).makespan_us
        g.node("c").attrs["activation"] = "relu"
        with_act = engine.run(g).makespan_us
        assert with_act > plain


class TestEnergyAccounting:
    def test_energy_components_populated(self, engine):
        result = engine.run(_parallel_graph())
        e = result.energy
        assert e.gpu_dynamic_mj > 0
        assert e.gpu_static_mj > 0
        assert e.pim_dynamic_mj > 0
        assert e.pim_static_mj > 0

    def test_static_energy_scales_with_makespan(self, engine):
        result = engine.run(_parallel_graph())
        expected = engine.gpu.energy_model.static_mj(result.makespan_us)
        assert result.energy.gpu_static_mj == pytest.approx(expected)

    def test_busy_times_bounded_by_makespan(self, engine):
        result = engine.run(_parallel_graph())
        assert result.gpu_busy_us <= result.makespan_us + 1e-9
        assert result.pim_busy_us <= result.makespan_us + 1e-9


class TestEventLookup:
    def test_unknown_node_raises_keyerror(self, engine):
        result = engine.run(_parallel_graph())
        with pytest.raises(KeyError, match="no schedule event"):
            result.event("nonexistent")

    def test_index_survives_event_list_growth(self, engine):
        """The lazy name->event index rebuilds if events are added."""
        from repro.runtime.engine import ScheduleEvent

        result = engine.run(_parallel_graph())
        assert result.event("ca").node == "ca"  # builds the index
        extra = ScheduleEvent("late", "Conv", "gpu", 0.0, 1.0)
        result.events.append(extra)
        assert result.event("late") is extra

    def test_lookup_agrees_with_linear_scan(self, engine):
        result = engine.run(_parallel_graph())
        for e in result.events:
            assert result.event(e.node) is e

    def test_index_excluded_from_equality(self, engine):
        g = _parallel_graph()
        a, b = engine.run(g), engine.run(g)
        a.event("ca")  # populate a's index only
        assert a == b


class TestRunCounter:
    def test_run_count_increments(self, engine):
        assert engine.run_count == 0
        g = _parallel_graph()
        engine.run(g)
        engine.run(g)
        assert engine.run_count == 2

    def test_run_plan_counts_and_matches_run(self, engine):
        from repro.pimflow import PimFlow, PimFlowConfig

        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        from repro.models import build_model

        toy = build_model("toy")
        plan = flow.build_plan(toy)
        direct = engine.run(plan.graph)
        via_plan = engine.run_plan(plan)
        assert engine.run_count == 2
        assert via_plan.makespan_us == direct.makespan_us


class TestHostIO:
    def test_host_transfers_add_latency(self):
        g = _parallel_graph()
        on_device = ExecutionEngine(GpuDevice(), PimDevice()).run(g)
        with_host = ExecutionEngine(GpuDevice(), PimDevice(),
                                    host_io=True).run(g)
        assert with_host.makespan_us > on_device.makespan_us
        in_bytes = 1 * 14 * 14 * 64 * 2
        out_bytes = in_bytes
        expected_extra = (in_bytes + out_bytes) / 16e3
        assert with_host.makespan_us - on_device.makespan_us == \
            pytest.approx(expected_extra, rel=0.01)

    def test_pcie_bandwidth_configurable(self):
        g = _parallel_graph()
        slow = ExecutionEngine(GpuDevice(), PimDevice(), host_io=True,
                               pcie_bytes_per_us=1e3).run(g)
        fast = ExecutionEngine(GpuDevice(), PimDevice(), host_io=True,
                               pcie_bytes_per_us=32e3).run(g)
        assert slow.makespan_us > fast.makespan_us
