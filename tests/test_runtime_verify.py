"""Tests for the equivalence-verification utility."""

import numpy as np
import pytest

from repro.models import build_model
from repro.pimflow import PimFlow, PimFlowConfig
from repro.runtime.verify import (
    EquivalenceError,
    random_feeds,
    verify_equivalence,
)
from repro.transform.split import apply_mddp


class TestVerifyEquivalence:
    def test_identical_graphs_pass(self, small_conv_graph):
        err = verify_equivalence(small_conv_graph, small_conv_graph.clone())
        assert err == 0.0

    def test_transformed_graph_passes(self, small_conv_graph):
        transformed = apply_mddp(small_conv_graph, "c0", 0.5)
        err = verify_equivalence(small_conv_graph, transformed)
        assert err < 1e-3

    def test_detects_divergence(self, small_conv_graph):
        broken = small_conv_graph.clone()
        w = broken.node("c0").inputs[1]
        broken.initializers[w] = broken.initializers[w] + 1.0
        with pytest.raises(EquivalenceError):
            verify_equivalence(small_conv_graph, broken)

    def test_detects_interface_mismatch(self, small_conv_graph, fc_graph):
        with pytest.raises(EquivalenceError):
            verify_equivalence(small_conv_graph, fc_graph)

    def test_random_feeds_deterministic(self, small_conv_graph):
        a = random_feeds(small_conv_graph, seed=3)
        b = random_feeds(small_conv_graph, seed=3)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_full_toolchain_equivalence(self):
        toy = build_model("toy")
        compiled = PimFlow(PimFlowConfig(mechanism="pimflow")).compile(toy)
        verify_equivalence(toy, compiled.graph)


class TestGeluFusion:
    def test_gelu_fuses_and_matches(self, rng):
        from repro.graph.builder import GraphBuilder
        from repro.runtime.numerical import execute
        from repro.transform.fusion import fuse_activations

        b = GraphBuilder(seed=23)
        x = b.input("x", (1, 16))
        y = b.gemm(x, 8, name="g")
        y = b.gelu(y)
        b.output(y)
        g = b.build()
        fused = fuse_activations(g)
        assert fused.node("g").attr("activation") == "gelu"
        feed = {"x": rng.standard_normal((1, 16))}
        ref = execute(g, feed)
        out = execute(fused, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-4, atol=1e-4)

    def test_bert_fuses_gelu(self):
        from repro.models import build_model
        flow = PimFlow(PimFlowConfig(mechanism="pimflow"))
        g = flow.prepare(build_model("bert-seq3"))
        assert any(n.attr("activation") == "gelu" for n in g.nodes)
