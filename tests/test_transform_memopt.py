"""Tests for the memory-layout optimization pass."""

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.runtime.numerical import execute
from repro.transform.memopt import optimize_memory
from repro.transform.pipeline import pipeline_chain
from repro.transform.split import apply_mddp


class TestSliceElision:
    def test_h_slice_elided_batch1(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        b.output(b.slice(x, axis=1, start=0, end=7, name="s"))
        g = optimize_memory(b.build())
        assert g.node("s").attr("elided") is True

    def test_w_slice_not_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        b.output(b.slice(x, axis=2, start=0, end=7, name="s"))
        g = optimize_memory(b.build())
        assert not g.node("s").attr("elided", False)

    def test_h_slice_not_elided_batch2(self):
        b = GraphBuilder()
        x = b.input("x", (2, 14, 14, 8))
        b.output(b.slice(x, axis=1, start=0, end=7, name="s"))
        g = optimize_memory(b.build())
        assert not g.node("s").attr("elided", False)


class TestConcatElision:
    def test_h_concat_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        a = b.slice(x, axis=1, start=0, end=7)
        c = b.slice(x, axis=1, start=7, end=14)
        b.output(b.concat([a, c], axis=1, name="cat"))
        g = optimize_memory(b.build())
        assert g.node("cat").attr("elided") is True

    def test_channel_concat_not_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        y = b.input("y", (1, 14, 14, 8))
        b.output(b.concat([x, y], axis=3, name="cat"))
        g = optimize_memory(b.build())
        assert not g.node("cat").attr("elided", False)


class TestPadElision:
    """Pad elision must only fire on rank-4 NHWC tensors (regression:
    the old check treated any axis outside {1, 2} as non-spatial, so a
    rank-2 pad on the last axis was silently elided)."""

    def test_rank4_spatial_pad_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        b.output(b._emit("Pad", [x],
                         {"pads": ((0, 0), (1, 1), (1, 1), (0, 0))},
                         name="p"))
        g = optimize_memory(b.build())
        assert g.node("p").attr("elided") is True

    def test_rank4_channel_pad_not_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 14, 8))
        b.output(b._emit("Pad", [x],
                         {"pads": ((0, 0), (0, 0), (0, 0), (0, 4))},
                         name="p"))
        g = optimize_memory(b.build())
        assert not g.node("p").attr("elided", False)

    def test_rank2_pad_not_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 64))
        b.output(b._emit("Pad", [x], {"pads": ((0, 0), (0, 8))}, name="p"))
        g = optimize_memory(b.build())
        assert not g.node("p").attr("elided", False)

    def test_rank3_pad_not_elided(self):
        b = GraphBuilder()
        x = b.input("x", (1, 14, 8))
        b.output(b._emit("Pad", [x],
                         {"pads": ((0, 0), (1, 1), (0, 0))}, name="p"))
        g = optimize_memory(b.build())
        assert not g.node("p").attr("elided", False)

    def test_rank2_padded_gemm_semantics(self, rng):
        """End-to-end: the rank-2 pad actually runs (not skipped as a
        no-op), so the downstream shape contract holds."""
        b = GraphBuilder(seed=3)
        x = b.input("x", (1, 64))
        p = b._emit("Pad", [x], {"pads": ((0, 0), (0, 8))}, name="p")
        b.output(b.gemm(p, 16, name="fc"))
        g = optimize_memory(b.build())
        feed = {"x": rng.standard_normal((1, 64))}
        ref = execute(b.build(), feed)
        out = execute(g, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)


class TestTransformedGraphs:
    def test_mddp_movement_fully_elided(self):
        b = GraphBuilder(seed=2)
        x = b.input("x", (1, 14, 14, 8))
        b.output(b.conv(x, cout=16, kernel=3, name="c0"))
        g = optimize_memory(apply_mddp(b.build(), "c0", 0.5))
        movement = [n for n in g.nodes if n.op_type in ("Slice", "Concat")]
        assert movement
        assert all(n.attr("elided") for n in movement)

    def test_pipeline_movement_fully_elided(self, pointwise_chain_graph):
        g = pipeline_chain(pointwise_chain_graph,
                           ("pw1", "act1", "dw1"), num_stages=2)
        g = optimize_memory(g)
        movement = [n for n in g.nodes if n.op_type in ("Slice", "Concat")]
        assert movement
        assert all(n.attr("elided") for n in movement)

    def test_semantics_unchanged(self, pointwise_chain_graph, rng):
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        ref = execute(pointwise_chain_graph, feed)
        g = optimize_memory(apply_mddp(pointwise_chain_graph, "pw1", 0.5))
        out = execute(g, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_pure_pass_originals_untouched(self, pointwise_chain_graph):
        g2 = apply_mddp(pointwise_chain_graph, "pw1", 0.5)
        optimize_memory(g2)
        assert not any(n.attr("elided") for n in g2.nodes)
