"""Tests for the GPU device executor."""

import pytest

from repro.gpu.device import GpuDevice


class TestRunGraph:
    def test_serial_sum(self, pointwise_chain_graph):
        gpu = GpuDevice()
        result = gpu.run_graph(pointwise_chain_graph)
        assert result.time_us == pytest.approx(
            sum(c.time_us for c in result.per_node.values()))
        assert set(result.per_node) == {n.name for n in pointwise_chain_graph.nodes}

    def test_subset_execution(self, pointwise_chain_graph):
        gpu = GpuDevice()
        full = gpu.run_graph(pointwise_chain_graph)
        subset = gpu.run_graph(pointwise_chain_graph, only_nodes=["pw1", "pw2"])
        assert subset.time_us < full.time_us
        assert set(subset.per_node) == {"pw1", "pw2"}

    def test_energy_positive_and_additive(self, pointwise_chain_graph):
        gpu = GpuDevice()
        result = gpu.run_graph(pointwise_chain_graph)
        assert result.energy_mj > 0
        per_node_energy = sum(gpu.node_energy_mj(c)
                              for c in result.per_node.values())
        assert result.energy_mj == pytest.approx(per_node_energy)

    def test_with_channels_copy(self):
        gpu = GpuDevice()
        half = gpu.with_channels(16)
        assert half.config.mem_channels == 16
        assert gpu.config.mem_channels == 32

    def test_fewer_channels_never_faster(self, pointwise_chain_graph):
        t32 = GpuDevice().run_graph(pointwise_chain_graph).time_us
        t8 = GpuDevice().with_channels(8).run_graph(pointwise_chain_graph).time_us
        assert t8 >= t32
