"""Intra-operator GEMM sharding suite (:mod:`repro.runtime.gemmpar`).

Three layers of coverage:

* **Planner properties** — :func:`plan_row_panels` must cover exactly
  ``0..m`` with ordered, aligned, floor-respecting panels, and must
  refuse every split the byte-identity argument cannot defend (GEMV
  shapes, sub-floor panels, misaligned row counts).
* **Kernel byte-identity** — :func:`panel_matmul` against one whole
  ``np.matmul`` on adversarial shapes: accumulation-order-sensitive
  f32 data, strided im2col-style views, K=1, M smaller than the shard
  width.  Bitwise ``tobytes()`` equality, never ``allclose``.
* **Executor byte-identity** — every registry model through
  :class:`CompiledExecutable` at worker widths {1, 2, 4} (and forced
  panels at width 1) against the interpreted oracle, plus the serve
  path with ``gemm_shards`` set.
"""

import os

import numpy as np
import pytest

from repro.models import build_model, list_models
from repro.runtime.compiled import CompiledExecutable
from repro.runtime.gemmpar import (
    DEFAULT_MIN_PANEL_ELEMS,
    DEFAULT_MIN_PANEL_ROWS,
    ShardPolicy,
    conv_row_segments,
    panel_matmul,
    plan_row_panels,
    shard_ranges,
)
from repro.runtime.numerical import execute
from repro.runtime.verify import random_feeds

#: A policy with the safety floors dropped to minimums, so planner
#: structure (coverage, alignment, width capping) can be tested on
#: small shapes without triggering the profitability collapse.
TINY = ShardPolicy(min_panel_elems=1, min_panel_rows=1)


def _order_sensitive(shape, seed):
    """f32 data whose summation is order-sensitive: values spanning
    ~8 decades, positive and negative, so any change in accumulation
    order flips low-order mantissa bits."""
    rng = np.random.default_rng(seed)
    mag = rng.uniform(-4.0, 4.0, size=shape)
    sign = rng.choice([-1.0, 1.0], size=shape)
    return (sign * 10.0 ** mag).astype(np.float32)


class TestShardRanges:
    def test_covers_and_orders(self):
        for n in (1, 5, 16, 97):
            for shards in (1, 2, 3, 8, n + 3):
                ranges = shard_ranges(n, shards)
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                    assert a1 == b0 and a0 < a1 and b0 < b1

    def test_never_empty_slices(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]


class TestPlanRowPanels:
    def test_covers_m_exactly_in_order(self):
        panels = plan_row_panels(4096, 64, 64, 4, TINY)
        assert len(panels) == 4
        assert panels[0][0] == 0 and panels[-1][1] == 4096
        for (a0, a1), (b0, b1) in zip(panels, panels[1:]):
            assert a1 == b0

    def test_width_one_is_single_panel(self):
        assert plan_row_panels(4096, 64, 64, 1, TINY) == [(0, 4096)]

    def test_n_below_two_never_shards(self):
        # N==1 products are GEMV-shaped at any size: never split.
        assert plan_row_panels(1 << 20, 512, 1, 8, TINY) == [(0, 1 << 20)]

    def test_m_smaller_than_width_caps_shards(self):
        panels = plan_row_panels(3, 64, 64, 8, TINY)
        assert panels == [(0, 1), (1, 2), (2, 3)]

    def test_row_floor_collapses_small_m(self):
        # 24 rows / 2 shards = 12 < 16-row floor: stay whole.
        policy = ShardPolicy(min_panel_elems=1)
        assert plan_row_panels(24, 512, 512, 2, policy) == [(0, 24)]
        # 32 rows / 2 shards = 16: exactly at the floor, split allowed.
        assert len(plan_row_panels(32, 512, 512, 2, policy)) == 2

    def test_flops_floor_reduces_shard_count(self):
        # Each panel must carry >= min_panel_elems MACs; the planner
        # backs off the shard count instead of emitting tiny panels.
        policy = ShardPolicy(min_panel_elems=DEFAULT_MIN_PANEL_ELEMS,
                             min_panel_rows=1)
        m, k, n = 4096, 32, 32  # total 4.2e6 MACs: room for 2 panels
        panels = plan_row_panels(m, k, n, 8, policy)
        assert len(panels) == 2
        for m0, m1 in panels:
            assert (m1 - m0) * k * n >= DEFAULT_MIN_PANEL_ELEMS

    def test_alignment_respected(self):
        panels = plan_row_panels(7 * 13, 64, 64, 4, TINY, align=13)
        for m0, m1 in panels:
            assert m0 % 13 == 0 and m1 % 13 == 0
        assert panels[-1][1] == 7 * 13

    def test_misaligned_m_falls_back_to_unit_alignment(self):
        # m not divisible by align: alignment is abandoned, not broken.
        panels = plan_row_panels(100, 64, 64, 4, TINY, align=13)
        assert panels[0][0] == 0 and panels[-1][1] == 100

    def test_zero_rows_degenerate(self):
        assert plan_row_panels(0, 64, 64, 4, TINY) == [(0, 0)]


class TestConvRowSegments:
    def test_single_image_span(self):
        assert conv_row_segments(0, 14, 7, 2) == [(0, 0, 7)]

    def test_crosses_image_boundary(self):
        # oh=4, ow=3: rows 9..21 are image 0 y=3..4 then image 1 y=0..3.
        assert conv_row_segments(9, 21, 4, 3) == [(0, 3, 4), (1, 0, 3)]

    def test_panels_tile_the_batch(self):
        oh, ow, images = 5, 3, 4
        m = images * oh * ow
        covered = set()
        for m0, m1 in plan_row_panels(m, 8, 8, 4, TINY, align=ow):
            for img, y0, y1 in conv_row_segments(m0, m1, oh, ow):
                for y in range(y0, y1):
                    key = (img, y)
                    assert key not in covered, "overlapping write boxes"
                    covered.add(key)
        assert len(covered) == images * oh


class TestPanelMatmulByteIdentity:
    """Bitwise equality of the panelled kernel with one np.matmul."""

    def _check(self, a, b, width, policy=None, align=1):
        ref = np.matmul(a, b)
        got = panel_matmul(a, b, width=width, policy=policy, align=align)
        assert got.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_order_sensitive_f32(self, width):
        a = _order_sensitive((512, 192), seed=1)
        b = _order_sensitive((192, 128), seed=2)
        self._check(a, b, width)

    def test_k_equals_one(self):
        a = _order_sensitive((4096, 1), seed=3)
        b = _order_sensitive((1, 64), seed=4)
        self._check(a, b, 4, policy=TINY)

    def test_m_below_width_collapses_under_default_floors(self):
        # M=1 panels dispatch to GEMV (different bits); the default
        # row floor must refuse the split, and the collapsed single
        # panel is trivially byte-identical.
        a = _order_sensitive((3, 64), seed=5)
        b = _order_sensitive((64, 32), seed=6)
        assert plan_row_panels(3, 64, 32, 8) == [(0, 3)]
        self._check(a, b, 8)

    def test_strided_im2col_style_view(self):
        # A non-contiguous A, as the executor's im2col window views
        # are: every other row of a larger buffer.
        base = _order_sensitive((1024, 192), seed=7)
        a = base[::2]
        assert not a.flags.c_contiguous
        b = _order_sensitive((192, 128), seed=8)
        self._check(a, b, 4)

    def test_aligned_panels(self):
        a = _order_sensitive((28 * 28, 288), seed=9)
        b = _order_sensitive((288, 64), seed=10)
        self._check(a, b, 4, align=28)

    def test_default_floors_above_blas_cutover(self):
        # The floors this suite relies on must keep margin over the
        # empirically observed OpenBLAS small-kernel cutover (~1e6).
        assert DEFAULT_MIN_PANEL_ELEMS >= 2_000_000
        assert DEFAULT_MIN_PANEL_ROWS >= 2


class TestShardPolicy:
    def test_from_env_unset_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GEMM_SHARDS", raising=False)
        assert ShardPolicy.from_env() == ShardPolicy()

    def test_from_env_parses_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_SHARDS", "4")
        assert ShardPolicy.from_env().gemm_shards == 4

    @pytest.mark.parametrize("raw", ["x", "-1", "2.5"])
    def test_from_env_ignores_garbage(self, monkeypatch, raw):
        # Like REPRO_JOBS/REPRO_HOST_WORKERS: a broken env var never
        # aborts an inference; it falls back to the default policy.
        monkeypatch.setenv("REPRO_GEMM_SHARDS", raw)
        assert ShardPolicy.from_env() == ShardPolicy()

    def test_resolve_width(self):
        assert ShardPolicy().resolve_gemm_width(4) == 4
        assert ShardPolicy(gemm_shards=1).resolve_gemm_width(4) == 1
        assert ShardPolicy(gemm_shards=6).resolve_gemm_width(1) == 6
        cores = max(1, os.cpu_count() or 1)
        assert ShardPolicy(gemm_shards=0).resolve_gemm_width(1) == cores

    def test_with_gemm_shards(self):
        p = ShardPolicy()
        assert p.with_gemm_shards(None) is p
        assert p.with_gemm_shards(3).gemm_shards == 3

    def test_pimflow_config_shard_policy(self):
        from repro.pimflow import PimFlowConfig
        assert PimFlowConfig(gemm_shards=2).shard_policy().gemm_shards == 2


class TestExecutorByteIdentity:
    """Sharded compiled execution against the interpreted oracle."""

    @pytest.mark.parametrize("model", list_models())
    def test_registry_models_across_widths(self, model):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0)
        ref = execute(graph, feeds)
        # workers=1 + forced panels exercises the serial panel loop;
        # workers=2/4 run panels on the pool in nondeterministic order.
        configs = [
            dict(workers=1, policy=ShardPolicy(gemm_shards=4)),
            dict(workers=2),
            dict(workers=4),
        ]
        for kw in configs:
            exe = CompiledExecutable(graph, **kw)
            out = exe.run(feeds)
            for name in ref:
                assert ref[name].tobytes() == out[name].tobytes(), \
                    f"{model}/{name} differs under {kw}"

    @pytest.mark.parametrize("model", ["resnet-50", "shufflenet-v2"])
    def test_batch8_sharded(self, model):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0, batch=8)
        ref = execute(graph, feeds)
        exe = CompiledExecutable(graph, workers=4)
        out = exe.run(feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
        stats = exe.pool_stats()
        assert stats["gemm_sharded_steps"] > 0
        assert stats["gemm_shard_max"] > 1

    def test_repeat_runs_stable(self):
        # Pool dispatch order varies run to run; bytes must not.
        graph = build_model("resnet-18")
        feeds = random_feeds(graph, seed=1)
        exe = CompiledExecutable(graph, workers=4)
        first = exe.run(feeds)
        for _ in range(3):
            again = exe.run(feeds)
            for name in first:
                assert first[name].tobytes() == again[name].tobytes()


class TestServePath:
    def test_server_with_gemm_shards_is_byte_identical(self, toy_plan):
        from repro.runtime.executor import PlanExecutor
        from repro.serve import InferenceServer, ModelRepository, ServerConfig
        from repro.serve.loadgen import feeds_for

        feeds = [feeds_for(toy_plan.graph, seed=i) for i in range(4)]
        direct = PlanExecutor(toy_plan)
        expected = [direct.infer(f) for f in feeds]

        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        config = ServerConfig(workers=2, host_workers=2, gemm_shards=2,
                              max_batch_size=4, max_wait_ms=20.0)
        with InferenceServer(repo, config) as server:
            handles = [server.submit("toy", f) for f in feeds]
            got = [h.result(timeout=60.0) for h in handles]
        assert server.stats()["config"]["gemm_shards"] == 2
        for resp, want in zip(got, expected):
            for name in want:
                assert np.array_equal(resp.outputs[name], want[name])

    def test_plan_executor_gemm_shards_kwarg(self, toy_plan):
        from repro.runtime.executor import PlanExecutor

        ex = PlanExecutor(toy_plan)
        feeds = random_feeds(toy_plan.graph, seed=3)
        ref = ex.infer(feeds, compiled=False)
        out = ex.infer(feeds, workers=2, gemm_shards=2)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
