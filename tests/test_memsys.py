"""Tests for the PIM-enabled memory system."""

import pytest

from repro.gpu.config import RTX2060
from repro.memsys.contention import controller_contention_slowdown
from repro.memsys.movement import transfer_time_us
from repro.memsys.system import MemorySystem
from repro.pim.config import PimConfig


class TestMemorySystem:
    def test_default_split_is_16_16(self):
        mem = MemorySystem()
        assert mem.gpu_channels == 16
        assert mem.pim_channels == 16

    def test_configs_reflect_split(self):
        mem = MemorySystem(32, 12)
        assert mem.gpu_config(RTX2060).mem_channels == 20
        assert mem.pim_config(PimConfig()).num_channels == 12

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(32, 33)
        with pytest.raises(ValueError):
            MemorySystem(32, -1)

    def test_all_pim_blocks_gpu(self):
        mem = MemorySystem(32, 32)
        with pytest.raises(ValueError):
            mem.gpu_config(RTX2060)

    def test_no_pim_blocks_pim(self):
        mem = MemorySystem(32, 0)
        with pytest.raises(ValueError):
            mem.pim_config(PimConfig())

    def test_with_pim_channels(self):
        mem = MemorySystem().with_pim_channels(8)
        assert mem.pim_channels == 8
        assert mem.gpu_channels == 24


class TestMovement:
    def test_zero_bytes_free(self):
        assert transfer_time_us(0) == 0.0

    def test_scales_with_bytes(self):
        t1 = transfer_time_us(1e6)
        t2 = transfer_time_us(2e6)
        assert t2 > t1
        assert (t2 - t1) == pytest.approx(1e6 / 256e3)


class TestContention:
    def test_no_traffic_no_slowdown(self):
        assert controller_contention_slowdown(0, 1000.0) == 1.0

    def test_slowdown_is_small(self):
        # Paper Section 7: 0.15-0.22% for real models.
        factor = controller_contention_slowdown(5e6, 1000.0)
        assert 1.0 < factor < 1.05

    def test_bounded_by_blocking_probability(self):
        factor = controller_contention_slowdown(1e12, 1.0)
        assert factor <= 1.02 + 1e-9
