"""Tests for the GPU roofline cost model."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.gpu.config import RTX2060, TITAN_V
from repro.gpu.kernels import (
    gemm_dims,
    gemm_utilization,
    node_cost,
    node_flops_bytes,
)


def _graph_with(op_builder):
    b = GraphBuilder(seed=3)
    op_builder(b)
    return b.build()


@pytest.fixture
def big_conv():
    """Compute-bound: deep 3x3 conv."""
    def build(b):
        x = b.input("x", (1, 28, 28, 256))
        b.output(b.conv(x, cout=256, kernel=3, name="c"))
    return _graph_with(build)


@pytest.fixture
def gemv():
    """Memory-bound: batch-1 FC."""
    def build(b):
        x = b.input("x", (1, 4096))
        b.output(b.gemm(x, 4096, name="g"))
    return _graph_with(build)


@pytest.fixture
def dw_conv():
    def build(b):
        x = b.input("x", (1, 56, 56, 128))
        b.output(b.dwconv(x, kernel=3, name="d"))
    return _graph_with(build)


class TestBoundClassification:
    def test_deep_conv_is_compute_bound(self, big_conv):
        cost = node_cost(big_conv.node("c"), big_conv, RTX2060)
        assert cost.bound == "compute"

    def test_batch1_fc_is_memory_bound(self, gemv):
        cost = node_cost(gemv.node("g"), gemv, RTX2060)
        assert cost.bound == "memory"

    def test_dwconv_is_memory_bound(self, dw_conv):
        cost = node_cost(dw_conv.node("d"), dw_conv, RTX2060)
        assert cost.bound == "memory"

    def test_tiny_op_is_latency_bound(self):
        g = _graph_with(lambda b: b.output(b.relu(b.input("x", (1, 4)))))
        cost = node_cost(g.nodes[0], g, RTX2060)
        assert cost.bound == "latency"


class TestChannelScaling:
    def test_memory_bound_scales_with_channels(self, gemv):
        node = gemv.node("g")
        t32 = node_cost(node, gemv, RTX2060.with_channels(32)).time_us
        t16 = node_cost(node, gemv, RTX2060.with_channels(16)).time_us
        t8 = node_cost(node, gemv, RTX2060.with_channels(8)).time_us
        assert t8 > t16 > t32
        # Busy time should roughly double when bandwidth halves.
        assert t16 / t32 == pytest.approx(2.0, rel=0.1)

    def test_compute_bound_insensitive_to_channels(self, big_conv):
        node = big_conv.node("c")
        t32 = node_cost(node, big_conv, RTX2060.with_channels(32)).time_us
        t16 = node_cost(node, big_conv, RTX2060.with_channels(16)).time_us
        assert t16 / t32 < 1.05

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            RTX2060.with_channels(0)


class TestUtilizationModel:
    def test_small_m_underutilizes(self):
        low = gemm_utilization(1, 4096, 64, RTX2060)
        high = gemm_utilization(4096, 4096, 64, RTX2060)
        assert low < high

    def test_split_k_recovers_utilization(self):
        # Deep reductions parallelize over K tiles.
        shallow = gemm_utilization(64, 64, 64, RTX2060)
        deep = gemm_utilization(64, 64, 8192, RTX2060)
        assert deep > shallow

    def test_bounds(self):
        for m, n, k in [(1, 1, 1), (10000, 10000, 10000)]:
            u = gemm_utilization(m, n, k, RTX2060)
            assert RTX2060.min_utilization <= u <= 1.0


class TestFlopsBytes:
    def test_conv_flops(self, big_conv):
        flops, _ = node_flops_bytes(big_conv.node("c"), big_conv)
        assert flops == 2.0 * (28 * 28) * 256 * (3 * 3 * 256)

    def test_gemm_dims(self, gemv):
        assert gemm_dims(gemv.node("g"), gemv) == (1, 4096, 4096)

    def test_arithmetic_intensity_ordering(self, big_conv, gemv, dw_conv):
        conv_ai = node_cost(big_conv.node("c"), big_conv, RTX2060).arithmetic_intensity
        fc_ai = node_cost(gemv.node("g"), gemv, RTX2060).arithmetic_intensity
        dw_ai = node_cost(dw_conv.node("d"), dw_conv, RTX2060).arithmetic_intensity
        # Fig. 1: deep convs high, FC and depthwise low.
        assert conv_ai > 10 * fc_ai
        assert conv_ai > 10 * dw_ai

    def test_movement_op_has_zero_flops(self):
        g = _graph_with(lambda b: b.output(
            b.slice(b.input("x", (1, 8, 8, 4)), axis=1, start=0, end=4)))
        flops, nbytes = node_flops_bytes(g.nodes[0], g)
        assert flops == 0.0 and nbytes > 0


class TestElisionAndModes:
    def test_elided_node_is_free(self):
        g = _graph_with(lambda b: b.output(
            b.slice(b.input("x", (1, 8, 8, 4)), axis=1, start=0, end=4)))
        node = g.nodes[0]
        node.attrs["elided"] = True
        cost = node_cost(node, g, RTX2060)
        assert cost.time_us == 0.0 and cost.bound == "elided"

    def test_write_through_penalty(self, big_conv):
        node = big_conv.node("c")
        normal = node_cost(node, big_conv, RTX2060, write_through=False)
        wt = node_cost(node, big_conv, RTX2060, write_through=True)
        assert wt.time_us > normal.time_us
        ratio = (wt.time_us - RTX2060.launch_overhead_us) / \
            (normal.time_us - RTX2060.launch_overhead_us)
        assert ratio == pytest.approx(RTX2060.write_through_penalty, rel=1e-6)

    def test_elementwise_has_fused_launch(self):
        g = _graph_with(lambda b: b.output(b.relu(b.input("x", (1, 4)))))
        cost = node_cost(g.nodes[0], g, RTX2060)
        assert cost.time_us < RTX2060.launch_overhead_us


class TestDeviceConfigs:
    def test_presets_differ(self):
        assert TITAN_V.peak_flops_per_us > RTX2060.peak_flops_per_us
        assert TITAN_V.bandwidth_bytes_per_us > RTX2060.bandwidth_bytes_per_us

    def test_peak_flops_value(self):
        # 30 SMs x 256 fp16 FLOPs/cycle x 1.68 GHz = 12.9 TFLOPS.
        assert RTX2060.peak_flops_per_us == pytest.approx(12.9e6, rel=0.01)
