"""Tests for the PIM command generator."""

import math

import pytest

from repro.codegen.generator import (
    CommandBudgetError,
    generate_trace,
    tile_program,
)
from repro.lowering.im2col import LoweredGemv
from repro.lowering.tiling import tile_over_channels
from repro.pim.commands import CmdKind
from repro.pim.config import (
    NEWTON_PLUS,
    NEWTON_PLUS_PLUS,
    PimConfig,
    PimOptimizations,
)
from repro.pim.cost import gemv_cost

CFG = PimConfig()


def _gemv(rows=32, k=128, n=64, strided=False, contiguous_k=None):
    return LoweredGemv(rows=rows, k=k, n=n,
                       contiguous_k=contiguous_k or (16 if strided else k),
                       strided=strided)


def _count(program, kind):
    return sum(1 for c in program if c.kind is kind)


class TestProgramStructure:
    def test_program_order(self):
        gemv = _gemv(rows=4)
        tiles = tile_over_channels(gemv, 16, "comp")
        prog = tile_program(tiles[0], gemv, CFG, NEWTON_PLUS)
        kinds = [c.kind for c in prog]
        assert kinds[0] is CmdKind.GWRITE
        assert kinds[-1] is CmdKind.READRES

    def test_comp_count_one_per_vector(self):
        gemv = _gemv(rows=10, k=2048, n=16)  # no packing (k == capacity)
        tiles = tile_over_channels(gemv, 16, "comp")
        prog = tile_program(tiles[0], gemv, CFG, NEWTON_PLUS)
        assert _count(prog, CmdKind.COMP) == 10

    def test_readres_batched_per_group(self):
        gemv = _gemv(rows=64, k=512, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        opts = PimOptimizations(num_gwrite_buffers=4)
        prog = tile_program(tiles[0], gemv, CFG, opts)
        groups = math.ceil(64 / 4)
        assert _count(prog, CmdKind.READRES) == groups

    def test_one_gact_per_group(self):
        gemv = _gemv(rows=100, k=32, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        prog = tile_program(tiles[0], gemv, CFG, NEWTON_PLUS)
        assert _count(prog, CmdKind.G_ACT) == 100  # nb=1: group == vector
        prog4 = tile_program(tiles[0], gemv, CFG,
                             PimOptimizations(num_gwrite_buffers=4))
        assert _count(prog4, CmdKind.G_ACT) == 25

    def test_strided_without_extension_explodes_gwrites(self):
        gemv = _gemv(rows=8, k=144, n=16, strided=True, contiguous_k=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        base = tile_program(tiles[0], gemv, CFG,
                            PimOptimizations(strided_gwrite=False))
        ext = tile_program(tiles[0], gemv, CFG,
                           PimOptimizations(strided_gwrite=True))
        assert _count(base, CmdKind.GWRITE) > _count(ext, CmdKind.GWRITE)
        # The strided command records its gathered segments.
        strided_cmds = [c for c in ext if c.kind is CmdKind.GWRITE]
        assert all(c.segments > 1 for c in strided_cmds)

    def test_gwrite_width_respects_buffers(self):
        gemv = _gemv(rows=64, k=2048, n=16)
        tiles = tile_over_channels(gemv, 16, "comp")
        for nb in (1, 2, 4):
            prog = tile_program(tiles[0], gemv, CFG,
                                PimOptimizations(num_gwrite_buffers=nb))
            widths = {c.width for c in prog if c.kind is CmdKind.GWRITE}
            assert max(widths) <= nb


class TestStatsAgreement:
    """Explicit traces and the closed form must count the same events."""

    @pytest.mark.parametrize("opts", [NEWTON_PLUS, NEWTON_PLUS_PLUS])
    @pytest.mark.parametrize("rows,k,n,strided", [
        (16, 128, 64, False), (64, 512, 8, False), (10, 2048, 100, False),
        (32, 144, 32, True),
    ])
    def test_command_counts_match(self, opts, rows, k, n, strided):
        gemv = _gemv(rows=rows, k=k, n=n, strided=strided)
        trace = generate_trace(gemv, CFG, opts)
        counts = trace.counts()
        cost = gemv_cost(gemv, CFG, opts)
        assert counts.get("G_ACT", 0) == cost.activations
        gw_cmds = sum(t.gwrite_commands for t in cost.tiles)
        rr_cmds = sum(t.readres_commands for t in cost.tiles)
        assert counts.get("GWRITE", 0) == gw_cmds
        assert counts.get("READRES", 0) == rr_cmds

    def test_bytes_match(self):
        gemv = _gemv(rows=20, k=256, n=48)
        trace = generate_trace(gemv, CFG, NEWTON_PLUS_PLUS)
        cost = gemv_cost(gemv, CFG, NEWTON_PLUS_PLUS)
        gw_bytes = sum(c.bytes for prog in trace.programs.values()
                       for c in prog if c.kind is CmdKind.GWRITE)
        rr_bytes = sum(c.bytes for prog in trace.programs.values()
                       for c in prog if c.kind is CmdKind.READRES)
        assert gw_bytes == cost.gwrite_bytes
        assert rr_bytes == cost.readres_bytes


class TestBudget:
    def test_budget_enforced(self):
        gemv = _gemv(rows=100000, k=2048, n=16)
        with pytest.raises(CommandBudgetError):
            generate_trace(gemv, CFG, NEWTON_PLUS, max_commands=100)
