"""Functional (value-level) PIM execution tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.lowering.im2col import (
    LoweredGemv,
    im2col_matrix,
    lower_conv,
    lowered_weight_matrix,
)
from repro.lowering.tiling import GRANULARITIES, ChannelTile, tile_over_channels
from repro.pim.functional import execute_gemv, execute_tiles
from repro.runtime.numerical import conv2d_nhwc


class TestExecuteTiles:
    def test_matches_matmul_column_partition(self, rng):
        x = rng.standard_normal((8, 32)).astype(np.float32)
        w = rng.standard_normal((32, 24)).astype(np.float32)
        gemv = LoweredGemv(8, 32, 24, 32, False)
        tiles = tile_over_channels(gemv, 16, "readres")
        out = execute_tiles(x, w, tiles)
        np.testing.assert_allclose(out, x @ w, rtol=1e-4, atol=1e-4)

    def test_matches_matmul_with_k_split(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32)
        w = rng.standard_normal((64, 3)).astype(np.float32)
        gemv = LoweredGemv(4, 64, 3, 64, False)
        tiles = tile_over_channels(gemv, 16, "comp")
        assert any(t.partial for t in tiles)
        out = execute_tiles(x, w, tiles)
        np.testing.assert_allclose(out, x @ w, rtol=1e-4, atol=1e-4)

    def test_rejects_overlapping_tiles(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        tiles = [
            ChannelTile(0, 2, 0, 8, 0, 3),
            ChannelTile(1, 2, 0, 8, 2, 2),  # overlaps column 2
        ]
        with pytest.raises(ValueError):
            execute_tiles(x, w, tiles)

    def test_rejects_incomplete_coverage(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        tiles = [ChannelTile(0, 2, 0, 8, 0, 3)]
        with pytest.raises(ValueError):
            execute_tiles(x, w, tiles)

    def test_rejects_row_mismatch(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        tiles = [ChannelTile(0, 3, 0, 8, 0, 4)]
        with pytest.raises(ValueError):
            execute_tiles(x, w, tiles)


class TestExecuteGemv:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 20),
        k=st.integers(16, 128),
        n=st.integers(1, 40),
        channels=st.integers(1, 32),
        granularity=st.sampled_from(GRANULARITIES),
    )
    def test_property_matches_matmul(self, rows, k, n, channels, granularity):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((rows, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        gemv = LoweredGemv(rows, k, n, k, False)
        out = execute_gemv(x, w, gemv, channels, granularity)
        np.testing.assert_allclose(out, x @ w, rtol=1e-3, atol=1e-3)

    def test_descriptor_mismatch_rejected(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        gemv = LoweredGemv(5, 8, 4, 8, False)
        with pytest.raises(ValueError):
            execute_gemv(x, w, gemv, 16)


class TestEndToEndConvOnPim:
    """im2col -> tiling -> functional PIM must equal the direct conv."""

    @pytest.mark.parametrize("kernel,stride,cout", [
        (1, 1, 16), (3, 1, 8), (3, 2, 4), (5, 1, 3),
    ])
    def test_conv_via_pim_tiles(self, rng, kernel, stride, cout):
        b = GraphBuilder(seed=4)
        x_name = b.input("x", (1, 9, 9, 4))
        y = b.conv(x_name, cout=cout, kernel=kernel, stride=stride,
                   bias=False, name="c")
        b.output(y)
        g = b.build()
        node = g.node("c")
        x = rng.standard_normal((1, 9, 9, 4)).astype(np.float32)
        w = g.initializers[node.inputs[1]].astype(np.float32)
        pads = node.attr("pads")
        direct = conv2d_nhwc(x, w, None, (stride, stride), pads, 1)

        gemv = lower_conv(node, g)
        cols = im2col_matrix(x, (kernel, kernel), (stride, stride), pads)
        flat = execute_gemv(cols, lowered_weight_matrix(w), gemv, 16, "comp")
        np.testing.assert_allclose(flat.reshape(direct.shape), direct,
                                   rtol=1e-3, atol=1e-3)
