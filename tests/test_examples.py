"""Smoke tests: every example script must run end to end."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart_toy(self):
        out = _run("quickstart.py", "toy")
        assert "speedup" in out
        assert "Execution-mode decisions" in out

    def test_layer_exploration(self):
        out = _run("layer_exploration.py")
        assert "full PIM" in out and "full GPU" in out
        assert "outputs match" in out

    def test_mobilenet_pipelining(self):
        out = _run("mobilenet_pipelining.py")
        assert "pipelining candidate subgraphs" in out
        assert "outputs match" in out
        assert "GPU" in out and "PIM" in out

    def test_design_space(self):
        out = _run("design_space.py")
        assert "best split" in out
        assert "Newton++" in out

    def test_compile_once(self):
        out = _run("compile_once.py", "toy")
        assert "0 simulator invocations" in out
        assert "second compile skips" in out
        assert "identical makespan" in out

    def test_bert_offload(self):
        out = _run("bert_offload.py")
        assert "bert-seq3" in out and "bert-seq64" in out
        assert "full PIM" in out
