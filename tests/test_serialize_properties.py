"""Property-based round-trip tests for graph serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.serialize import graph_from_dict, graph_to_dict
from repro.runtime.numerical import execute


@st.composite
def _random_graph(draw):
    """A random small conv/elementwise/fc graph."""
    seed = draw(st.integers(0, 1000))
    h = draw(st.integers(4, 10))
    cin = draw(st.integers(1, 6))
    depth = draw(st.integers(1, 4))
    b = GraphBuilder("rand", seed=seed)
    x = b.input("x", (1, h, h, cin))
    for i in range(depth):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            x = b.conv(x, cout=draw(st.integers(1, 8)),
                       kernel=draw(st.sampled_from([1, 3])))
        elif choice == 1:
            x = b.relu(x)
        elif choice == 2:
            x = b.dwconv(x, kernel=3)
        else:
            x = b.swish(x)
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, draw(st.integers(1, 5)))
    b.output(x)
    return b.build()


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph=_random_graph())
    def test_round_trip_preserves_semantics(self, graph):
        rebuilt = graph_from_dict(graph_to_dict(graph))
        rebuilt.validate()
        rng = np.random.default_rng(0)
        feed = {"x": rng.standard_normal(graph.tensors["x"].shape)}
        ref = execute(graph, feed)
        out = execute(rebuilt, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-5, atol=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(graph=_random_graph())
    def test_round_trip_is_stable(self, graph):
        once = graph_to_dict(graph)
        twice = graph_to_dict(graph_from_dict(once))
        assert once == twice
