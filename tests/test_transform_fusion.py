"""Tests for BN folding and activation fusion."""

import numpy as np
from repro.graph.builder import GraphBuilder
from repro.models import build_model
from repro.runtime.numerical import execute
from repro.transform.fusion import fold_batchnorm, fuse, fuse_activations


def _conv_bn_relu_graph(seed=11):
    b = GraphBuilder("f", seed=seed)
    x = b.input("x", (1, 10, 10, 4))
    y = b.conv(x, cout=8, kernel=3, bias=False, name="c")
    y = b.batchnorm(y, name="bn")
    y = b.relu(y, name="r")
    b.output(y)
    return b.build()


class TestBatchNormFolding:
    def test_bn_removed(self):
        g = fold_batchnorm(_conv_bn_relu_graph())
        assert all(n.op_type != "BatchNormalization" for n in g.nodes)

    def test_numerics_preserved(self, rng):
        g = _conv_bn_relu_graph()
        feed = {"x": rng.standard_normal((1, 10, 10, 4))}
        ref = execute(g, feed)
        g2 = fold_batchnorm(g)
        g2.validate()
        out = execute(g2, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_bias_created_when_absent(self):
        g = fold_batchnorm(_conv_bn_relu_graph())
        conv = g.node("c")
        assert len(conv.inputs) == 3

    def test_existing_bias_folded(self, rng):
        b = GraphBuilder(seed=12)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, bias=True, name="c")
        y = b.batchnorm(y)
        b.output(y)
        g = b.build()
        # Give the conv a non-zero bias so folding must account for it.
        bias_name = g.node("c").inputs[2]
        g.initializers[bias_name] = np.arange(4, dtype=np.float32)
        feed = {"x": rng.standard_normal((1, 8, 8, 4))}
        ref = execute(g, feed)
        out = execute(fold_batchnorm(g), feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=1e-3, atol=1e-3)

    def test_bn_with_branching_producer_kept(self, rng):
        b = GraphBuilder(seed=13)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, name="c")
        z = b.batchnorm(y, name="bn")
        b.output(z)
        b.output(y)  # conv output used elsewhere
        g = b.build()
        g2 = fold_batchnorm(g)
        assert any(n.op_type == "BatchNormalization" for n in g2.nodes)

    def test_standalone_bn_kept(self, rng):
        b = GraphBuilder(seed=14)
        x = b.input("x", (1, 8, 8, 4))
        b.output(b.batchnorm(x, name="bn"))
        g = b.build()
        g2 = fold_batchnorm(g)
        assert any(n.op_type == "BatchNormalization" for n in g2.nodes)


class TestActivationFusion:
    def test_relu_fused(self):
        g = fuse_activations(_conv_bn_relu_graph())
        # BN sits between conv and relu, so relu fuses only after BN
        # folding; run the full pipeline instead.
        g = fuse(_conv_bn_relu_graph())
        conv = g.node("c")
        assert conv.attr("activation") == "relu"
        assert all(n.op_type != "Relu" for n in g.nodes)

    def test_clip_attrs_carried(self):
        b = GraphBuilder(seed=15)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, name="c")
        y = b.relu6(y)
        b.output(y)
        g = fuse_activations(b.build())
        conv = g.node("c")
        assert conv.attr("activation") == "clip"
        assert conv.attr("activation_max") == 6.0

    def test_numerics_preserved_all_activations(self, rng):
        for act_emit in ("relu", "relu6", "sigmoid", "swish"):
            b = GraphBuilder(seed=16)
            x = b.input("x", (1, 8, 8, 4))
            y = b.conv(x, cout=4, kernel=1, name="c")
            y = getattr(b, act_emit)(y)
            b.output(y)
            g = b.build()
            feed = {"x": rng.standard_normal((1, 8, 8, 4))}
            ref = execute(g, feed)
            out = execute(fuse_activations(g), feed)
            for k in ref:
                np.testing.assert_allclose(ref[k], out[k], rtol=1e-4,
                                           atol=1e-4, err_msg=act_emit)

    def test_gemm_activation_fused(self, rng):
        b = GraphBuilder(seed=17)
        x = b.input("x", (1, 16))
        y = b.gemm(x, 8, name="g")
        y = b.relu(y)
        b.output(y)
        g = fuse_activations(b.build())
        assert g.node("g").attr("activation") == "relu"

    def test_activation_on_branch_not_fused(self):
        b = GraphBuilder(seed=18)
        x = b.input("x", (1, 8, 8, 4))
        y = b.conv(x, cout=4, kernel=1, name="c")
        r = b.relu(y, name="r")
        b.output(b.add(r, y))
        g = fuse_activations(b.build())
        assert g.node("c").attr("activation") is None


class TestFullFusion:
    def test_model_semantics(self, rng):
        g = build_model("toy")
        feed = {"input": rng.standard_normal((1, 56, 56, 3))}
        ref = execute(g, feed)
        fused = fuse(g)
        fused.validate()
        out = execute(fused, feed)
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], rtol=2e-3, atol=2e-3)

    def test_node_count_shrinks_substantially(self):
        g = build_model("mobilenet-v2")
        fused = fuse(g)
        assert len(fused) < len(g) * 0.6
        assert all(n.op_type != "BatchNormalization" for n in fused.nodes)
