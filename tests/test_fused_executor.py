"""Compiled-executor suite for fused elementwise groups.

The executor applies ``fuse_elementwise`` internally by default
(``CompiledExecutable(fuse=True)``); its contract is unchanged — byte
identity with the *unfused* interpreted oracle — so these tests drive
the fused compiled path against :func:`repro.runtime.numerical.execute`
on the original graphs, across the registry, batch sizes, and elision
modes, plus adversarial aliasing shapes.  Also covered here: the
read-only strided im2col window views, the hazard-graph width gate for
operator-parallel dispatch, and the per-op-kind step profile.
"""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.models import build_model, list_models
from repro.runtime.compiled import CompiledExecutable
from repro.runtime.numerical import conv_window_view, execute
from repro.runtime.verify import random_feeds
from repro.transform.memopt import optimize_memory

SMALL_MODELS = ("toy", "mobilenet-v2", "shufflenet-v2")


def _assert_oracle_identical(graph, feeds, ref=None, runs=2, **kw):
    if ref is None:
        ref = execute(graph, feeds)
    exe = CompiledExecutable(graph, **kw)
    for run in range(runs):
        out = exe.run(feeds)
        assert set(out) == set(ref)
        for name in ref:
            assert ref[name].shape == out[name].shape, (name, run)
            assert ref[name].tobytes() == out[name].tobytes(), \
                f"{name} differs from the oracle on run {run} ({kw})"
    return ref


class TestRegistryByteIdentity:
    @pytest.mark.parametrize("model", list_models())
    def test_fused_batch1(self, model):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0)
        ref = _assert_oracle_identical(graph, feeds)
        # fuse=False must agree too (same oracle, same bytes).
        _assert_oracle_identical(graph, feeds, ref=ref, fuse=False)

    @pytest.mark.parametrize("model", SMALL_MODELS)
    @pytest.mark.parametrize("batch", [1, 8])
    def test_fused_batch_and_elide_matrix(self, model, batch):
        graph = build_model(model)
        feeds = random_feeds(graph, seed=0, batch=batch)
        ref = execute(graph, feeds)
        for elide in (True, False):
            _assert_oracle_identical(graph, feeds, ref=ref, elide=elide)

    def test_fusion_engages_on_mobilenet(self):
        graph = build_model("mobilenet-v2")
        exe = CompiledExecutable(graph)
        exe.run(random_feeds(graph, seed=0))
        stats = exe.pool_stats()
        assert stats["fused_groups"] > 0
        assert stats["step_kinds"].get("fused", 0) > 0


class TestAdversarial:
    def test_diamond_dag(self):
        b = GraphBuilder("diamond", seed=1)
        x = b.input("x", (1, 8, 8, 4))
        c = b.conv(x, cout=4, kernel=1, name="c1")
        r = b.relu(c, name="r")
        s = b.sigmoid(r, name="s")
        g = b.gelu(r, name="g")
        b.output(b.add(s, g, name="join"))
        graph = b.build()
        _assert_oracle_identical(graph, random_feeds(graph, seed=1))

    def test_fused_group_feeding_elided_concat(self):
        # The group's destination is a co-allocated view into the
        # concat parent; direct-write must not clobber the sibling.
        b = GraphBuilder("cat", seed=2)
        x = b.input("x", (1, 8, 8, 4))
        a = b.conv(x, cout=4, kernel=1, name="ca")
        fa = b.sigmoid(b.relu(a, name="ra"), name="sa")
        other = b.conv(x, cout=4, kernel=1, name="cb")
        cat = b.concat([fa, other], axis=1, name="cat")
        b.output(b.conv(cat, cout=4, kernel=1, name="tail"))
        graph = optimize_memory(b.build())
        assert any(n.attr("elided", False) for n in graph.nodes)
        feeds = random_feeds(graph, seed=2)
        ref = execute(graph, feeds)
        for elide in (True, False):
            _assert_oracle_identical(graph, feeds, ref=ref, elide=elide)

    def test_broadcast_bias_add(self):
        # A (C,)-shaped initializer broadcast over NHWC inside the
        # group: the tiled sweep must slice only data-shaped operands.
        b = GraphBuilder("bias", seed=3)
        x = b.input("x", (1, 8, 8, 6))
        c = b.conv(x, cout=6, kernel=1, name="c1")
        bias = b._weight("bias", (6,))
        y = b.add(c, bias, name="biasadd")
        b.output(b.relu(y, name="act"))
        graph = b.build()
        _assert_oracle_identical(graph, random_feeds(graph, seed=3))

    def test_residual_chain_inplace_alias(self):
        # BN -> Clip -> Add(residual) fuses; the planner may alias the
        # fused destination onto the dead BN input buffer.
        b = GraphBuilder("res", seed=4)
        x = b.input("x", (1, 8, 8, 4))
        c = b.conv(x, cout=4, kernel=3, name="c1")
        y = b.batchnorm(c, name="bn")
        y = b.relu6(y, name="act")
        b.output(b.add(y, c, name="res"))
        graph = b.build()
        feeds = random_feeds(graph, seed=4)
        ref = execute(graph, feeds)
        for elide in (True, False):
            _assert_oracle_identical(graph, feeds, ref=ref, elide=elide)

    def test_group_output_escapes_to_conv(self):
        b = GraphBuilder("esc", seed=5)
        x = b.input("x", (1, 8, 8, 4))
        r = b.relu(x, name="r")
        s = b.sigmoid(r, name="s")
        b.output(b.conv(r, cout=4, kernel=1, name="tail"))
        b.output(s)
        graph = b.build()
        _assert_oracle_identical(graph, random_feeds(graph, seed=5))


class TestStridedIm2col:
    def test_window_view_is_read_only(self):
        x = np.zeros((1, 8, 8, 4), dtype=np.float32)
        view = conv_window_view(x, 6, 6, 3, 3, 1, 1)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0, 0, 0, 0] = 1.0

    def test_window_view_matches_materialized(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 9, 9, 3)).astype(np.float32)
        kh = kw = 3
        sh = sw = 2
        oh = ow = 4
        view = conv_window_view(x, oh, ow, kh, kw, sh, sw)
        for n in range(2):
            for i in range(oh):
                for j in range(ow):
                    patch = x[n, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    assert view[n, i, j].tobytes() == patch.tobytes()

    def test_strided_conv_byte_identity(self):
        # Stride-2 conv exercises the non-unit column stride of the
        # window view feeding the GEMM.
        b = GraphBuilder("sconv", seed=6)
        x = b.input("x", (1, 16, 16, 3))
        b.output(b.conv(x, cout=8, kernel=3, stride=2, name="c1"))
        graph = b.build()
        _assert_oracle_identical(graph, random_feeds(graph, seed=6))


class TestWidthGate:
    def test_chain_graph_stays_serial(self):
        # mobilenet-v2 is a pure chain: hazard-graph width 1 at the
        # operator level, so with intra-op GEMM sharding pinned off the
        # dispatch must take the serial fast path even with workers.
        from repro.runtime.gemmpar import ShardPolicy

        graph = build_model("mobilenet-v2")
        feeds = random_feeds(graph, seed=0)
        exe = CompiledExecutable(graph, workers=4,
                                 policy=ShardPolicy(gemm_shards=1))
        out = exe.run(feeds)
        ref = execute(graph, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
        assert exe.pool_stats()["width"] == 1

    def test_chain_graph_widens_with_gemm_shards(self):
        # The same chain gains schedulable width once row-panel GEMM
        # sharding engages: disjoint per-panel writes carry no hazard
        # edges, so the shards of one conv overlap on the pool.
        graph = build_model("mobilenet-v2")
        feeds = random_feeds(graph, seed=0)
        exe = CompiledExecutable(graph, workers=4)
        out = exe.run(feeds)
        ref = execute(graph, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
        stats = exe.pool_stats()
        assert stats["width"] > 1
        assert stats["gemm_sharded_steps"] > 0

    def test_branchy_graph_reports_width(self):
        b = GraphBuilder("wide", seed=7)
        x = b.input("x", (1, 8, 8, 4))
        branches = [b.conv(x, cout=4, kernel=3, name=f"br{i}")
                    for i in range(3)]
        b.output(b.concat(branches, axis=3, name="cat"))
        graph = b.build()
        feeds = random_feeds(graph, seed=7)
        exe = CompiledExecutable(graph, workers=4)
        out = exe.run(feeds)
        ref = execute(graph, feeds)
        for name in ref:
            assert ref[name].tobytes() == out[name].tobytes()
        assert exe.pool_stats()["width"] > 1


class TestProfiling:
    def test_step_profile_kinds(self):
        graph = build_model("toy")
        exe = CompiledExecutable(graph)
        feeds = random_feeds(graph, seed=0)
        prof = exe.step_profile(feeds)
        assert prof, "profile must not be empty"
        for kind, row in prof.items():
            assert kind in ("gemm", "dwconv", "elementwise", "fused",
                            "copy", "other")
            assert row["steps"] > 0
            assert row["ms"] >= 0.0
        total_steps = sum(r["steps"] for r in prof.values())
        assert total_steps == sum(
            exe.pool_stats()["step_kinds"].values())

    def test_host_stats_surfaces_fusion_gauges(self):
        from repro.gpu.config import GpuConfig
        from repro.gpu.device import GpuDevice
        from repro.runtime.engine import ExecutionEngine

        graph = build_model("mobilenet-v2")
        engine = ExecutionEngine(GpuDevice(GpuConfig()))
        feeds = random_feeds(graph, seed=0)
        engine.infer(graph, feeds)
        stats = engine.host_stats()
        assert stats["fused_groups"] > 0
        assert stats["width"] >= 1
        assert stats["step_kinds"].get("fused", 0) > 0

    def test_fuse_off_has_no_fused_steps(self):
        graph = build_model("mobilenet-v2")
        exe = CompiledExecutable(graph, fuse=False)
        exe.run(random_feeds(graph, seed=0))
        stats = exe.pool_stats()
        assert stats["fused_groups"] == 0
        assert "fused" not in stats["step_kinds"]
