"""Tests for the multi-model repository: LRU, lazy loads, concurrency."""

import threading

import pytest

from repro.serve import LoadedModel, ModelRepository, UnknownModel


class TestRegistration:
    def test_register_plan_object(self, toy_plan):
        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        assert "toy" in repo
        assert repo.names() == ["toy"]
        loaded = repo.get("toy")
        assert isinstance(loaded, LoadedModel)
        assert loaded.plan is toy_plan
        assert loaded.graph is toy_plan.graph

    def test_register_plan_path_loads_lazily(self, toy_plan, tmp_path):
        path = tmp_path / "plan.json"
        toy_plan.save(path, include_weights=True)
        repo = ModelRepository()
        repo.register_plan("toy", path)
        assert repo.stats()["loaded"] == 0  # nothing materialized yet
        loaded = repo.get("toy")
        assert loaded.plan.graph.name == toy_plan.graph.name
        assert repo.stats()["loaded"] == 1

    def test_register_model_compiles_on_first_request(self):
        repo = ModelRepository()
        repo.register_model("toy")
        assert repo.stats()["loaded"] == 0
        loaded = repo.get("toy")
        assert loaded.plan.provenance.get("model") == "toy"
        # Second get reuses the compiled entry.
        assert repo.get("toy") is loaded
        assert repo.stats()["loads"] == {"toy": 1}

    def test_unknown_model_raises_typed_error(self, toy_plan):
        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        with pytest.raises(UnknownModel) as exc:
            repo.get("missing")
        assert exc.value.code == "unknown_model"
        assert exc.value.known == ["toy"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelRepository(capacity=0)


class TestLru:
    def test_eviction_over_capacity_keeps_registration(self, toy_plan):
        repo = ModelRepository(capacity=2)
        for name in ("a", "b", "c"):
            repo.register_plan(name, toy_plan)
        repo.get("a")
        repo.get("b")
        repo.get("c")  # evicts "a"
        stats = repo.stats()
        assert stats["loaded"] == 2
        assert stats["lru"] == ["b", "c"]
        assert stats["evictions"] == 1
        assert "a" in repo  # still registered, reloads transparently
        repo.get("a")       # evicts "b"
        assert repo.stats()["lru"] == ["c", "a"]

    def test_get_refreshes_recency(self, toy_plan):
        repo = ModelRepository(capacity=2)
        for name in ("a", "b", "c"):
            repo.register_plan(name, toy_plan)
        repo.get("a")
        repo.get("b")
        repo.get("a")  # a is now most recent
        repo.get("c")  # evicts b, not a
        assert repo.stats()["lru"] == ["a", "c"]

    def test_eviction_victim_reloads(self, toy_plan, tmp_path):
        path = tmp_path / "plan.json"
        toy_plan.save(path, include_weights=True)
        repo = ModelRepository(capacity=1)
        repo.register_plan("a", path)
        repo.register_plan("b", path)
        first = repo.get("a")
        repo.get("b")  # evicts a
        second = repo.get("a")  # reload
        assert second is not first
        assert repo.stats()["loads"]["a"] == 2

    def test_reregistration_replaces_loaded_entry(self, toy_plan):
        repo = ModelRepository()
        repo.register_plan("toy", toy_plan)
        first = repo.get("toy")
        repo.register_plan("toy", toy_plan)
        assert repo.get("toy") is not first


class TestConcurrency:
    def test_concurrent_cold_get_loads_once(self, toy_plan, tmp_path):
        path = tmp_path / "plan.json"
        toy_plan.save(path, include_weights=True)
        repo = ModelRepository()
        repo.register_plan("toy", path)
        barrier = threading.Barrier(8)
        results = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            loaded = repo.get("toy")
            with lock:
                results.append(loaded)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert len({id(r) for r in results}) == 1  # one shared load
        assert repo.stats()["loads"]["toy"] == 1

    def test_concurrent_gets_across_models_with_eviction(self, toy_plan):
        """Hammer a capacity-2 repository from threads across 4 names;
        every get returns a usable loaded model and stats stay sane."""
        repo = ModelRepository(capacity=2)
        names = ["m0", "m1", "m2", "m3"]
        for name in names:
            repo.register_plan(name, toy_plan)
        errors = []

        def worker(seed):
            try:
                for i in range(12):
                    loaded = repo.get(names[(seed + i) % len(names)])
                    assert loaded.executor is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = repo.stats()
        assert stats["loaded"] <= 2
        assert stats["registered"] == 4
