"""Tests for the numpy reference executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.node import Node
from repro.runtime.numerical import conv2d_nhwc, execute, execute_node


class TestConv2dNhwc:
    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 5, 5, 3)).astype(np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        for c in range(3):
            w[0, 0, c, c] = 1.0
        out = conv2d_nhwc(x, w, None, (1, 1), (0, 0, 0, 0), 1)
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_matches_explicit_loop(self, rng):
        x = rng.standard_normal((1, 6, 7, 2)).astype(np.float32)
        w = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        out = conv2d_nhwc(x, w, None, (1, 1), (1, 1, 1, 1), 1)
        xp = np.pad(x, ((0, 0), (1, 1), (1, 1), (0, 0)))
        expected = np.zeros((1, 6, 7, 4), dtype=np.float32)
        for oh in range(6):
            for ow in range(7):
                patch = xp[0, oh:oh + 3, ow:ow + 3, :]
                for co in range(4):
                    expected[0, oh, ow, co] = np.sum(patch * w[:, :, :, co])
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)

    def test_depthwise_matches_per_channel(self, rng):
        x = rng.standard_normal((1, 6, 6, 4)).astype(np.float32)
        w = rng.standard_normal((3, 3, 1, 4)).astype(np.float32)
        out = conv2d_nhwc(x, w, None, (1, 1), (1, 1, 1, 1), 4)
        for c in range(4):
            single = conv2d_nhwc(x[..., c:c + 1], w[:, :, :, c:c + 1],
                                 None, (1, 1), (1, 1, 1, 1), 1)
            np.testing.assert_allclose(out[..., c], single[..., 0],
                                       rtol=1e-4, atol=1e-4)

    def test_stride_subsamples(self, rng):
        x = rng.standard_normal((1, 8, 8, 2)).astype(np.float32)
        w = rng.standard_normal((1, 1, 2, 3)).astype(np.float32)
        full = conv2d_nhwc(x, w, None, (1, 1), (0, 0, 0, 0), 1)
        strided = conv2d_nhwc(x, w, None, (2, 2), (0, 0, 0, 0), 1)
        np.testing.assert_allclose(strided, full[:, ::2, ::2, :], atol=1e-6)

    def test_bias_added(self, rng):
        x = rng.standard_normal((1, 4, 4, 2)).astype(np.float32)
        w = rng.standard_normal((1, 1, 2, 3)).astype(np.float32)
        bias = np.array([1.0, -1.0, 0.5], dtype=np.float32)
        without = conv2d_nhwc(x, w, None, (1, 1), (0, 0, 0, 0), 1)
        with_b = conv2d_nhwc(x, w, bias, (1, 1), (0, 0, 0, 0), 1)
        np.testing.assert_allclose(with_b, without + bias, atol=1e-6)


class TestElementwiseKernels:
    @pytest.mark.parametrize("op,fn", [
        ("Relu", lambda x: np.maximum(x, 0)),
        ("Sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("Silu", lambda x: x / (1 + np.exp(-x))),
        ("Tanh", np.tanh),
    ])
    def test_unary(self, rng, op, fn):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        node = Node("n", op, ["x"], ["y"])
        np.testing.assert_allclose(execute_node(node, [x]), fn(x),
                                   rtol=1e-5, atol=1e-5)

    def test_clip(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32) * 10
        node = Node("n", "Clip", ["x"], ["y"], {"min": 0.0, "max": 6.0})
        out = execute_node(node, [x])
        assert out.min() >= 0.0 and out.max() <= 6.0

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.standard_normal((3, 7)).astype(np.float32)
        node = Node("n", "Softmax", ["x"], ["y"], {"axis": -1})
        out = execute_node(node, [x])
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    def test_batchnorm_normalizes(self, rng):
        x = rng.standard_normal((1, 4, 4, 3)).astype(np.float32)
        scale = np.ones(3, dtype=np.float32)
        bias = np.zeros(3, dtype=np.float32)
        mean = x.mean(axis=(0, 1, 2))
        var = x.var(axis=(0, 1, 2))
        node = Node("n", "BatchNormalization",
                    ["x", "s", "b", "m", "v"], ["y"], {"epsilon": 1e-5})
        out = execute_node(node, [x, scale, bias, mean, var])
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-4)

    def test_erf_reference_values(self):
        node = Node("n", "Erf", ["x"], ["y"])
        x = np.array([0.0, 1.0, -1.0, 2.0], dtype=np.float32)
        out = execute_node(node, [x])
        expected = np.array([0.0, 0.8427, -0.8427, 0.9953])
        np.testing.assert_allclose(out, expected, atol=1e-3)


class TestPoolKernels:
    def test_maxpool(self, rng):
        x = rng.standard_normal((1, 4, 4, 1)).astype(np.float32)
        node = Node("n", "MaxPool", ["x"], ["y"],
                    {"kernel_shape": (2, 2), "strides": (2, 2)})
        out = execute_node(node, [x])
        assert out[0, 0, 0, 0] == x[0, :2, :2, 0].max()

    def test_avgpool(self, rng):
        x = rng.standard_normal((1, 4, 4, 1)).astype(np.float32)
        node = Node("n", "AveragePool", ["x"], ["y"],
                    {"kernel_shape": (2, 2), "strides": (2, 2)})
        out = execute_node(node, [x])
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, :2, :2, 0].mean(),
                                   rtol=1e-5)

    def test_global_average_pool(self, rng):
        x = rng.standard_normal((1, 5, 5, 3)).astype(np.float32)
        node = Node("n", "GlobalAveragePool", ["x"], ["y"])
        out = execute_node(node, [x])
        np.testing.assert_allclose(out[0, 0, 0], x.mean(axis=(0, 1, 2)),
                                   rtol=1e-5)

    def test_maxpool_padding_uses_neg_inf(self, rng):
        x = -np.abs(rng.standard_normal((1, 4, 4, 1))).astype(np.float32)
        node = Node("n", "MaxPool", ["x"], ["y"],
                    {"kernel_shape": (3, 3), "strides": (2, 2),
                     "pads": (1, 1, 1, 1)})
        out = execute_node(node, [x])
        # All inputs are negative; padded zeros must not win.
        assert out.max() < 0


class TestGraphExecution:
    def test_missing_feed_raises(self, small_conv_graph):
        with pytest.raises(KeyError):
            execute(small_conv_graph, {})

    def test_unknown_op_raises(self):
        node = Node("n", "Quantize", ["x"], ["y"])
        with pytest.raises(NotImplementedError):
            execute_node(node, [np.zeros((1,))])

    def test_outputs_complete(self, pointwise_chain_graph, rng):
        feed = {"x": rng.standard_normal((1, 14, 14, 8))}
        out = execute(pointwise_chain_graph, feed)
        assert set(out) == set(pointwise_chain_graph.outputs)

    def test_intermediate_memory_freed_result_unchanged(self, rng):
        # Two graphs with and without branching produce stable results.
        b = GraphBuilder(seed=9)
        x = b.input("x", (1, 6, 6, 4))
        y1 = b.conv(x, cout=4, kernel=3, name="c1")
        y2 = b.relu(y1)
        y3 = b.add(y2, y1)
        b.output(y3)
        g = b.build()
        feed = {"x": rng.standard_normal((1, 6, 6, 4))}
        out1 = execute(g, feed)
        out2 = execute(g, feed)
        for k in out1:
            np.testing.assert_array_equal(out1[k], out2[k])

    @settings(max_examples=20, deadline=None)
    @given(
        h=st.integers(4, 12), w=st.integers(4, 12),
        cin=st.integers(1, 6), cout=st.integers(1, 8),
        kernel=st.sampled_from([1, 3, 5]),
        stride=st.sampled_from([1, 2]),
    )
    def test_conv_shape_inference_matches_execution(self, h, w, cin, cout,
                                                    kernel, stride):
        b = GraphBuilder(seed=1)
        x = b.input("x", (1, h, w, cin))
        y = b.conv(x, cout=cout, kernel=kernel, stride=stride, name="c")
        b.output(y)
        g = b.build()
        feed = {"x": np.random.default_rng(0).standard_normal((1, h, w, cin))}
        out = execute(g, feed)[y]
        assert out.shape == g.tensors[y].shape
