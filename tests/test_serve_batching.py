"""Tests for the bounded admission queue and micro-batch formation."""

import threading
import time

import pytest

from repro.serve.batching import BatchingQueue
from repro.serve.errors import Overloaded, ServerClosed
from repro.serve.request import InferenceRequest


def _req(model="m"):
    return InferenceRequest(model=model, feeds={})


class TestAdmission:
    def test_submit_returns_depth(self):
        q = BatchingQueue(queue_depth=4)
        assert q.submit(_req()) == 1
        assert q.submit(_req()) == 2
        assert len(q) == 2

    def test_full_queue_sheds_with_typed_error(self):
        q = BatchingQueue(queue_depth=2, max_wait_ms=0)
        q.submit(_req())
        q.submit(_req())
        with pytest.raises(Overloaded) as exc:
            q.submit(_req("m"))
        assert exc.value.code == "overloaded"
        assert exc.value.queue_depth == 2
        # Shedding never grows the queue.
        assert len(q) == 2

    def test_submit_after_close_raises(self):
        q = BatchingQueue()
        q.close()
        with pytest.raises(ServerClosed):
            q.submit(_req())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchingQueue(queue_depth=0)
        with pytest.raises(ValueError):
            BatchingQueue(max_batch_size=0)


class TestBatchFormation:
    def test_fifo_single_model(self):
        q = BatchingQueue(max_batch_size=8, max_wait_ms=0)
        reqs = [_req() for _ in range(3)]
        for r in reqs:
            q.submit(r)
        batch = q.next_batch(timeout_s=0.1)
        assert batch == reqs

    def test_batch_capped_at_max_batch_size(self):
        q = BatchingQueue(max_batch_size=2, max_wait_ms=0)
        reqs = [_req() for _ in range(5)]
        for r in reqs:
            q.submit(r)
        assert q.next_batch(timeout_s=0.1) == reqs[:2]
        assert q.next_batch(timeout_s=0.1) == reqs[2:4]
        assert q.next_batch(timeout_s=0.1) == reqs[4:]

    def test_model_affine_batches_preserve_other_model_order(self):
        """A batch only mixes one model; skipped requests keep FIFO order."""
        q = BatchingQueue(max_batch_size=8, max_wait_ms=0)
        a1, b1, a2, b2 = _req("a"), _req("b"), _req("a"), _req("b")
        for r in (a1, b1, a2, b2):
            q.submit(r)
        assert q.next_batch(timeout_s=0.1) == [a1, a2]
        assert q.next_batch(timeout_s=0.1) == [b1, b2]

    def test_linger_fills_batch_from_late_arrivals(self):
        """Size-or-deadline: the head waits for coalescable arrivals."""
        q = BatchingQueue(max_batch_size=4, max_wait_ms=500.0)
        first = _req()
        q.submit(first)
        late = [_req() for _ in range(3)]

        def feeder():
            for r in late:
                time.sleep(0.01)
                q.submit(r)

        t = threading.Thread(target=feeder)
        t.start()
        batch = q.next_batch(timeout_s=2.0)
        t.join()
        assert batch == [first] + late  # filled before the linger expired

    def test_linger_deadline_releases_partial_batch(self):
        q = BatchingQueue(max_batch_size=8, max_wait_ms=20.0)
        q.submit(_req())
        t0 = time.perf_counter()
        batch = q.next_batch(timeout_s=2.0)
        waited = time.perf_counter() - t0
        assert len(batch) == 1
        assert waited < 1.0  # released by the 20ms linger, not the timeout

    def test_batch1_mode_never_lingers(self):
        q = BatchingQueue(max_batch_size=1, max_wait_ms=10_000.0)
        q.submit(_req())
        t0 = time.perf_counter()
        batch = q.next_batch(timeout_s=2.0)
        assert len(batch) == 1
        assert time.perf_counter() - t0 < 1.0


class TestConsumerLifecycle:
    def test_timeout_on_empty_queue_returns_none(self):
        q = BatchingQueue()
        assert q.next_batch(timeout_s=0.05) is None

    def test_close_drains_then_signals_exit(self):
        q = BatchingQueue(max_wait_ms=0)
        r = _req()
        q.submit(r)
        q.close()
        assert q.next_batch(timeout_s=0.1) == [r]
        assert q.next_batch(timeout_s=0.1) is None

    def test_close_wakes_blocked_consumer(self):
        q = BatchingQueue()
        out = []

        def consumer():
            out.append(q.next_batch())  # no timeout: blocks until close

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert out == [None]

    def test_competing_workers_never_duplicate_requests(self):
        """Every request is taken by exactly one worker."""
        total = 200
        q = BatchingQueue(queue_depth=total, max_batch_size=4,
                          max_wait_ms=1.0)
        taken = []
        lock = threading.Lock()

        def worker():
            while True:
                batch = q.next_batch(timeout_s=0.5)
                if batch is None:
                    return
                with lock:
                    taken.extend(batch)

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for w in workers:
            w.start()
        reqs = [_req("a" if i % 3 else "b") for i in range(total)]
        for r in reqs:
            q.submit(r)
        q.close()
        for w in workers:
            w.join(timeout=10.0)
        assert len(taken) == total
        assert {id(r) for r in taken} == {id(r) for r in reqs}
